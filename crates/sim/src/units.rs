//! Shared memory units: bytes, pages, and conversions.
//!
//! The whole model is page-granular with the classic 4 KiB page (the Linux
//! 2.2 default the paper targets). Sizes in experiment configs are given in
//! MiB, matching how the paper reports footprints ("45MB footprint",
//! "350 MB available memory", ...).

/// Bytes per page (4 KiB, the i386 Linux 2.2 default assumed by the paper).
pub const PAGE_SIZE: u64 = 4096;

/// Bytes in a kibibyte.
pub const KIB: u64 = 1024;
/// Bytes in a mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Bytes in a gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Number of 4 KiB pages needed to hold `mib` MiB.
pub const fn pages_from_mib(mib: u64) -> usize {
    ((mib * MIB) / PAGE_SIZE) as usize
}

/// Number of whole pages needed to hold `bytes` bytes (rounds up).
pub const fn pages_from_bytes(bytes: u64) -> usize {
    (bytes.div_ceil(PAGE_SIZE)) as usize
}

/// Size in bytes of `pages` pages.
pub const fn bytes_from_pages(pages: usize) -> u64 {
    pages as u64 * PAGE_SIZE
}

/// Size in MiB (fractional) of `pages` pages; reporting only.
pub fn mib_from_pages(pages: usize) -> f64 {
    bytes_from_pages(pages) as f64 / MIB as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_roundtrip() {
        assert_eq!(pages_from_mib(1), 256);
        assert_eq!(pages_from_mib(350), 89_600);
        assert_eq!(bytes_from_pages(256), MIB);
    }

    #[test]
    fn bytes_round_up() {
        assert_eq!(pages_from_bytes(0), 0);
        assert_eq!(pages_from_bytes(1), 1);
        assert_eq!(pages_from_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_from_bytes(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn reporting_helper() {
        assert!((mib_from_pages(256) - 1.0).abs() < 1e-12);
        assert!((mib_from_pages(89_600) - 350.0).abs() < 1e-9);
    }
}
