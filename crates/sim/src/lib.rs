//! # agp-sim — discrete-event simulation engine
//!
//! The foundation substrate for the adaptive-gang-paging reproduction: a
//! deterministic discrete-event simulation (DES) kernel providing
//!
//! * [`SimTime`] / [`SimDur`] — integer-microsecond instants and durations,
//! * [`EventQueue`] — a total-order event queue with deterministic
//!   tie-breaking (FIFO among equal timestamps),
//! * [`SimRng`] — a seedable, forkable random-number source so every run is
//!   reproducible from a single `u64` seed,
//! * [`units`] — byte/page unit helpers shared by the memory and disk models.
//!
//! Nothing in this crate knows about paging or gang scheduling; it is the
//! generic clockwork every other crate is built on. The design follows the
//! classic event-list DES structure: the simulation owner pops the earliest
//! event, advances the clock to its timestamp, and handles it, possibly
//! pushing future events.
//!
//! Determinism contract: given the same sequence of `push` calls and the
//! same seed, `pop` returns an identical sequence on every platform. This is
//! load-bearing for the experiment harness (paper figures are regenerated
//! from fixed seeds) and is verified by property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event_queue;
pub mod rng;
pub mod time;
pub mod units;

pub use event_queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDur, SimTime};
