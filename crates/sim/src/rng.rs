//! Deterministic randomness for the simulator.
//!
//! Every stochastic choice in the system (workload access patterns, jitter)
//! draws from a [`SimRng`] derived from the experiment's master seed.
//! `SimRng` wraps a small, fast, portable generator (SplitMix64 for stream
//! derivation feeding an xoshiro256**-style core implemented here) so the
//! byte stream is identical across platforms and independent of external
//! crate version churn. `rand` trait impls are provided so the workload
//! crate can use distribution helpers where convenient.

use rand::RngCore;

/// Portable xoshiro256** generator seeded via SplitMix64.
///
/// The algorithm is the public-domain reference construction by Blackman &
/// Vigna; implementing it locally (30 lines) pins the exact output sequence
/// into this repository so experiment results can never shift under a
/// dependency upgrade.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent substream, e.g. one per node or per process.
    ///
    /// Forking with distinct `stream` values from the same parent yields
    /// generators whose outputs are uncorrelated for practical purposes,
    /// without consuming randomness from the parent.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the parent's state with the stream id through SplitMix64.
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA24BAED4963EE407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Fast path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64_raw() & (n - 1);
        }
        loop {
            let x = self.next_u64_raw();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64_raw().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_distinct() {
        let parent = SimRng::new(7);
        let mut c1 = parent.fork(0);
        let mut c1b = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_eq!(c1.next_u64_raw(), c1b.next_u64_raw());
        let mut x1 = parent.fork(0);
        assert_ne!(x1.next_u64_raw(), c2.next_u64_raw());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    fn below_power_of_two() {
        let mut r = SimRng::new(5);
        for _ in 0..100 {
            assert!(r.below(16) < 16);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(13);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pinned_reference_values() {
        // Guard against accidental algorithm changes: first outputs for seed 0.
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64_raw()).collect();
        let mut r2 = SimRng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64_raw()).collect();
        assert_eq!(first, again);
        // Output must be non-trivial (not all zeros / equal).
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }
}
