//! The event list: a priority queue of `(SimTime, E)` pairs with
//! deterministic FIFO tie-breaking.
//!
//! `std::collections::BinaryHeap` alone is not deterministic for equal keys,
//! so every pushed event carries a monotonically increasing sequence number;
//! two events scheduled for the same instant pop in push order. This is the
//! property that makes whole cluster runs reproducible from a seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single scheduled entry (internal).
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use agp_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Largest timestamp ever popped; used to detect scheduling into the past.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling earlier than the last popped timestamp would mean
    /// time-travel; that is a simulation bug, so it panics in debug builds
    /// and is clamped to the watermark in release builds (the run stays
    /// causally consistent either way).
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.watermark,
            "event scheduled at {at} which is before current time {}",
            self.watermark
        );
        let at = at.max(self.watermark);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, advancing the internal
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.watermark = e.at;
        Some((e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The largest timestamp popped so far (the simulation "now" from the
    /// queue's perspective).
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Drop all pending events without resetting the watermark or the
    /// sequence counter (so determinism is preserved across a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 3, 9, 1, 7] {
            q.push(SimTime::from_secs(s), s);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(10);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(3), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.watermark(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.watermark(), SimTime::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), ());
        q.pop();
        q.push(SimTime::from_secs(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2) + SimDur::from_ms(1), 42);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(2_001_000)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
