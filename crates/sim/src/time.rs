//! Simulation time: integer-microsecond instants ([`SimTime`]) and
//! durations ([`SimDur`]).
//!
//! All simulation arithmetic is exact integer math so runs are bit-for-bit
//! reproducible; floating point only appears at the reporting boundary
//! (`as_secs_f64` and friends). A microsecond tick is fine-grained enough
//! for every latency in the model (the shortest modeled cost, a single-page
//! DMA transfer, is ~100 µs) while `u64` microseconds can represent about
//! 584 000 years of simulated time, so overflow is unreachable in any real
//! run. All additive/multiplicative operations still saturate rather than
//! wrap (`agp-lint`'s `sim-time-arith` rule enforces this), so a corrupted
//! config or a fuzzer feeding absurd durations pins the clock at the far
//! future instead of silently wrapping it back to zero.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since the start of
/// the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulation time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinity" sentinel for `min()` folds.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `us` microseconds after the start of the run.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Instant `ms` milliseconds after the start of the run.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Instant `s` seconds after the start of the run.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Instant `m` minutes after the start of the run.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m.saturating_mul(60_000_000))
    }

    /// Raw microsecond count.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as fractional minutes (reporting only).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Duration since an earlier instant. Saturates at zero rather than
    /// panicking if `earlier` is actually later; callers that care assert.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDur {
    /// The empty duration.
    pub const ZERO: SimDur = SimDur(0);

    /// `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDur(us)
    }

    /// `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDur(ms.saturating_mul(1_000))
    }

    /// `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDur(s.saturating_mul(1_000_000))
    }

    /// `m` minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDur(m.saturating_mul(60_000_000))
    }

    /// Raw microsecond count.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional minutes (reporting only).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    /// Used for things like "the last 10% of the quantum" (paper §3.4).
    pub fn mul_f64(self, factor: f64) -> SimDur {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDur((self.0 as f64 * factor).round() as u64)
    }

    /// Integer ratio of two durations (reporting only).
    pub fn ratio(self, denom: SimDur) -> f64 {
        if denom.0 == 0 {
            return 0.0;
        }
        self.0 as f64 / denom.0 as f64
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDur) -> SimDur {
        SimDur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDur) -> SimDur {
        SimDur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        self.since(rhs)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_us(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_us(self.0))
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_us(self.0))
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_us(self.0))
    }
}

/// Render a microsecond count with a human-scale unit (`12.3s`, `4m05s`,
/// `250ms`, `17us`).
fn format_us(us: u64) -> String {
    if us >= 60_000_000 {
        let mins = us / 60_000_000;
        let secs = (us % 60_000_000) as f64 / 1e6;
        format!("{mins}m{secs:04.1}s")
    } else if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimDur::from_secs(1).as_us(), 1_000_000);
        assert_eq!(SimDur::from_mins(5), SimDur::from_secs(300));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDur::from_ms(2_500);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a.since(b), SimDur::ZERO);
        assert_eq!(b.since(a), SimDur::from_secs(4));
    }

    #[test]
    fn mul_f64_rounds() {
        let q = SimDur::from_mins(5);
        // "Last 10% of the quantum" from paper section 3.4.
        assert_eq!(q.mul_f64(0.1), SimDur::from_secs(30));
        assert_eq!(SimDur::from_us(3).mul_f64(0.5), SimDur::from_us(2)); // rounds .5 away from zero
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(SimDur::from_secs(1).ratio(SimDur::ZERO), 0.0);
        assert!((SimDur::from_secs(1).ratio(SimDur::from_secs(4)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_us(5) < SimTime::from_us(6));
        assert!(SimDur::from_ms(1) > SimDur::from_us(999));
        assert_eq!(
            SimTime::from_us(7).max(SimTime::from_us(3)),
            SimTime::from_us(7)
        );
        assert_eq!(
            SimTime::from_us(7).min(SimTime::from_us(3)),
            SimTime::from_us(3)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDur::from_us(17).to_string(), "17us");
        assert_eq!(SimDur::from_ms(250).to_string(), "250.0ms");
        assert_eq!(SimDur::from_secs(12).to_string(), "12.00s");
        assert_eq!(SimTime::from_secs(245).to_string(), "4m05.0s");
    }

    #[test]
    fn sum_folds() {
        let total: SimDur = [1u64, 2, 3].iter().map(|&s| SimDur::from_secs(s)).sum();
        assert_eq!(total, SimDur::from_secs(6));
    }
}
