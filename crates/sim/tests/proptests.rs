//! Property tests for the DES substrate: total ordering of the event
//! queue, time arithmetic, and RNG invariants.

use agp_sim::{EventQueue, SimDur, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping yields events in non-decreasing time order, with FIFO
    /// among equal timestamps, for any push sequence.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_us(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((t, id)) = q.pop() {
            count += 1;
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(id > lid, "FIFO violated for equal times");
                }
            }
            // Event timestamps must be exactly what was pushed.
            prop_assert_eq!(t, SimTime::from_us(times[id]));
            last = Some((t, id));
        }
        prop_assert_eq!(count, times.len());
    }

    /// Interleaved push/pop never yields an event earlier than the last
    /// popped one (causality).
    #[test]
    fn event_queue_causality_under_interleaving(
        ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut watermark = SimTime::ZERO;
        for (dt, do_pop) in ops {
            // Always schedule relative to the watermark so pushes are legal.
            q.push(watermark + SimDur::from_us(dt), ());
            if do_pop {
                if let Some((t, ())) = q.pop() {
                    prop_assert!(t >= watermark);
                    watermark = t;
                }
            }
        }
    }

    /// Time arithmetic: (t + d) - d == t and (t + d) since t == d.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_us(t);
        let dur = SimDur::from_us(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur).since(time), dur);
        prop_assert_eq!(time.since(time + dur), SimDur::ZERO);
    }

    /// Duration scaling by a fraction in [0, 1] never exceeds the original.
    #[test]
    fn dur_mul_f64_bounded(d in 0u64..1_000_000_000, f in 0.0f64..1.0) {
        let dur = SimDur::from_us(d);
        let scaled = dur.mul_f64(f);
        prop_assert!(scaled <= dur + SimDur::from_us(1), "rounding tolerance");
    }

    /// below(n) is always < n and deterministic per seed.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let va = a.below(n);
            prop_assert!(va < n);
            prop_assert_eq!(va, b.below(n));
        }
    }

    /// Forked streams are independent of parent draws and deterministic.
    #[test]
    fn rng_fork_determinism(seed in any::<u64>(), stream in any::<u64>()) {
        let parent = SimRng::new(seed);
        let mut c1 = parent.fork(stream);
        let mut c2 = parent.fork(stream);
        for _ in 0..20 {
            prop_assert_eq!(c1.next_u64_raw(), c2.next_u64_raw());
        }
    }

    /// Shuffle is a permutation for arbitrary inputs.
    #[test]
    fn rng_shuffle_permutes(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut r = SimRng::new(seed);
        let mut original = v.clone();
        r.shuffle(&mut v);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }
}
