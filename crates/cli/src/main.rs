//! `agp` — command-line driver for the adaptive-gang-paging reproduction.
//!
//! ```text
//! agp list                         # enumerate paper experiments
//! agp run fig7 [--scale paper]     # regenerate one figure (or `all`)
//! agp run all --scale quick        # CI-sized pass over every figure
//! agp sim --bench LU --class B --nodes 1 --policy so/ao/ai/bg ...
//!                                  # one custom cluster run
//! ```
//!
//! Output is plain text: aligned tables, unicode sparklines for the
//! paging traces, and the paper-vs-measured notes. `--csv` switches the
//! tables to CSV, `--json` dumps the whole experiment output as JSON.

use agp_cluster::{ClusterConfig, JobSpec, ScheduleMode};
use agp_core::PolicyConfig;
use agp_experiments::{all_experiments, find, ExperimentOutput, Scale};
use agp_metrics::report::sparkline;
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try `agp help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("agp: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "agp — simulation reproduction of 'Adaptive Memory Paging for Efficient Gang \
         Scheduling of Parallel Applications' (Ryu, Pachapurkar, Fong; IPPS 2004)\n\n\
         USAGE:\n\
         \x20 agp list                          list the paper experiments\n\
         \x20 agp run <id>|all [options]        regenerate a figure/table\n\
         \x20 agp sim [options]                 run one custom cluster configuration\n\n\
         RUN OPTIONS:\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: paper)\n\
         \x20 --csv                             emit tables as CSV\n\
         \x20 --json                            emit the raw experiment output as JSON\n\n\
         SIM OPTIONS:\n\
         \x20 --bench LU|SP|CG|IS|MG            workload (default LU)\n\
         \x20 --class A|B|C                     problem class (default B)\n\
         \x20 --nodes N                         cluster size = ranks per job (default 1)\n\
         \x20 --jobs N                          instances to co-schedule (default 2)\n\
         \x20 --policy P                        orig | subset of so,ao,ai,bg (default orig)\n\
         \x20 --quantum SECONDS                 gang quantum (default 300)\n\
         \x20 --mem MIB / --wired MIB           node memory geometry (default 1024/574)\n\
         \x20 --batch                           run jobs back-to-back instead of gang\n\
         \x20 --seed N                          RNG seed (default 0x5EED600D)\n\
         \x20 --trace                           print the node-0 paging trace"
    );
}

fn cmd_list() -> Result<(), String> {
    println!("{:<10} TITLE", "ID");
    for e in all_experiments() {
        println!("{:<10} {}", e.id, e.title);
    }
    Ok(())
}

struct Flags {
    scale: Scale,
    csv: bool,
    json: bool,
}

fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags {
        scale: Scale::Paper,
        csv: false,
        json: false,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                flags.scale = v.parse()?;
            }
            "--csv" => flags.csv = true,
            "--json" => flags.json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option '{other}'"));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((positional, flags))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let id = pos
        .first()
        .ok_or("usage: agp run <id>|all [--scale paper|quick]")?;
    let experiments = if id == "all" {
        all_experiments()
    } else {
        vec![find(id).ok_or_else(|| format!("no experiment '{id}' (see `agp list`)"))?]
    };
    for e in experiments {
        eprintln!("running {} ({:?} scale)...", e.id, flags.scale);
        let t0 = std::time::Instant::now();
        let out = (e.runner)(flags.scale)?;
        eprintln!("{} finished in {:.1?}", e.id, t0.elapsed());
        render(&out, &flags)?;
    }
    Ok(())
}

fn render(out: &ExperimentOutput, flags: &Flags) -> Result<(), String> {
    if flags.json {
        let s = serde_json::to_string_pretty(out).map_err(|e| e.to_string())?;
        println!("{s}");
        return Ok(());
    }
    println!("\n#### {} — {}\n", out.id, out.title);
    for t in &out.tables {
        if flags.csv {
            println!("# {}", t.title());
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    }
    for (label, trace) in &out.traces {
        println!("trace [{label:<11}] in : {}", sparkline(trace.ins()));
        println!("trace [{label:<11}] out: {}", sparkline(trace.outs()));
    }
    if !out.notes.is_empty() {
        println!("\nnotes:");
        for n in &out.notes {
            println!("  * {n}");
        }
    }
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let mut bench = Benchmark::LU;
    let mut class = Class::B;
    let mut nodes = 1u32;
    let mut jobs = 2usize;
    let mut policy = PolicyConfig::original();
    let mut quantum = SimDur::from_secs(300);
    let mut mem = 1024u64;
    let mut wired = 574u64;
    let mut batch = false;
    let mut seed = 0x5EED_600Du64;
    let mut show_trace = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bench" => bench = val("--bench")?.parse()?,
            "--class" => class = val("--class")?.parse()?,
            "--nodes" => {
                nodes = val("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--jobs" => jobs = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--policy" => policy = val("--policy")?.parse().map_err(|e| format!("{e}"))?,
            "--quantum" => {
                quantum = SimDur::from_secs(
                    val("--quantum")?
                        .parse()
                        .map_err(|e| format!("--quantum: {e}"))?,
                )
            }
            "--mem" => mem = val("--mem")?.parse().map_err(|e| format!("--mem: {e}"))?,
            "--wired" => {
                wired = val("--wired")?
                    .parse()
                    .map_err(|e| format!("--wired: {e}"))?
            }
            "--seed" => seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--batch" => batch = true,
            "--trace" => show_trace = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let workload = WorkloadSpec::parallel(bench, class, nodes);
    let mut cfg = ClusterConfig::paper_defaults(nodes);
    cfg.mem_mib = mem;
    cfg.wired_mib = wired;
    cfg.quantum = quantum;
    cfg.policy = policy;
    cfg.mode = if batch {
        ScheduleMode::Batch
    } else {
        ScheduleMode::Gang
    };
    cfg.seed = seed;
    cfg.jobs = (0..jobs)
        .map(|i| JobSpec::new(format!("{workload} #{}", i + 1), workload))
        .collect();

    let t0 = std::time::Instant::now();
    let r = agp_cluster::run(cfg)?;
    eprintln!("simulated in {:.1?} ({} events)", t0.elapsed(), r.events);

    println!(
        "policy {}  mode {:?}  makespan {:.1} min  switches {}",
        r.policy,
        r.mode,
        r.makespan.as_mins_f64(),
        r.switches
    );
    for j in &r.jobs {
        println!(
            "  {:<14} completed {:.1} min  ({} iterations)",
            j.name,
            j.completion.as_mins_f64(),
            j.iterations
        );
    }
    let es = r.total_engine_stats();
    println!(
        "paging: {} pages in, {} pages out, {} major faults, {} false evictions, {} replayed",
        r.total_pages_in(),
        r.total_pages_out(),
        es.major_faults,
        es.false_evictions,
        es.replayed_pages
    );
    println!(
        "engine: {} recorded, {} replay-skipped, {} reclaim calls, {} reclaimed, {} aggressive, {} readahead",
        es.recorded_pages,
        es.replay_skipped,
        es.reclaim_calls,
        es.reclaimed_pages,
        es.aggressive_evictions,
        es.readahead_pages
    );
    if show_trace {
        let tr = &r.nodes[0].trace;
        println!("node0 page-in  : {}", sparkline(tr.ins()));
        println!("node0 page-out : {}", sparkline(tr.outs()));
    }
    Ok(())
}
