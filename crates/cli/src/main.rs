//! `agp` — command-line driver for the adaptive-gang-paging reproduction.
//!
//! ```text
//! agp list                         # enumerate paper experiments
//! agp run fig7 [--scale paper]     # regenerate one figure (or `all`)
//! agp run all --scale quick        # CI-sized pass over every figure
//! agp sim --bench LU --class B --nodes 1 --policy so/ao/ai/bg ...
//!                                  # one custom cluster run
//! agp profile fig6 [--events ev.jsonl]
//!                                  # switch-phase breakdown + histograms
//! agp trace fig6 --perfetto out.json
//!                                  # Perfetto/Chrome trace of one run
//! agp report [--check]             # parity manifest vs committed golden
//! ```
//!
//! Output is plain text: aligned tables, unicode sparklines for the
//! paging traces, and the paper-vs-measured notes. `--csv` switches the
//! tables to CSV, `--json` dumps the whole experiment output as JSON.

use agp_cluster::{ClusterConfig, ClusterSim, JobSpec, MetricsSnapshot, MonitorHub, ScheduleMode};
use agp_core::PolicyConfig;
use agp_experiments::{
    all_experiments, chaos_demo, default_tolerances, find, manifest_of, profile_config, run_pool,
    scale_name, ExperimentOutput, Scale, REPORT_SEED,
};
use agp_faults::FaultPlan;
use agp_metrics::report::{bar_chart, sparkline};
use agp_metrics::{BenchManifest, ParityManifest, Table};
use agp_obs::flight::{self, FlightConfig};
use agp_obs::{
    shared, BudgetedSink, ChunkedJsonlWriter, Collector, JsonlWriter, ObsLink, SharedSink,
};
use agp_sim::SimDur;
use agp_telemetry::PerfettoTrace;
use agp_workload::{Benchmark, Class, WorkloadSpec};
use std::io::Write;
use std::process::ExitCode;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

mod fuzz;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        // chaos has a three-way exit: 0 clean, 2 fuzz findings or corpus
        // regressions, 1 error — so it bypasses the Result funnel below.
        Some("chaos") => {
            return match cmd_chaos(&args[1..]) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("agp: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("profile") => cmd_profile(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("postmortem") => cmd_postmortem(&args[1..]),
        // trace-diff has a three-way exit: 0 identical, 2 divergent,
        // 1 usage/IO error — so it bypasses the Result funnel below.
        Some("trace-diff") => {
            return match cmd_trace_diff(&args[1..]) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("agp: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        // lint keeps agp-lint's exit contract: 0 clean, 1 findings,
        // 2 usage/IO error — so it also bypasses the funnel.
        Some("lint") => {
            return match cmd_lint(&args[1..]) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("agp: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("perf") => cmd_perf(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try `agp help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("agp: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "agp — simulation reproduction of 'Adaptive Memory Paging for Efficient Gang \
         Scheduling of Parallel Applications' (Ryu, Pachapurkar, Fong; IPPS 2004)\n\n\
         USAGE:\n\
         \x20 agp list                          list the paper experiments\n\
         \x20 agp run <id>|all [options]        regenerate a figure/table\n\
         \x20 agp sim [options]                 run one custom cluster configuration\n\
         \x20 agp chaos [options]               fault-injection demo, fuzzer, and corpus gate (exit 2 on findings)\n\
         \x20 agp profile <id> [options]        profile an experiment's gang switches\n\
         \x20 agp trace <id> [options]          export one run as a Perfetto/Chrome trace\n\
         \x20 agp explain <id> [options]        causal critical-path attribution of switch latency\n\
         \x20 agp postmortem <dump> [options]   triage + causal replay of a flight-recorder incident dump\n\
         \x20 agp trace-diff <left> <right>     first divergence between two JSONL traces (exit 2)\n\
         \x20 agp perf <id> [options]           self-profile one run: hot spans, rates, flamegraph export\n\
         \x20 agp top <id> [options]            live monitor of one run: speed ratio, rates, ETA\n\
         \x20 agp report [options]              run the registry, emit the parity manifest\n\
         \x20 agp lint [options]                determinism & robustness static analysis of the workspace\n\n\
         RUN OPTIONS:\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: paper)\n\
         \x20 --jobs N                          fan experiments out over N worker threads (default 1)\n\
         \x20 --progress                        periodic progress lines from the live simulations\n\
         \x20 --snapshot-out PATH               append every MetricsSnapshot as a JSONL stream\n\
         \x20 --csv                             emit tables as CSV\n\
         \x20 --json                            emit the raw experiment output as JSON\n\
         \x20 --trace                           print the experiments' paging traces\n\
         \x20 --flight-recorder                 arm the black-box recorder (see FLIGHT RECORDER)\n\
         \x20 --incident-out PATH               incident dump path (default incident.json)\n\n\
         SIM OPTIONS:\n\
         \x20 --bench LU|SP|CG|IS|MG            workload (default LU)\n\
         \x20 --class A|B|C                     problem class (default B)\n\
         \x20 --nodes N                         cluster size = ranks per job (default 1)\n\
         \x20 --jobs N                          instances to co-schedule (default 2)\n\
         \x20 --policy P                        orig | subset of so,ao,ai,bg (default orig)\n\
         \x20 --quantum SECONDS                 gang quantum (default 300)\n\
         \x20 --mem MIB / --wired MIB           node memory geometry (default 1024/574)\n\
         \x20 --batch                           run jobs back-to-back instead of gang\n\
         \x20 --seed N                          RNG seed (default 0x5EED600D)\n\
         \x20 --trace                           print the node-0 paging trace\n\
         \x20 --events PATH                     export the structured event stream as JSONL\n\
         \x20 --obs-budget K                    retain at most K events in memory; drops are reported\n\
         \x20 --check-invariants                sweep conservation/coherence invariants during the run\n\
         \x20 --faults PATH                     inject a deterministic fault plan (JSON, see `agp chaos --emit-plan`)\n\
         \x20 --flight-recorder / --incident-out PATH / --stall-slo SECS / --queue-limit N\n\
         \x20                                   see FLIGHT RECORDER below\n\n\
         CHAOS OPTIONS:\n\
         \x20 --plan PATH                       fault plan JSON (default: the built-in smoke plan)\n\
         \x20 --emit-plan PATH                  write the built-in smoke plan as JSON and exit\n\
         \x20 --emit-trip-plan PATH             write the recovery-exhaustion trip plan as JSON and exit\n\
         \x20 --seed N                          seed for the demo run and built-in plan (default 0x5EED600D)\n\
         \x20 --verify                          run twice, require byte-identical event streams\n\
         \x20 --events PATH                     export the JSONL event stream\n\
         \x20 --check-invariants                sweep conservation/coherence invariants during the run\n\
         \x20 --bench-out PATH                  append this pass's wall-clock to a BENCH manifest\n\
         \x20 --fuzz                            search the fault space: generate plans, classify, shrink\n\
         \x20 --iters N                         fuzz iterations (default 32); each runs every scenario\n\
         \x20 --findings DIR                    where reproducers + findings.json land (default findings/)\n\
         \x20 --shrink-budget N                 oracle calls per delta-debugged finding (default 160)\n\
         \x20 --replay-corpus DIR               re-classify committed reproducers, exit 2 on verdict drift\n\
         \x20 --flight-recorder / --incident-out PATH / --stall-slo SECS / --queue-limit N\n\
         \x20                                   see FLIGHT RECORDER below\n\
         \x20 exit codes: 0 clean / no findings, 2 findings or corpus regressions, 1 error\n\n\
         POSTMORTEM OPTIONS:\n\
         \x20 --json PATH                       write the postmortem report as deterministic JSON\n\n\
         FLIGHT RECORDER (run / sim / chaos):\n\
         \x20 --flight-recorder                 always-on black box: ring-buffer the last events,\n\
         \x20                                   samples, and snapshots; arm deterministic watchdogs\n\
         \x20 --incident-out PATH               where a frozen incident dump is written (default incident.json)\n\
         \x20 --stall-slo SECS                  trip when a job makes no progress for SECS of sim time\n\
         \x20 --no-progress-slo SECS            trip when EVERY unfinished job stalls for SECS — the hang detector\n\
         \x20 --queue-limit N                   trip when the event queue exceeds N entries\n\n\
         PROFILE OPTIONS:\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: quick)\n\
         \x20 --policy P                        orig | subset of so,ao,ai,bg (default so/ao/ai/bg)\n\
         \x20 --events PATH                     also export the JSONL event stream\n\n\
         TRACE OPTIONS:\n\
         \x20 --perfetto PATH                   output file (default <id>.perfetto.json)\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: quick)\n\
         \x20 --policy P                        orig | subset of so,ao,ai,bg (default so/ao/ai/bg)\n\
         \x20 --sample-ms N                     gauge sampling cadence (default 500 quick, 5000 paper)\n\n\
         EXPLAIN OPTIONS:\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: quick)\n\
         \x20 --policy P                        orig | subset of so,ao,ai,bg (default so/ao/ai/bg)\n\
         \x20 --against P                       also run a base policy, emit the differential report\n\
         \x20 --json PATH                       write the (diff) report as deterministic JSON\n\
         \x20 --bench-out PATH                  append this pass's wall-clock to a BENCH manifest\n\n\
         PERF OPTIONS:\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: quick)\n\
         \x20 --policy P                        orig | subset of so,ao,ai,bg (default so/ao/ai/bg)\n\
         \x20 --top N                           span-table rows (default 12)\n\
         \x20 --json PATH                       write the full profile as deterministic JSON\n\
         \x20 --collapsed PATH                  write collapsed stacks (flamegraph.pl / inferno input)\n\
         \x20 --prometheus PATH                 write the Prometheus text exposition\n\n\
         TOP OPTIONS:\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: quick)\n\
         \x20 --policy P                        orig | subset of so,ao,ai,bg (default so/ao/ai/bg)\n\
         \x20 --every SECS                      sim-time snapshot cadence (default 5)\n\
         \x20 --snapshot-out PATH               also append every MetricsSnapshot as a JSONL stream\n\n\
         REPORT OPTIONS:\n\
         \x20 --scale paper|quick               testbed geometry or CI-sized (default: quick)\n\
         \x20 --jobs N                          fan the registry out over N worker threads (default 1)\n\
         \x20 --check                           compare against the committed golden; exit 1 on drift\n\
         \x20 --update-golden                   rewrite the committed golden from this run\n\
         \x20 --out PATH                        manifest path (default report.json)\n\
         \x20 --bench-out PATH                  self-timing path (default BENCH_agp.json)\n\
         \x20 --golden PATH                     golden path (default goldens/report.<scale>.json)\n\
         \x20 --iters N                         timing iterations per experiment; wall = min (default 1)\n\
         \x20 --stamp LABEL                     bench-manifest run label (default: <scale>-seed<seed>-j<jobs>)\n\
         \x20 --wall-band REL                   --check wall-clock regression band, fraction (default 2.0)\n\
         \x20 --wall-abs SECS                   --check wall-clock absolute slack (default 1.0)\n\n\
         LINT OPTIONS:\n\
         \x20 --explain RULE-ID                 print the rationale for one lint rule and exit\n\
         \x20 --format text|json|sarif          report format (default: text)\n\
         \x20 --sarif PATH                      also write a SARIF 2.1.0 report to PATH\n\
         \x20 --deny-warnings                   exit non-zero on warnings too (CI mode)\n\
         \x20 --root DIR                        workspace root to scan (default: auto-detected)"
    );
}

/// `agp lint` — run the agp-lint analysis over the workspace, or print a
/// rule's rationale with `--explain`. Mirrors the standalone `agp-lint`
/// binary so CI and operators can use whichever entry point is handy.
fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    use agp_lint::{exit_code, explain, lint_workspace, render_json, render_sarif, rules};

    let mut format = String::from("text");
    let mut sarif_path: Option<std::path::PathBuf> = None;
    let mut deny_warnings = false;
    let mut root: Option<std::path::PathBuf> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => {
                let id = it.next().ok_or("--explain expects a rule id")?;
                let text = explain::explain(id).ok_or_else(|| {
                    format!(
                        "unknown rule '{id}' (one of: {})",
                        rules::ALL_IDS.join(", ")
                    )
                })?;
                print!("{text}");
                return Ok(ExitCode::SUCCESS);
            }
            "--format" => {
                let f = it.next().ok_or("--format expects text|json|sarif")?;
                if !matches!(f.as_str(), "text" | "json" | "sarif") {
                    return Err(format!("--format expects text|json|sarif, got '{f}'"));
                }
                format = f.clone();
            }
            "--sarif" => {
                sarif_path = Some(it.next().ok_or("--sarif expects an output file")?.into());
            }
            "--deny-warnings" => deny_warnings = true,
            "--root" => root = Some(it.next().ok_or("--root expects a directory")?.into()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_workspace_root().ok_or("could not find a workspace root (use --root)")?,
    };
    let diags = lint_workspace(&root).map_err(|e| e.to_string())?;

    if let Some(path) = &sarif_path {
        std::fs::write(path, render_sarif(&diags))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    match format.as_str() {
        "json" => print!("{}", render_json(&diags)),
        "sarif" => print!("{}", render_sarif(&diags)),
        _ => {
            for d in &diags {
                println!("{}", d.render_text());
            }
            if diags.is_empty() {
                println!("agp lint: clean");
            } else {
                println!("agp lint: {} finding(s)", diags.len());
            }
        }
    }
    Ok(ExitCode::from(exit_code(&diags, deny_warnings) as u8))
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]` table.
fn find_workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn cmd_list() -> Result<(), String> {
    println!("{:<10} TITLE", "ID");
    for e in all_experiments() {
        println!("{:<10} {}", e.id, e.title);
    }
    Ok(())
}

/// The `--flight-recorder` flag family shared by `run`, `sim`, and
/// `chaos`: whether to arm the black-box recorder, where a frozen
/// incident dump lands, and the optional watchdog rule knobs.
#[derive(Clone, Debug, Default)]
struct FlightArgs {
    armed: bool,
    incident_out: Option<String>,
    stall_slo_secs: Option<u64>,
    queue_limit: Option<u64>,
    no_progress_slo_secs: Option<u64>,
}

impl FlightArgs {
    /// Consume one CLI token if it belongs to this flag family.
    /// Returns `Ok(true)` when the token (and possibly its value) was
    /// taken, `Ok(false)` when it is not a flight flag.
    fn accept(&mut self, arg: &str, it: &mut std::slice::Iter<'_, String>) -> Result<bool, String> {
        match arg {
            "--flight-recorder" => self.armed = true,
            "--incident-out" => {
                self.incident_out = Some(it.next().ok_or("--incident-out needs a value")?.clone());
            }
            "--stall-slo" => {
                self.stall_slo_secs = Some(
                    it.next()
                        .ok_or("--stall-slo needs a value")?
                        .parse()
                        .map_err(|e| format!("--stall-slo: {e}"))?,
                );
            }
            "--queue-limit" => {
                self.queue_limit = Some(
                    it.next()
                        .ok_or("--queue-limit needs a value")?
                        .parse()
                        .map_err(|e| format!("--queue-limit: {e}"))?,
                );
            }
            "--no-progress-slo" => {
                self.no_progress_slo_secs = Some(
                    it.next()
                        .ok_or("--no-progress-slo needs a value")?
                        .parse()
                        .map_err(|e| format!("--no-progress-slo: {e}"))?,
                );
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn incident_path(&self) -> &str {
        self.incident_out.as_deref().unwrap_or("incident.json")
    }

    /// Arm the process-global recorder (no-op without `--flight-recorder`).
    fn arm(&self) {
        if self.armed {
            flight::arm(FlightConfig {
                stall_slo_us: self.stall_slo_secs.map(|s| s.saturating_mul(1_000_000)),
                queue_limit: self.queue_limit,
                no_progress_us: self
                    .no_progress_slo_secs
                    .map(|s| s.saturating_mul(1_000_000)),
                ..FlightConfig::default()
            });
            eprintln!(
                "flight recorder: armed (incident dump → {})",
                self.incident_path()
            );
        }
    }

    /// Route a failed run's error through the recorder: if the ring froze
    /// (watchdog trip or error unwind), write the incident dump next to
    /// the error message. Infallible by design — dump-write problems are
    /// appended to the error rather than masking it.
    fn on_error(&self, err: String) -> String {
        if !self.armed {
            return err;
        }
        let path = self.incident_path();
        match flight::take_incident() {
            Some(dump) => match std::fs::write(path, dump.to_json_string()) {
                Ok(()) => {
                    eprintln!("flight recorder: wrote incident dump to {path}");
                    format!("{err} (incident dump: {path})")
                }
                Err(e) => format!("{err} (incident dump write failed: {path}: {e})"),
            },
            None => err,
        }
    }

    /// Finish a successful run: report that the armed window is clean and
    /// disarm. A clean run never writes a dump.
    fn on_success(&self) {
        if self.armed {
            flight::disarm();
            eprintln!("flight recorder: clean run, no incident");
        }
    }
}

struct Flags {
    scale: Scale,
    csv: bool,
    json: bool,
    trace: bool,
    jobs: usize,
    progress: bool,
    snapshot_out: Option<String>,
    flight: FlightArgs,
}

fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags {
        scale: Scale::Paper,
        csv: false,
        json: false,
        trace: false,
        jobs: 1,
        progress: false,
        snapshot_out: None,
        flight: FlightArgs::default(),
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if flags.flight.accept(a.as_str(), &mut it)? {
            continue;
        }
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                flags.scale = v.parse()?;
            }
            "--jobs" => {
                flags.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if flags.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--progress" => flags.progress = true,
            "--snapshot-out" => {
                flags.snapshot_out = Some(it.next().ok_or("--snapshot-out needs a value")?.clone());
            }
            "--csv" => flags.csv = true,
            "--json" => flags.json = true,
            "--trace" => flags.trace = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option '{other}'"));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((positional, flags))
}

/// Sim-time cadence for the global monitor hub: coarse enough that the
/// extra `Monitor` events are noise even on paper-scale runs, fine enough
/// for a useful progress feed.
const HUB_SNAP_EVERY: SimDur = SimDur::from_secs(10);

/// Tail the snapshot channel on a thread of its own: optionally append
/// every snapshot as a JSONL line, optionally print periodic progress
/// summaries. Returns the number of snapshots written/seen.
fn spawn_snapshot_tail(
    rx: mpsc::Receiver<MetricsSnapshot>,
    snapshot_out: Option<String>,
    progress: bool,
) -> std::thread::JoinHandle<Result<u64, String>> {
    std::thread::spawn(move || {
        let mut file = match &snapshot_out {
            Some(path) => Some(std::io::BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("--snapshot-out {path}: {e}"))?,
            )),
            None => None,
        };
        // Latest snapshot per run label. Concurrent runs that share a
        // label collapse into one progress line; the JSONL stream keeps
        // every snapshot either way.
        let mut latest: std::collections::BTreeMap<String, MetricsSnapshot> =
            std::collections::BTreeMap::new();
        let mut seen = 0u64;
        let mut last_print = Instant::now();
        let print_summary = |latest: &std::collections::BTreeMap<String, MetricsSnapshot>| {
            let live = latest.values().filter(|s| !s.done).count();
            let done = latest.values().filter(|s| s.done).count();
            let sum = |f: fn(&MetricsSnapshot) -> u64| latest.values().map(f).sum::<u64>();
            eprintln!(
                "progress: {live} run(s) live, {done} finished | {} events | {} switches | \
                 {} major faults | {} in / {} out pages",
                sum(|s| s.events),
                sum(|s| s.switches),
                sum(|s| s.faults_major),
                sum(|s| s.pages_in),
                sum(|s| s.pages_out),
            );
        };
        while let Ok(snap) = rx.recv() {
            seen += 1;
            if let Some(f) = &mut file {
                writeln!(f, "{}", snap.to_json_line()).map_err(|e| {
                    format!(
                        "--snapshot-out {}: {e}",
                        snapshot_out.as_deref().unwrap_or("")
                    )
                })?;
            }
            if progress {
                latest.insert(snap.label.clone(), snap);
                if last_print.elapsed() >= Duration::from_secs(2) {
                    print_summary(&latest);
                    last_print = Instant::now();
                }
            }
        }
        if let Some(f) = &mut file {
            f.flush().map_err(|e| {
                format!(
                    "--snapshot-out {}: {e}",
                    snapshot_out.as_deref().unwrap_or("")
                )
            })?;
        }
        if progress && !latest.is_empty() {
            print_summary(&latest);
        }
        Ok(seen)
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let id = pos.first().ok_or(
        "usage: agp run <id>|all [--scale paper|quick] [--jobs N] [--progress] [--snapshot-out PATH]",
    )?;
    let experiments = if id == "all" {
        all_experiments()
    } else {
        vec![find(id).ok_or_else(|| format!("no experiment '{id}' (see `agp list`)"))?]
    };

    // Arm the flight recorder (if requested) before any sim is
    // constructed, so every run's observer fanout splices the ring in.
    flags.flight.arm();
    // Arm the global monitor hub before any sim is constructed; the tail
    // thread drains it until the hub sender (and every sim's clone of it)
    // is gone.
    let tail = if flags.progress || flags.snapshot_out.is_some() {
        let (tx, rx) = mpsc::channel();
        MonitorHub::install(tx, HUB_SNAP_EVERY);
        Some(spawn_snapshot_tail(
            rx,
            flags.snapshot_out.clone(),
            flags.progress,
        ))
    } else {
        None
    };

    // Fan the experiments out (inline when --jobs 1), then render in
    // input order — the rendered output is byte-identical at any width.
    let n = experiments.len();
    let t0 = Instant::now();
    if flags.jobs > 1 {
        eprintln!(
            "running {n} experiment(s) over {} worker(s) ({:?} scale)...",
            flags.jobs.min(n.max(1)),
            flags.scale
        );
    }
    let pooled = run_pool(n, flags.jobs, |i| {
        let e = &experiments[i];
        if flags.jobs <= 1 {
            eprintln!("running {} ({:?} scale)...", e.id, flags.scale);
        }
        let t = Instant::now();
        let out = (e.runner)(flags.scale);
        eprintln!("{} finished in {:.1?}", e.id, t.elapsed());
        out
    });

    // Always disarm the hub and reap the tail before propagating run
    // errors, so a failed experiment can't leak the installation.
    if tail.is_some() {
        MonitorHub::uninstall();
    }
    let outs = pooled.map_err(|e| flags.flight.on_error(e))?;
    if flags.jobs > 1 {
        eprintln!("all {n} experiment(s) finished in {:.1?}", t0.elapsed());
    }
    if let Some(handle) = tail {
        let seen = handle
            .join()
            .map_err(|_| "snapshot tail thread panicked".to_string())??;
        if let Some(path) = &flags.snapshot_out {
            eprintln!("wrote {seen} snapshots to {path}");
        }
    }
    for out in &outs {
        if let Err(e) = out {
            return Err(flags.flight.on_error(e.clone()));
        }
    }
    flags.flight.on_success();
    for out in outs {
        render(&out?, &flags)?;
    }
    Ok(())
}

fn render(out: &ExperimentOutput, flags: &Flags) -> Result<(), String> {
    if flags.json {
        let s = serde_json::to_string_pretty(out).map_err(|e| e.to_string())?;
        println!("{s}");
        return Ok(());
    }
    println!("\n#### {} — {}\n", out.id, out.title);
    for t in &out.tables {
        if flags.csv {
            println!("# {}", t.title());
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    }
    if flags.trace {
        for (label, trace) in &out.traces {
            println!("trace [{label:<11}] in : {}", sparkline(trace.ins()));
            println!("trace [{label:<11}] out: {}", sparkline(trace.outs()));
        }
    }
    if !out.notes.is_empty() {
        println!("\nnotes:");
        for n in &out.notes {
            println!("  * {n}");
        }
    }
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let mut bench = Benchmark::LU;
    let mut class = Class::B;
    let mut nodes = 1u32;
    let mut jobs = 2usize;
    let mut policy = PolicyConfig::original();
    let mut quantum = SimDur::from_secs(300);
    let mut mem = 1024u64;
    let mut wired = 574u64;
    let mut batch = false;
    let mut seed = 0x5EED_600Du64;
    let mut show_trace = false;
    let mut events: Option<String> = None;
    let mut obs_budget: Option<usize> = None;
    let mut check_invariants = false;
    let mut faults: Option<String> = None;
    let mut flight_args = FlightArgs::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        if flight_args.accept(a.as_str(), &mut it)? {
            continue;
        }
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bench" => bench = val("--bench")?.parse()?,
            "--class" => class = val("--class")?.parse()?,
            "--nodes" => {
                nodes = val("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--jobs" => jobs = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--policy" => policy = val("--policy")?.parse().map_err(|e| format!("{e}"))?,
            "--quantum" => {
                quantum = SimDur::from_secs(
                    val("--quantum")?
                        .parse()
                        .map_err(|e| format!("--quantum: {e}"))?,
                )
            }
            "--mem" => mem = val("--mem")?.parse().map_err(|e| format!("--mem: {e}"))?,
            "--wired" => {
                wired = val("--wired")?
                    .parse()
                    .map_err(|e| format!("--wired: {e}"))?
            }
            "--seed" => seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--batch" => batch = true,
            "--trace" => show_trace = true,
            "--events" => events = Some(val("--events")?.clone()),
            "--obs-budget" => {
                obs_budget = Some(
                    val("--obs-budget")?
                        .parse()
                        .map_err(|e| format!("--obs-budget: {e}"))?,
                )
            }
            "--check-invariants" => check_invariants = true,
            "--faults" => faults = Some(val("--faults")?.clone()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let workload = WorkloadSpec::parallel(bench, class, nodes);
    let mut cfg = ClusterConfig::paper_defaults(nodes);
    cfg.mem_mib = mem;
    cfg.wired_mib = wired;
    cfg.quantum = quantum;
    cfg.policy = policy;
    cfg.mode = if batch {
        ScheduleMode::Batch
    } else {
        ScheduleMode::Gang
    };
    cfg.seed = seed;
    cfg.check_invariants = check_invariants;
    cfg.jobs = (0..jobs)
        .map(|i| JobSpec::new(format!("{workload} #{}", i + 1), workload))
        .collect();
    if let Some(path) = &faults {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--faults {path}: {e}"))?;
        let plan = FaultPlan::from_json_str(&text).map_err(|e| format!("--faults {path}: {e}"))?;
        eprintln!(
            "injecting fault plan {path} ({} fault(s), plan seed {})",
            plan.faults.len(),
            plan.seed
        );
        cfg.faults = Some(plan);
    }

    let t0 = std::time::Instant::now();
    // A Collector rides along whenever faults are injected so the run can
    // report what actually fired (observers never perturb the sim).
    let collector = cfg.faults.is_some().then(|| shared(Collector::new()));
    // Without a budget, --events streams the full trace through the
    // chunked writer (memory stays O(chunk) regardless of run length).
    // With --obs-budget K, a last-K ring rides along instead and the
    // retained window is written out after the run.
    let budget = obs_budget.map(|k| shared(BudgetedSink::new(k)));
    let writer = match &events {
        Some(path) if budget.is_none() => {
            let file = std::fs::File::create(path).map_err(|e| format!("--events {path}: {e}"))?;
            Some(shared(ChunkedJsonlWriter::new(std::io::BufWriter::new(
                file,
            ))))
        }
        _ => None,
    };
    flight_args.arm();
    let run_result = if collector.is_none() && writer.is_none() && budget.is_none() {
        agp_cluster::run(cfg).map_err(String::from)
    } else {
        let mut sinks: Vec<SharedSink> = Vec::new();
        if let Some(c) = &collector {
            sinks.push(c.clone() as SharedSink);
        }
        if let Some(w) = &writer {
            sinks.push(w.clone() as SharedSink);
        }
        if let Some(b) = &budget {
            sinks.push(b.clone() as SharedSink);
        }
        let link = ObsLink::fanout(sinks);
        let r = agp_cluster::run_observed(cfg, &link).map_err(String::from);
        drop(link);
        r
    };
    let r = run_result.map_err(|e| flight_args.on_error(e))?;
    flight_args.on_success();
    if let Some(sink) = writer {
        let path = events.as_deref().unwrap_or("");
        let w = unwrap_sink(sink)?;
        let lines = w.lines();
        w.finish().map_err(|e| format!("--events {path}: {e}"))?;
        eprintln!("wrote {lines} events to {path}");
    }
    if let Some(sink) = budget {
        let b = unwrap_sink(sink)?;
        // Truncation is never silent: the retention summary prints even
        // when nothing was dropped.
        eprintln!("obs budget: {}", b.summary());
        if let Some(path) = &events {
            let mut out = String::with_capacity(b.len() * 64);
            for te in b.retained() {
                out.push_str(&te.event.to_json_line(te.at, te.src));
                out.push('\n');
            }
            std::fs::write(path, out).map_err(|e| format!("--events {path}: {e}"))?;
            eprintln!("wrote the {} retained events to {path}", b.len());
        }
    }
    eprintln!("simulated in {:.1?} ({} events)", t0.elapsed(), r.events);
    if check_invariants {
        eprintln!(
            "invariants: {} sweeps over {} node(s), zero violations",
            r.invariant_checks,
            r.nodes.len()
        );
    }

    println!(
        "policy {}  mode {:?}  makespan {:.1} min  switches {}",
        r.policy,
        r.mode,
        r.makespan.as_mins_f64(),
        r.switches
    );
    for j in &r.jobs {
        println!(
            "  {:<14} completed {:.1} min  ({} iterations)",
            j.name,
            j.completion.as_mins_f64(),
            j.iterations
        );
    }
    let es = r.total_engine_stats();
    println!(
        "paging: {} pages in, {} pages out, {} major faults, {} false evictions, {} replayed",
        r.total_pages_in(),
        r.total_pages_out(),
        es.major_faults,
        es.false_evictions,
        es.replayed_pages
    );
    println!(
        "engine: {} recorded, {} replay-skipped, {} reclaim calls, {} reclaimed, {} aggressive, {} readahead",
        es.recorded_pages,
        es.replay_skipped,
        es.reclaim_calls,
        es.reclaimed_pages,
        es.aggressive_evictions,
        es.readahead_pages
    );
    if show_trace {
        let tr = &r.nodes[0].trace;
        println!("node0 page-in  : {}", sparkline(tr.ins()));
        println!("node0 page-out : {}", sparkline(tr.outs()));
    }
    if let Some(sink) = collector {
        let c = unwrap_sink(sink)?;
        print_fault_summary(&c.counters);
    }
    Ok(())
}

/// What the injected faults and the recovery machinery did, from the
/// ride-along collector's chaos counters.
fn print_fault_summary(c: &agp_obs::ObsCounters) {
    println!(
        "faults: {} disk errors ({} retries), {}us slowdown penalty, {} barrier timeouts, \
         {} mem-pressure pages",
        c.fault_disk_errors,
        c.fault_io_retries,
        c.fault_disk_slow_us,
        c.fault_barrier_timeouts,
        c.fault_mem_pressure_pages
    );
    println!(
        "recovery: {} node crashes, {} restarts, {} jobs requeued, {} ai degradations",
        c.fault_node_crashes, c.fault_node_restarts, c.fault_jobs_requeued, c.fault_ai_degrades
    );
}

/// `agp chaos`: run the demo cluster under a fault plan (the built-in
/// smoke plan unless `--plan` is given) and summarize what fired and how
/// the scheduler recovered. `--verify` runs the whole simulation twice
/// and requires byte-identical event streams — the determinism guarantee
/// `plans/smoke.json` is committed to document.
/// `agp chaos`: demo run, fuzzer, and corpus gate. Exit contract
/// (documented in the README and pinned by a CLI test): 0 = clean run /
/// no fuzz findings / corpus verdicts hold, 2 = fuzz findings written or
/// corpus regressions, 1 = any error.
fn cmd_chaos(args: &[String]) -> Result<ExitCode, String> {
    let mut plan_path: Option<String> = None;
    let mut emit_plan: Option<String> = None;
    let mut seed = 0x5EED_600Du64;
    let mut verify = false;
    let mut events: Option<String> = None;
    let mut check_invariants = false;
    let mut bench_out: Option<String> = None;
    let mut emit_trip_plan: Option<String> = None;
    let mut do_fuzz = false;
    let mut iters = 32u64;
    let mut findings_dir = "findings".to_string();
    let mut shrink_budget = fuzz::DEFAULT_SHRINK_BUDGET;
    let mut replay_corpus: Option<String> = None;
    let mut flight_args = FlightArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if flight_args.accept(a.as_str(), &mut it)? {
            continue;
        }
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--plan" => plan_path = Some(val("--plan")?.clone()),
            "--emit-plan" => emit_plan = Some(val("--emit-plan")?.clone()),
            "--emit-trip-plan" => emit_trip_plan = Some(val("--emit-trip-plan")?.clone()),
            "--seed" => seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--verify" => verify = true,
            "--events" => events = Some(val("--events")?.clone()),
            "--check-invariants" => check_invariants = true,
            "--bench-out" => bench_out = Some(val("--bench-out")?.clone()),
            "--fuzz" => do_fuzz = true,
            "--iters" => {
                iters = val("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--findings" => findings_dir = val("--findings")?.clone(),
            "--shrink-budget" => {
                shrink_budget = val("--shrink-budget")?
                    .parse()
                    .map_err(|e| format!("--shrink-budget: {e}"))?;
            }
            "--replay-corpus" => replay_corpus = Some(val("--replay-corpus")?.clone()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    if do_fuzz || replay_corpus.is_some() {
        // The verdict harness owns the process-global flight recorder
        // (fixed rule set, armed per classified run): the demo-run flag
        // families don't compose with it.
        if flight_args.armed || verify || plan_path.is_some() || events.is_some() {
            return Err(
                "--fuzz/--replay-corpus run under the harness's own flight recorder and \
                 scenario matrix; drop --flight-recorder/--verify/--plan/--events"
                    .into(),
            );
        }
        let t0 = std::time::Instant::now();
        let (failures, bench_key) = match &replay_corpus {
            Some(dir) => (fuzz::replay_corpus(dir)?, "chaos.replay"),
            None => (
                fuzz::run_fuzz(seed, iters, &findings_dir, shrink_budget)?,
                "chaos.fuzz",
            ),
        };
        if let Some(path) = &bench_out {
            append_bench(path, bench_key, t0.elapsed().as_secs_f64())?;
        }
        return Ok(if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        });
    }

    if let Some(path) = &emit_plan {
        let plan = FaultPlan::smoke(seed);
        std::fs::write(path, plan.to_json_string())
            .map_err(|e| format!("--emit-plan {path}: {e}"))?;
        println!(
            "wrote the built-in smoke plan (seed {seed}, {} faults) to {path}",
            plan.faults.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(path) = &emit_trip_plan {
        let plan = FaultPlan::trip(seed);
        std::fs::write(path, plan.to_json_string())
            .map_err(|e| format!("--emit-trip-plan {path}: {e}"))?;
        println!(
            "wrote the recovery-exhaustion trip plan (seed {seed}, {} fault(s)) to {path}",
            plan.faults.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let plan = match &plan_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("--plan {path}: {e}"))?;
            FaultPlan::from_json_str(&text).map_err(|e| format!("--plan {path}: {e}"))?
        }
        None => FaultPlan::smoke(seed),
    };
    let mut cfg = chaos_demo(seed);
    cfg.check_invariants = check_invariants;
    cfg.faults = Some(plan);
    cfg.validate()?;

    // One observed run: collector for the summary, an in-memory JSONL
    // writer for --verify's byte comparison, a file writer for --events.
    let run_once = |cfg: ClusterConfig,
                    capture: bool|
     -> Result<(agp_cluster::RunResult, agp_obs::ObsCounters, Vec<u8>), String> {
        let collector = shared(Collector::new());
        let mem = capture.then(|| shared(JsonlWriter::new(Vec::new())));
        let mut sinks: Vec<SharedSink> = vec![collector.clone() as SharedSink];
        if let Some(m) = &mem {
            sinks.push(m.clone() as SharedSink);
        }
        let link = ObsLink::fanout(sinks);
        let r = agp_cluster::run_observed(cfg, &link)?;
        drop(link);
        let counters = unwrap_sink(collector)?.counters;
        let bytes = match mem {
            Some(m) => unwrap_sink(m)?
                .finish()
                .map_err(|e| format!("event capture: {e}"))?,
            None => Vec::new(),
        };
        Ok((r, counters, bytes))
    };

    let t0 = std::time::Instant::now();
    eprintln!(
        "chaos demo: 2x CG.A on 2 nodes, policy {}, seed {seed}, {} fault(s)",
        cfg.policy.label(),
        cfg.faults.as_ref().map_or(0, |p| p.faults.len())
    );
    flight_args.arm();
    let (r, counters, first) =
        run_once(cfg.clone(), verify || events.is_some()).map_err(|e| flight_args.on_error(e))?;
    eprintln!("simulated in {:.1?} ({} events)", t0.elapsed(), r.events);

    if verify {
        let (_, _, second) = run_once(cfg.clone(), true).map_err(|e| flight_args.on_error(e))?;
        if first != second {
            return Err("verify: same plan + seed produced divergent event streams".into());
        }
        println!(
            "verify: two runs, byte-identical event streams ({} bytes)",
            first.len()
        );
        // The counter-tiling audit (same invariant the fuzz harness
        // enforces): retries tile disk errors exactly, degradations and
        // restarts stay within their budgets.
        if let Some(violation) = agp_cluster::counter_tiling_violation(&counters, cfg.nodes) {
            return Err(format!("verify: counter tiling violated: {violation}"));
        }
        println!("verify: fault counters tile (retries == errors, degradations within bounds)");
    }
    flight_args.on_success();
    if let Some(path) = &events {
        std::fs::write(path, &first).map_err(|e| format!("--events {path}: {e}"))?;
        eprintln!("wrote {} event bytes to {path}", first.len());
    }

    println!(
        "policy {}  mode {:?}  makespan {:.1} min  switches {}",
        r.policy,
        r.mode,
        r.makespan.as_mins_f64(),
        r.switches
    );
    for j in &r.jobs {
        println!(
            "  {:<14} completed {:.1} min  ({} iterations)",
            j.name,
            j.completion.as_mins_f64(),
            j.iterations
        );
    }
    print_fault_summary(&counters);
    if check_invariants {
        println!(
            "invariants: {} sweeps over {} node(s), zero violations",
            r.invariant_checks,
            r.nodes.len()
        );
    }
    if let Some(path) = &bench_out {
        append_bench(path, "chaos.smoke", t0.elapsed().as_secs_f64())?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Append one wall-clock timing row to a BENCH manifest (creating it
/// when absent).
fn append_bench(path: &str, key: &str, secs: f64) -> Result<(), String> {
    let mut bench = match std::fs::read_to_string(path) {
        Ok(text) => BenchManifest::parse(&text)
            .map_err(|e| format!("--bench-out {path}: {e} (delete it to start fresh)"))?,
        Err(_) => BenchManifest::new(),
    };
    bench.insert(key.to_string(), secs);
    std::fs::write(path, bench.to_json()).map_err(|e| format!("--bench-out {path}: {e}"))?;
    eprintln!("appended {key} wall-clock to {path}");
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let mut id: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut policy: Option<PolicyConfig> = None;
    let mut out: Option<String> = None;
    let mut sample_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale")?.parse()?,
            "--policy" => policy = Some(val("--policy")?.parse().map_err(|e| format!("{e}"))?),
            "--perfetto" => out = Some(val("--perfetto")?.clone()),
            "--sample-ms" => {
                sample_ms = Some(
                    val("--sample-ms")?
                        .parse()
                        .map_err(|e| format!("--sample-ms: {e}"))?,
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => id = Some(other.to_string()),
        }
    }
    let id = id.ok_or(
        "usage: agp trace <id> [--perfetto PATH] [--scale paper|quick] [--policy P] [--sample-ms N]",
    )?;
    let mut cfg = profile_config(&id, scale)
        .ok_or_else(|| format!("no experiment '{id}' (see `agp list`)"))?;
    if let Some(p) = policy {
        cfg.policy = p;
    }
    // Default cadence: dense enough to draw counter tracks, coarse enough
    // that gauges stay a small fraction of the trace.
    cfg.sample_every = Some(SimDur::from_ms(sample_ms.unwrap_or(match scale {
        Scale::Paper => 5_000,
        Scale::Quick => 500,
    })));
    let path = out.unwrap_or_else(|| format!("{id}.perfetto.json"));

    let sink = shared(PerfettoTrace::new());
    let analyzer = shared(agp_explain::Analyzer::new());
    let link = ObsLink::fanout(vec![
        sink.clone() as SharedSink,
        analyzer.clone() as SharedSink,
    ]);
    eprintln!("tracing {id} ({scale:?} scale)...");
    // Self-profile the traced run so the export carries a "host perf"
    // counter track next to the sim tracks.
    agp_perf::enable(true);
    let _ = agp_perf::take_report();
    let t0 = std::time::Instant::now();
    let r = agp_cluster::run_observed(cfg, &link)?;
    agp_perf::enable(false);
    let perf = agp_perf::take_report();
    drop(link);
    eprintln!("simulated in {:.1?} ({} events)", t0.elapsed(), r.events);
    let mut trace = unwrap_sink(sink)?;
    trace.host_perf_track(&perf, r.makespan.as_us());
    // Overlay the per-switch critical path as its own track: one span
    // per attributed cause segment, tiling each switch exactly.
    let analysis = unwrap_sink(analyzer)?;
    let mut highlighted = 0usize;
    for sw in analysis.switches() {
        let mut ts = sw.at_us;
        for seg in &sw.segments {
            trace.highlight(ts, seg.dur_us, seg.cause.name());
            ts += seg.dur_us;
        }
        highlighted += 1;
    }
    eprintln!("highlighted the critical path of {highlighted} switches");
    let spans = trace.len();
    std::fs::write(&path, trace.finish()).map_err(|e| format!("--perfetto {path}: {e}"))?;
    eprintln!("wrote {spans} trace events to {path} (open in ui.perfetto.dev)");
    println!(
        "policy {}  mode {:?}  makespan {:.1} min  switches {}",
        r.policy,
        r.mode,
        r.makespan.as_mins_f64(),
        r.switches
    );
    Ok(())
}

/// Self-profile one experiment run: hot-span table, throughput gauges,
/// and the flamegraph / JSON / Prometheus exports.
fn cmd_perf(args: &[String]) -> Result<(), String> {
    let mut id: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut policy: Option<PolicyConfig> = None;
    let mut top = 12usize;
    let mut json_out: Option<String> = None;
    let mut collapsed_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale")?.parse()?,
            "--policy" => policy = Some(val("--policy")?.parse().map_err(|e| format!("{e}"))?),
            "--top" => top = val("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--json" => json_out = Some(val("--json")?.clone()),
            "--collapsed" => collapsed_out = Some(val("--collapsed")?.clone()),
            "--prometheus" => prom_out = Some(val("--prometheus")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => id = Some(other.to_string()),
        }
    }
    let id = id.ok_or(
        "usage: agp perf <id> [--scale paper|quick] [--policy P] [--top N] \
         [--json PATH] [--collapsed PATH] [--prometheus PATH]",
    )?;
    let mut cfg = profile_config(&id, scale)
        .ok_or_else(|| format!("no experiment '{id}' (see `agp list`)"))?;
    if let Some(p) = policy {
        cfg.policy = p;
    }

    agp_perf::enable(true);
    let _ = agp_perf::take_report(); // discard anything a prior region recorded
    eprintln!("profiling {id} ({scale:?} scale)...");
    let t0 = std::time::Instant::now();
    let r = agp_cluster::run(cfg)?;
    let wall = t0.elapsed();
    agp_perf::enable(false);
    let mut rep = agp_perf::take_report();
    let es = r.total_engine_stats();
    let d = agp_perf::Derived {
        events: r.events,
        faults: es.major_faults + es.minor_faults,
        sim_us: r.makespan.as_us(),
        wall_ns: wall.as_nanos() as u64,
    };
    rep.derived = Some(d);

    println!(
        "profiled {id} ({} scale): policy {}, wall {:.3} s, {} events, {} switches",
        scale_name(scale),
        r.policy,
        wall.as_secs_f64(),
        r.events,
        r.switches
    );
    println!(
        "rates: {:.0} events/s, {:.0} faults/s, {:.1} sim-us per wall-ms",
        d.events_per_sec(),
        d.faults_per_sec(),
        d.sim_us_per_wall_ms()
    );

    println!(
        "\n{:<14} {:>10} {:>11} {:>11} {:>6} {:>9} {:>9}",
        "SPAN", "CALLS", "TOTAL_MS", "SELF_MS", "SELF%", "P50_NS", "P99_NS"
    );
    let total_self = rep.total_self_ns();
    for agg in rep.by_self_time().into_iter().take(top) {
        let pct = if total_self == 0 {
            0.0
        } else {
            agg.excl_ns as f64 * 100.0 / total_self as f64
        };
        println!(
            "{:<14} {:>10} {:>11.3} {:>11.3} {:>6.1} {:>9} {:>9}",
            agg.span.name(),
            agg.count,
            agg.incl_ns as f64 / 1e6,
            agg.excl_ns as f64 / 1e6,
            pct,
            agg.p50_ns(),
            agg.p99_ns()
        );
    }

    // Tiling: self times sum to the root span's inclusive time by
    // construction; both should cover nearly all of the measured wall
    // (the gap is setup/teardown outside the instrumented run).
    let root_ns = rep
        .spans
        .iter()
        .find(|a| a.span == agp_perf::Span::Run)
        .map_or(0, |a| a.incl_ns);
    let wall_ns = wall.as_nanos() as u64;
    let coverage = if wall_ns == 0 {
        0.0
    } else {
        total_self as f64 * 100.0 / wall_ns as f64
    };
    println!(
        "\ncoverage: spans tile {:.3} ms of {:.3} ms wall ({:.1}%); root span {:.3} ms, {} unbalanced exits",
        total_self as f64 / 1e6,
        wall_ns as f64 / 1e6,
        coverage,
        root_ns as f64 / 1e6,
        rep.unbalanced_exits
    );

    if let Some(path) = &json_out {
        std::fs::write(path, rep.to_json_string()).map_err(|e| format!("--json {path}: {e}"))?;
        eprintln!("wrote profile JSON to {path}");
    }
    if let Some(path) = &collapsed_out {
        std::fs::write(path, rep.collapsed()).map_err(|e| format!("--collapsed {path}: {e}"))?;
        eprintln!("wrote collapsed stacks to {path} (flamegraph.pl / inferno-flamegraph input)");
    }
    if let Some(path) = &prom_out {
        std::fs::write(path, agp_perf::render_prometheus(&rep))
            .map_err(|e| format!("--prometheus {path}: {e}"))?;
        eprintln!("wrote Prometheus exposition to {path}");
    }
    Ok(())
}

/// `agp top <id>` — run one experiment configuration with a live,
/// continuously refreshed status line: sim-vs-wall speed ratio, event
/// and paging rates, fault count, job completion and an ETA. The sim
/// runs on a worker thread and streams [`MetricsSnapshot`]s over the
/// direct `attach_monitor` channel; all wall-clock math happens here on
/// the receiver side, so the run itself stays deterministic.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut id: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut policy: Option<PolicyConfig> = None;
    let mut every_secs = 5u64;
    let mut snapshot_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale")?.parse()?,
            "--policy" => policy = Some(val("--policy")?.parse().map_err(|e| format!("{e}"))?),
            "--every" => {
                every_secs = val("--every")?
                    .parse()
                    .map_err(|e| format!("--every: {e}"))?
            }
            "--snapshot-out" => snapshot_out = Some(val("--snapshot-out")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => id = Some(other.to_string()),
        }
    }
    let id = id.ok_or(
        "usage: agp top <id> [--scale paper|quick] [--policy P] [--every SECS] \
         [--snapshot-out PATH]",
    )?;
    let mut cfg = profile_config(&id, scale)
        .ok_or_else(|| format!("no experiment '{id}' (see `agp list`)"))?;
    if let Some(p) = policy {
        cfg.policy = p;
    }

    let (tx, rx) = mpsc::channel();
    let every = SimDur::from_secs(every_secs.max(1));
    eprintln!(
        "monitoring {id} ({scale:?} scale, snapshot every {:.0} sim-s)...",
        every.as_secs_f64()
    );
    let worker = std::thread::spawn(move || -> Result<agp_cluster::RunResult, String> {
        let mut sim = ClusterSim::new(cfg).map_err(String::from)?;
        sim.attach_monitor(tx, every);
        sim.run().map_err(String::from)
    });

    let mut file = match &snapshot_out {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("--snapshot-out {path}: {e}"))?,
        )),
        None => None,
    };
    let t0 = Instant::now();
    let mut last_draw: Option<Instant> = None;
    let mut snaps = 0u64;
    while let Ok(snap) = rx.recv() {
        snaps += 1;
        if let Some(f) = &mut file {
            writeln!(f, "{}", snap.to_json_line()).map_err(|e| {
                format!(
                    "--snapshot-out {}: {e}",
                    snapshot_out.as_deref().unwrap_or("")
                )
            })?;
        }
        if snap.done || last_draw.is_none_or(|t| t.elapsed() >= Duration::from_millis(200)) {
            eprint!("\r{}", top_line(&snap, t0.elapsed()));
            let _ = std::io::stderr().flush();
            last_draw = Some(Instant::now());
        }
    }
    if last_draw.is_some() {
        eprintln!();
    }
    if let Some(f) = &mut file {
        f.flush().map_err(|e| {
            format!(
                "--snapshot-out {}: {e}",
                snapshot_out.as_deref().unwrap_or("")
            )
        })?;
    }
    let r = worker
        .join()
        .map_err(|_| "simulation thread panicked".to_string())??;
    if let Some(path) = &snapshot_out {
        eprintln!("wrote {snaps} snapshots to {path}");
    }
    println!(
        "policy {}  mode {:?}  makespan {:.1} min  switches {}",
        r.policy,
        r.mode,
        r.makespan.as_mins_f64(),
        r.switches
    );
    println!(
        "monitored {snaps} snapshot(s) over {:.1?} wall ({} events)",
        t0.elapsed(),
        r.events
    );
    Ok(())
}

/// Render one `agp top` status line from the latest snapshot and the
/// wall clock (trailing padding overwrites any longer previous line).
fn top_line(s: &MetricsSnapshot, wall: Duration) -> String {
    let wall_s = wall.as_secs_f64().max(1e-9);
    let eta = if s.done {
        "done".to_string()
    } else if s.jobs_done == 0 {
        "eta --".to_string()
    } else {
        // Wall time scaled by the jobs still outstanding — coarse, but
        // honest about what the sim has actually committed to.
        format!(
            "eta {:.0} s",
            wall_s * (s.jobs_total as f64 / s.jobs_done as f64 - 1.0)
        )
    };
    format!(
        "top [{}] sim {:.1} min | {:.0} sim-us/wall-ms | {:.0} ev/s | {} faults | \
         {:.0} in {:.0} out pg/s | jobs {}/{} | {}   ",
        s.label,
        s.sim_us as f64 / 6e7,
        s.sim_us as f64 / (wall_s * 1e3),
        s.events as f64 / wall_s,
        s.faults_major,
        s.pages_in as f64 / wall_s,
        s.pages_out as f64 / wall_s,
        s.jobs_done,
        s.jobs_total,
        eta
    )
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut scale = Scale::Quick;
    let mut check = false;
    let mut update_golden = false;
    let mut out = "report.json".to_string();
    let mut bench_out = "BENCH_agp.json".to_string();
    let mut golden: Option<String> = None;
    let mut iters = 1u32;
    let mut stamp = String::new();
    let mut wall_band = 2.0f64;
    let mut wall_abs = 1.0f64;
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale")?.parse()?,
            "--jobs" => {
                jobs = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--check" => check = true,
            "--update-golden" => update_golden = true,
            "--out" => out = val("--out")?.clone(),
            "--bench-out" => bench_out = val("--bench-out")?.clone(),
            "--golden" => golden = Some(val("--golden")?.clone()),
            "--iters" => {
                iters = val("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
                if iters == 0 {
                    return Err("--iters must be at least 1".into());
                }
            }
            "--stamp" => stamp = val("--stamp")?.clone(),
            "--wall-band" => {
                wall_band = val("--wall-band")?
                    .parse()
                    .map_err(|e| format!("--wall-band: {e}"))?
            }
            "--wall-abs" => {
                wall_abs = val("--wall-abs")?
                    .parse()
                    .map_err(|e| format!("--wall-abs: {e}"))?
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let golden_path =
        golden.unwrap_or_else(|| format!("goldens/report.{}.json", scale_name(scale)));
    // The default stamp is derived, not sampled: same scale/seed/jobs →
    // same stamp, so regenerating the committed manifest on any machine
    // yields an identical metadata block.
    if stamp.is_empty() {
        stamp = format!("{}-seed{:x}-j{jobs}", scale_name(scale), REPORT_SEED);
    }

    // Read the committed wall-clock baseline before this run overwrites
    // it. Unreadable/missing baselines downgrade the wall gate to a
    // warning — the parity gate below stays strict either way.
    let baseline = if check && !update_golden {
        match std::fs::read_to_string(&bench_out) {
            Ok(text) => match BenchManifest::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!(
                        "warning: wall-clock baseline {bench_out}: {e}; skipping the wall gate"
                    );
                    None
                }
            },
            Err(_) => {
                eprintln!("warning: no wall-clock baseline at {bench_out}; skipping the wall gate");
                None
            }
        }
    } else {
        None
    };

    // Start from the manifest already on disk (rows appended by other
    // gate steps — `explain.*`, `chaos.smoke`, the other `registry.jobsN`
    // width — survive a rerun). A missing, unparsable or cross-profile
    // manifest starts fresh.
    let mut bench = match std::fs::read_to_string(&bench_out) {
        Ok(text) => BenchManifest::parse(&text).unwrap_or_default(),
        Err(_) => BenchManifest::new(),
    };
    if bench.build_profile != BenchManifest::new().build_profile {
        bench = BenchManifest::new();
    }
    bench.iterations = iters;
    bench.stamp = stamp;
    let mut outputs = Vec::new();
    if jobs > 1 {
        // Fan the registry out over worker threads. The self-profiler is
        // process-global, so per-experiment wall rows and span cells are
        // a serial-only feature: a sharded sweep records one honest
        // number — the whole registry's wall — under `registry.jobsN`.
        let exps = all_experiments();
        eprintln!(
            "report: running {} experiments over {jobs} workers ({:?} scale, {iters} iter)...",
            exps.len(),
            scale
        );
        let mut best: Option<(f64, Vec<ExperimentOutput>)> = None;
        for _ in 0..iters {
            let t0 = std::time::Instant::now();
            let outs: Result<Vec<ExperimentOutput>, String> =
                run_pool(exps.len(), jobs, |i| (exps[i].runner)(scale))?
                    .into_iter()
                    .collect();
            let secs = t0.elapsed().as_secs_f64();
            let outs = outs?;
            if best.as_ref().is_none_or(|(b, _)| secs < *b) {
                best = Some((secs, outs));
            }
        }
        // agp-lint: allow(panic-site): iters >= 1 is enforced at flag parse
        let (secs, outs) = best.expect("iters >= 1");
        eprintln!("report: registry sweep took {secs:.1} s over {jobs} workers");
        bench.insert(format!("registry.jobs{jobs}"), secs);
        outputs = outs;
    } else {
        // Experiments run under the self-profiler so the bench manifest
        // carries per-span host-time aggregates next to the wall numbers.
        agp_perf::enable(true);
        let _ = agp_perf::take_report();
        for e in all_experiments() {
            eprintln!(
                "report: running {} ({:?} scale, {iters} iter)...",
                e.id, scale
            );
            let mut best: Option<(f64, agp_perf::PerfReport, ExperimentOutput)> = None;
            for _ in 0..iters {
                let t0 = std::time::Instant::now();
                let output = (e.runner)(scale)?;
                let secs = t0.elapsed().as_secs_f64();
                let rep = agp_perf::take_report();
                if best.as_ref().is_none_or(|(b, _, _)| secs < *b) {
                    best = Some((secs, rep, output));
                }
            }
            // agp-lint: allow(panic-site): iters >= 1 is enforced at flag parse
            let (secs, rep, output) = best.expect("iters >= 1");
            outputs.push(output);
            bench.insert(e.id, secs);
            let cells: std::collections::BTreeMap<String, agp_metrics::SpanCell> = rep
                .spans
                .iter()
                .map(|a| {
                    (
                        a.span.name().to_string(),
                        agp_metrics::SpanCell {
                            calls: a.count,
                            total_ns: a.incl_ns,
                            self_ns: a.excl_ns,
                        },
                    )
                })
                .collect();
            if !cells.is_empty() {
                bench.insert_spans(e.id, cells);
            }
        }
        agp_perf::enable(false);
        // The serial sweep's wall is the sum of its best per-experiment
        // runs — the `--jobs N` speedup baseline.
        let total: f64 = all_experiments()
            .iter()
            .filter_map(|e| bench.wall_secs.get(e.id).copied())
            .sum();
        bench.insert("registry.jobs1", total);
    }
    let manifest = manifest_of(&outputs, scale);
    std::fs::write(&out, manifest.to_json()).map_err(|e| format!("--out {out}: {e}"))?;
    std::fs::write(&bench_out, bench.to_json())
        .map_err(|e| format!("--bench-out {bench_out}: {e}"))?;
    eprintln!(
        "wrote {} metrics to {out}, {} timings to {bench_out}",
        manifest.metrics.len(),
        bench.wall_secs.len()
    );

    if update_golden {
        if let Some(dir) = std::path::Path::new(&golden_path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        std::fs::write(&golden_path, manifest.to_json())
            .map_err(|e| format!("--golden {golden_path}: {e}"))?;
        eprintln!("updated golden {golden_path}");
    }
    if check {
        let text = std::fs::read_to_string(&golden_path).map_err(|e| {
            format!("--check: cannot read golden {golden_path}: {e} (run `agp report --update-golden`?)")
        })?;
        let gold = ParityManifest::parse(&text)
            .map_err(|e| format!("--check: golden {golden_path}: {e}"))?;
        let drifts = manifest.compare(&gold, &default_tolerances());
        if !drifts.is_empty() {
            for d in &drifts {
                eprintln!("drift: {d}");
            }
            return Err(format!(
                "{} metric(s) drifted from {golden_path}",
                drifts.len()
            ));
        }
        println!(
            "parity OK: {} metrics within tolerance of {golden_path}",
            manifest.metrics.len()
        );
        if let Some(base) = &baseline {
            if base.build_profile != bench.build_profile {
                eprintln!(
                    "warning: baseline built under '{}' but this run is '{}'; skipping the wall gate",
                    base.build_profile, bench.build_profile
                );
            } else {
                let band = agp_metrics::Tolerance::new(wall_band, wall_abs);
                let slow = bench.compare_wall(base, band);
                if !slow.is_empty() {
                    for d in &slow {
                        eprintln!("drift: {d}");
                    }
                    return Err(format!(
                        "{} experiment(s) regressed past the wall-clock band of {bench_out} \
                         (rerun, or refresh the baseline with `agp report` on a quiet machine)",
                        slow.len()
                    ));
                }
                println!(
                    "wall-clock OK: {} experiments within +max({wall_abs} s, {:.0}% ) of {bench_out}",
                    bench.wall_secs.len(),
                    wall_band * 100.0
                );
            }
        }
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let mut id: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut policy: Option<PolicyConfig> = None;
    let mut against: Option<PolicyConfig> = None;
    let mut json: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale")?.parse()?,
            "--policy" => policy = Some(val("--policy")?.parse().map_err(|e| format!("{e}"))?),
            "--against" => against = Some(val("--against")?.parse().map_err(|e| format!("{e}"))?),
            "--json" => json = Some(val("--json")?.clone()),
            "--bench-out" => bench_out = Some(val("--bench-out")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => id = Some(other.to_string()),
        }
    }
    let id = id.ok_or(
        "usage: agp explain <id> [--scale paper|quick] [--policy P] [--against P] \
         [--json PATH] [--bench-out PATH]",
    )?;
    let mut cfg = profile_config(&id, scale)
        .ok_or_else(|| format!("no experiment '{id}' (see `agp list`)"))?;
    if let Some(p) = policy {
        cfg.policy = p;
    }

    let t0 = std::time::Instant::now();
    eprintln!(
        "explaining {id} ({scale:?} scale, policy {})...",
        cfg.policy.label()
    );
    let (r, report) = agp_explain::explain_run(&cfg, &id, scale_name(scale))?;
    eprintln!("simulated in {:.1?} ({} events)", t0.elapsed(), r.events);
    println!(
        "policy {}  mode {:?}  makespan {:.1} min  switches {}",
        r.policy,
        r.mode,
        r.makespan.as_mins_f64(),
        r.switches
    );

    let json_text = match against {
        None => {
            for t in report.tables() {
                println!("{t}");
            }
            println!("notes:");
            for n in report.notes() {
                println!("  * {n}");
            }
            report.to_json_string()
        }
        Some(base_policy) => {
            let mut base_cfg = cfg.clone();
            base_cfg.policy = base_policy;
            eprintln!("explaining base policy {}...", base_cfg.policy.label());
            let (rb, base_report) = agp_explain::explain_run(&base_cfg, &id, scale_name(scale))?;
            eprintln!("base simulated ({} events)", rb.events);
            let diff = agp_explain::ExplainDiff::new(report, base_report);
            for t in diff.tables() {
                println!("{t}");
            }
            println!("attribution:");
            for n in diff.notes() {
                println!("  * {n}");
            }
            diff.to_json_string()
        }
    };
    if let Some(path) = &json {
        std::fs::write(path, &json_text).map_err(|e| format!("--json {path}: {e}"))?;
        eprintln!("wrote explain report to {path}");
    }
    if let Some(path) = &bench_out {
        let mut bench = match std::fs::read_to_string(path) {
            Ok(text) => BenchManifest::parse(&text)
                .map_err(|e| format!("--bench-out {path}: {e} (delete it to start fresh)"))?,
            Err(_) => BenchManifest::new(),
        };
        bench.insert(format!("explain.{id}"), t0.elapsed().as_secs_f64());
        std::fs::write(path, bench.to_json()).map_err(|e| format!("--bench-out {path}: {e}"))?;
        eprintln!("appended explain.{id} wall-clock to {path}");
    }
    Ok(())
}

/// `agp postmortem <dump>`: reload a flight-recorder incident dump,
/// triage the recorded window by subsystem, and replay it through the
/// explain analyzer. `--json PATH` writes the report as deterministic
/// JSON (golden-pinned — byte-identical for identical dumps).
fn cmd_postmortem(args: &[String]) -> Result<(), String> {
    let mut dump_path: Option<String> = None;
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = Some(it.next().ok_or("--json needs a value")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => dump_path = Some(other.to_string()),
        }
    }
    let dump_path = dump_path.ok_or("usage: agp postmortem <dump.json> [--json PATH]")?;
    let text = std::fs::read_to_string(&dump_path).map_err(|e| format!("{dump_path}: {e}"))?;
    let report = agp_explain::PostmortemReport::from_dump_str(&text)
        .map_err(|e| format!("{dump_path}: {e}"))?;

    println!("incident: {}", report.headline());
    println!(
        "run: {} (seed {}, config {:016x})\n",
        report.meta.scenario, report.meta.seed, report.meta.config_fp
    );
    for t in report.tables() {
        println!("{t}");
    }
    println!("notes:");
    for n in report.notes() {
        println!("  * {n}");
    }
    if let Some(path) = &json {
        std::fs::write(path, report.to_json_string()).map_err(|e| format!("--json {path}: {e}"))?;
        eprintln!("wrote postmortem report to {path}");
    }
    Ok(())
}

/// `agp trace-diff <left> <right>`: exit 0 when the JSONL traces are
/// identical, 2 at the first divergence (printed with context), 1 on
/// usage or I/O errors.
fn cmd_trace_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut pos = Vec::new();
    for a in args {
        if a.starts_with("--") {
            return Err(format!("unknown option '{a}'"));
        }
        pos.push(a.as_str());
    }
    let (left, right) = match pos.as_slice() {
        [l, r] => (*l, *r),
        _ => return Err("usage: agp trace-diff <left.jsonl> <right.jsonl>".into()),
    };
    let l = std::fs::read_to_string(left).map_err(|e| format!("{left}: {e}"))?;
    let r = std::fs::read_to_string(right).map_err(|e| format!("{right}: {e}"))?;
    match agp_obs::trace_diff(&l, &r) {
        None => {
            println!("traces identical ({} lines)", l.lines().count());
            Ok(ExitCode::SUCCESS)
        }
        Some(d) => {
            print!("{d}");
            Ok(ExitCode::from(2))
        }
    }
}

/// Recover a sink from its `Arc` once the simulation has dropped every
/// observer link (guaranteed after `run_observed` returns).
fn unwrap_sink<T>(sink: Arc<Mutex<T>>) -> Result<T, String> {
    let mutex = Arc::try_unwrap(sink)
        .map_err(|_| "observer sink still shared after the run".to_string())?;
    Ok(mutex
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner))
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut id: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut policy: Option<PolicyConfig> = None;
    let mut events: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale")?.parse()?,
            "--policy" => policy = Some(val("--policy")?.parse().map_err(|e| format!("{e}"))?),
            "--events" => events = Some(val("--events")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => id = Some(other.to_string()),
        }
    }
    let id =
        id.ok_or("usage: agp profile <id> [--scale paper|quick] [--policy P] [--events PATH]")?;
    let mut cfg = profile_config(&id, scale)
        .ok_or_else(|| format!("no experiment '{id}' (see `agp list`)"))?;
    if let Some(p) = policy {
        cfg.policy = p;
    }

    let collector = shared(Collector::new());
    let mut sinks: Vec<SharedSink> = vec![collector.clone() as SharedSink];
    let jsonl = match &events {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("--events {path}: {e}"))?;
            let sink = shared(JsonlWriter::new(std::io::BufWriter::new(file)));
            sinks.push(sink.clone() as SharedSink);
            Some(sink)
        }
        None => None,
    };
    let link = ObsLink::fanout(sinks);

    eprintln!("profiling {id} ({scale:?} scale)...");
    let t0 = std::time::Instant::now();
    let r = agp_cluster::run_observed(cfg, &link)?;
    drop(link);
    eprintln!("simulated in {:.1?} ({} events)", t0.elapsed(), r.events);
    if let (Some(path), Some(sink)) = (&events, jsonl) {
        let writer = unwrap_sink(sink)?;
        let lines = writer.lines();
        writer
            .finish()
            .map_err(|e| format!("--events {path}: {e}"))?;
        eprintln!("wrote {lines} events to {path}");
    }
    let c = unwrap_sink(collector)?;

    println!(
        "policy {}  mode {:?}  makespan {:.1} min  switches {}",
        r.policy,
        r.mode,
        r.makespan.as_mins_f64(),
        r.switches
    );

    let mut table = Table::new(
        format!("{id}: switch-phase breakdown (us)"),
        &[
            "switch", "at (s)", "stop", "page-out", "page-in", "cont", "total",
        ],
    );
    for rec in c.switch_records() {
        table.row(vec![
            rec.switch.to_string(),
            format!("{:.1}", rec.at_us as f64 / 1e6),
            rec.stop_us.to_string(),
            rec.page_out_us.to_string(),
            rec.page_in_us.to_string(),
            rec.cont_us.to_string(),
            rec.total_us.to_string(),
        ]);
    }
    println!("{table}");

    let n = c.counters;
    println!(
        "events {}: {} major faults ({} serviced, {} readahead pages), {} evictions \
         ({} false, {} recorded), {} reclaim runs freeing {}, {} aggressive, \
         {} replayed ({} skipped), {} bg bursts cleaning {}",
        n.events,
        n.faults_major,
        n.majors_serviced,
        n.readahead_pages,
        n.evictions,
        n.false_evictions,
        n.recorded_evictions,
        n.reclaim_runs,
        n.reclaim_freed,
        n.aggressive_pages,
        n.replayed_pages,
        n.replay_skipped,
        n.bg_ticks,
        n.bg_pages,
    );
    println!(
        "disk: {} reads ({} pages), {} writes ({} pages); {} barriers",
        n.disk_reads, n.disk_pages_read, n.disk_writes, n.disk_pages_written, n.barriers
    );

    for (name, h) in [
        ("switch duration", &c.switch_total),
        ("fault service", &c.fault_service),
        ("disk queue wait", &c.disk_wait),
        ("disk service", &c.disk_service),
        ("barrier skew", &c.barrier_skew),
    ] {
        if h.is_empty() {
            println!("\n{name}: no samples");
            continue;
        }
        println!(
            "\n{name}: n={}  mean={}us  p50={}us  p90={}us  p99={}us  max={}us",
            h.count(),
            h.mean_us(),
            h.p50_us(),
            h.p90_us(),
            h.p99_us(),
            h.max_us()
        );
        print!("{}", bar_chart(&h.rows()));
    }
    Ok(())
}
