//! `agp chaos --fuzz` / `--replay-corpus` — the chaos fuzzer driver.
//!
//! The search half lives in `agp_faults::fuzz` (plan generator, verdict
//! taxonomy, shrinker) and the judgment half in `agp_cluster::classify`
//! (the double-run verdict harness). This module is the orchestration
//! between them and the filesystem:
//!
//! * [`run_fuzz`] — generate `--iters` plans from `--seed`, classify each
//!   against every scenario in [`SCENARIOS`], delta-debug failing plans
//!   to minimal reproducers, and write one findings directory: per
//!   finding the original plan, the minimal plan, the frozen incident
//!   dump and its `agp postmortem` report, plus a `findings.json`
//!   manifest whose FNV-1a digest is byte-deterministic for a given
//!   seed — two same-seed runs must print the same digest.
//! * [`replay_corpus`] — re-classify every committed reproducer under
//!   `plans/corpus/` and demand its pinned verdict, the regression gate
//!   CI runs.
//!
//! Every run is keyed by the *plan's own* seed (`cfg.seed = plan.seed`),
//! so a minimal reproducer file plus its scenario name reproduces the
//! finding with no other context — which is what makes the corpus
//! self-contained.

use agp_cluster::{classify, ClusterConfig, ScheduleMode, VerdictReport};
use agp_core::PolicyConfig;
use agp_faults::fuzz::{fnv1a, shrink, GenBounds, PlanGen, Verdict};
use agp_faults::FaultPlan;
use agp_metrics::Json;
use agp_workload::Benchmark;

/// The scenario matrix every generated plan is classified against:
/// the chaos-demo geometry (2× CG.A ×2 on 2 nodes, quick scale) under
/// the full adaptive policy and under the original (non-adaptive)
/// policy — recovery paths differ between them, so both are searched.
pub const SCENARIOS: [&str; 2] = ["full", "orig"];

/// Oracle-call budget the shrinker gets per finding (each call is a
/// classified double-run, so this bounds wall-clock per finding).
pub const DEFAULT_SHRINK_BUDGET: u32 = 160;

/// Build the cluster configuration for one (scenario, plan) cell. The
/// config seed is the plan's seed: a reproducer file is self-contained.
pub fn scenario_config(name: &str, plan: FaultPlan) -> Result<ClusterConfig, String> {
    let seed = plan.seed;
    let mut cfg = match name {
        "full" => agp_experiments::chaos_demo(seed),
        "orig" => {
            let mut s = agp_experiments::common::quick_parallel(Benchmark::CG, 2);
            s.seed = seed;
            let mut cfg = s.config(PolicyConfig::original(), ScheduleMode::Gang);
            cfg.check_invariants = false;
            cfg
        }
        other => return Err(format!("unknown scenario '{other}' (expected full|orig)")),
    };
    cfg.faults = Some(plan);
    Ok(cfg)
}

/// Classify `plan` under `scenario`, treating harness plumbing errors as
/// hard errors (they are bugs in the driver, not verdicts).
fn classify_cell(scenario: &str, plan: &FaultPlan) -> Result<VerdictReport, String> {
    let cfg = scenario_config(scenario, plan.clone())?;
    classify(&cfg).map_err(|e| format!("scenario {scenario}: {e}"))
}

/// One failing plan, shrunk and written out.
struct Finding {
    iter: u64,
    scenario: &'static str,
    verdict: Verdict,
    detail: String,
    stem: String,
    shrunk_faults: usize,
    original_faults: usize,
}

/// The fuzz loop; returns the number of failing (shrunk, written)
/// findings. See the module docs for the directory layout. The printed
/// digest (also in `findings.json`) is the byte-determinism witness two
/// same-seed runs must agree on.
pub fn run_fuzz(
    seed: u64,
    iters: u64,
    findings_dir: &str,
    shrink_budget: u32,
) -> Result<usize, String> {
    std::fs::create_dir_all(findings_dir).map_err(|e| format!("--findings {findings_dir}: {e}"))?;
    let mut gen = PlanGen::new(seed, GenBounds::default());
    let mut findings: Vec<Finding> = Vec::new();
    let mut digest_buf: Vec<u8> = Vec::new();
    let mut verdict_counts: Vec<(Verdict, u64)> = Verdict::ALL.iter().map(|v| (*v, 0)).collect();

    for iter in 0..iters {
        let plan = gen.plan();
        for scenario in SCENARIOS {
            let report = classify_cell(scenario, &plan)?;
            if let Some(slot) = verdict_counts
                .iter_mut()
                .find(|(v, _)| *v == report.verdict)
            {
                slot.1 += 1;
            }
            if !report.verdict.is_failing() {
                continue;
            }
            eprintln!(
                "fuzz: iter {iter} scenario {scenario}: {} — shrinking (budget {shrink_budget})",
                report.verdict.name()
            );
            let target = report.verdict;
            let minimal = shrink(&plan, target, shrink_budget, |cand| {
                classify_cell(scenario, cand).map_or(Verdict::Clean, |r| r.verdict)
            });
            // Re-classify the minimal plan to capture *its* incident dump
            // (the original's dump describes a larger fault set).
            let mreport = classify_cell(scenario, &minimal)?;
            let stem = format!("f{iter:03}.{scenario}.{}", target.name());
            write_finding(findings_dir, &stem, &plan, &minimal, &mreport)?;
            digest_buf.extend_from_slice(scenario.as_bytes());
            digest_buf.push(b'\n');
            digest_buf.extend_from_slice(target.name().as_bytes());
            digest_buf.push(b'\n');
            digest_buf.extend_from_slice(minimal.to_json_string().as_bytes());
            findings.push(Finding {
                iter,
                scenario,
                verdict: target,
                detail: mreport.detail.clone(),
                stem,
                shrunk_faults: minimal.faults.len(),
                original_faults: plan.faults.len(),
            });
        }
    }

    let digest = fnv1a(&digest_buf);
    let manifest = manifest_json(seed, iters, &findings, &verdict_counts, digest);
    let manifest_path = format!("{findings_dir}/findings.json");
    std::fs::write(&manifest_path, manifest.to_string_compact() + "\n")
        .map_err(|e| format!("{manifest_path}: {e}"))?;
    for (v, n) in &verdict_counts {
        if *n > 0 {
            eprintln!("fuzz: {:>4} × {}", n, v.name());
        }
    }
    println!(
        "fuzz: {} finding(s) over {iters} iteration(s) × {} scenario(s), digest {digest:016x}",
        findings.len(),
        SCENARIOS.len()
    );
    Ok(findings.len())
}

/// Write one finding's file set: the original failing plan, the minimal
/// reproducer, and (when the minimal run froze the ring) the incident
/// dump plus its postmortem report.
fn write_finding(
    dir: &str,
    stem: &str,
    plan: &FaultPlan,
    minimal: &FaultPlan,
    mreport: &VerdictReport,
) -> Result<(), String> {
    let put = |suffix: &str, text: &str| -> Result<(), String> {
        let path = format!("{dir}/{stem}.{suffix}");
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))
    };
    put("plan.json", &plan.to_json_string())?;
    put("minimal.json", &minimal.to_json_string())?;
    if let Some(dump) = &mreport.incident {
        let dump_text = dump.to_json_string();
        put("incident.json", &dump_text)?;
        let pm = agp_explain::PostmortemReport::from_dump_str(&dump_text)
            .map_err(|e| format!("{stem}: postmortem: {e}"))?;
        put("postmortem.json", &pm.to_json_string())?;
    }
    Ok(())
}

fn manifest_json(
    seed: u64,
    iters: u64,
    findings: &[Finding],
    verdict_counts: &[(Verdict, u64)],
    digest: u64,
) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(1.0)),
        ("kind".into(), Json::Str("fuzz_findings".into())),
        ("seed".into(), Json::Str(format!("{seed:016x}"))),
        ("iters".into(), Json::Num(iters as f64)),
        (
            "scenarios".into(),
            Json::Arr(SCENARIOS.iter().map(|s| Json::Str((*s).into())).collect()),
        ),
        (
            "verdicts".into(),
            Json::Obj(
                verdict_counts
                    .iter()
                    .map(|(v, n)| (v.name().into(), Json::Num(*n as f64)))
                    .collect(),
            ),
        ),
        (
            "findings".into(),
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("iter".into(), Json::Num(f.iter as f64)),
                            ("scenario".into(), Json::Str(f.scenario.into())),
                            ("verdict".into(), Json::Str(f.verdict.name().into())),
                            ("detail".into(), Json::Str(f.detail.clone())),
                            ("stem".into(), Json::Str(f.stem.clone())),
                            (
                                "original_faults".into(),
                                Json::Num(f.original_faults as f64),
                            ),
                            ("minimal_faults".into(), Json::Num(f.shrunk_faults as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("digest".into(), Json::Str(format!("{digest:016x}"))),
    ])
}

/// Parse a corpus filename into its pinned `(verdict, scenario)` pair.
/// The convention is `<verdict>.<scenario>.<slug>.json`, e.g.
/// `hang.full.barrier-blackout.json`.
pub fn corpus_name(file: &str) -> Result<(Verdict, String), String> {
    let parts: Vec<&str> = file.split('.').collect();
    if parts.len() < 4 || parts.last().copied() != Some("json") {
        return Err(format!(
            "corpus file {file:?} must be named <verdict>.<scenario>.<slug>.json"
        ));
    }
    let verdict = Verdict::from_name(parts[0])
        .ok_or_else(|| format!("corpus file {file:?}: unknown verdict {:?}", parts[0]))?;
    Ok((verdict, parts[1].to_string()))
}

/// Replay every committed reproducer in `dir` and demand its pinned
/// verdict. Returns the mismatch count (0 means the gate passes).
pub fn replay_corpus(dir: &str) -> Result<usize, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("--replay-corpus {dir}: {e}"))?
        .filter_map(|entry| {
            entry
                .ok()
                .map(|e| e.file_name().to_string_lossy().into_owned())
        })
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("--replay-corpus {dir}: no .json reproducers found"));
    }
    let mut mismatches = 0usize;
    for name in &names {
        let (want, scenario) = corpus_name(name)?;
        let path = format!("{dir}/{name}");
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let plan = FaultPlan::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
        let report = classify_cell(&scenario, &plan)?;
        if report.verdict == want {
            println!("corpus {name}: {} (pinned verdict holds)", want.name());
        } else {
            mismatches += 1;
            println!(
                "corpus {name}: REGRESSION — pinned {} but classified {}{}",
                want.name(),
                report.verdict.name(),
                if report.detail.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", report.detail)
                }
            );
        }
    }
    println!(
        "corpus: {} reproducer(s), {} mismatch(es)",
        names.len(),
        mismatches
    );
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_parse_verdict_and_scenario() {
        let (v, s) = corpus_name("hang.full.barrier-blackout.json").unwrap();
        assert_eq!(v, Verdict::Hang);
        assert_eq!(s, "full");
        let (v, s) = corpus_name("watchdog_trip.orig.io-storm.json").unwrap();
        assert_eq!(v, Verdict::WatchdogTrip);
        assert_eq!(s, "orig");
        assert!(corpus_name("plain.json").is_err(), "too few segments");
        assert!(corpus_name("bogus.full.x.json").is_err(), "unknown verdict");
        assert!(corpus_name("hang.full.x.txt").is_err(), "not .json");
    }

    #[test]
    fn scenario_configs_embed_the_plan_and_its_seed() {
        let plan = FaultPlan::smoke(0xABCD);
        for name in SCENARIOS {
            let cfg = scenario_config(name, plan.clone()).unwrap();
            assert_eq!(cfg.seed, 0xABCD, "{name}: config keyed by plan seed");
            assert_eq!(cfg.faults.as_ref().unwrap(), &plan);
            assert_eq!(cfg.nodes, 2);
            assert_eq!(cfg.jobs.len(), 2);
        }
        assert!(scenario_config("nope", plan).is_err());
    }
}
