//! End-to-end pins for `agp chaos`'s fuzz/corpus exit contract and the
//! shrinker's byte determinism:
//!
//! * exit codes — 0 clean / no findings, 2 findings or corpus
//!   regressions, 1 error (documented in the README);
//! * a known-bad seed (42, 4 iterations) must fuzz to exactly the
//!   committed minimal reproducer `plans/corpus/hang.full.barrier-blackout.json`,
//!   byte for byte;
//! * two same-seed fuzz runs must produce byte-identical `findings.json`
//!   manifests (and thus identical digests).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn agp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_agp"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agp-chaos-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn agp")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("agp must exit, not die on signal")
}

/// One fixed-seed fuzz pass into `dir`; returns the findings manifest.
fn fuzz_into(dir: &Path) -> (Output, String) {
    let out = run(agp().args([
        "chaos",
        "--fuzz",
        "--seed",
        "42",
        "--iters",
        "4",
        "--findings",
        dir.to_str().unwrap(),
    ]));
    let manifest =
        std::fs::read_to_string(dir.join("findings.json")).expect("fuzz writes findings.json");
    (out, manifest)
}

#[test]
fn fuzz_is_byte_deterministic_and_pins_the_known_bad_seed() {
    let (d1, d2) = (scratch("fuzz1"), scratch("fuzz2"));
    let (out1, manifest1) = fuzz_into(&d1);
    let (out2, manifest2) = fuzz_into(&d2);

    // Findings exist for this seed, so both passes must exit 2.
    assert_eq!(code(&out1), 2, "findings must exit 2: {out1:?}");
    assert_eq!(code(&out2), 2);
    assert_eq!(
        manifest1, manifest2,
        "same-seed fuzz runs must write byte-identical manifests"
    );
    assert!(manifest1.contains("\"verdict\":\"hang\""));
    assert!(manifest1.contains("\"digest\":"));

    // The known-bad seed's minimal reproducer is pinned: the committed
    // corpus entry IS the shrinker's output, byte for byte.
    let minimal = std::fs::read_to_string(d1.join("f003.full.hang.minimal.json"))
        .expect("seed 42 iter 3 shrinks a hang in the full scenario");
    let pinned =
        std::fs::read_to_string(repo_root().join("plans/corpus/hang.full.barrier-blackout.json"))
            .expect("committed corpus entry");
    assert_eq!(
        minimal, pinned,
        "shrinker output drifted from the committed minimal reproducer"
    );

    // Both the original and minimal plans parse and the incident +
    // postmortem ride along for failing findings.
    for f in [
        "f003.full.hang.plan.json",
        "f003.full.hang.incident.json",
        "f003.full.hang.postmortem.json",
    ] {
        assert!(d1.join(f).is_file(), "{f} missing from the findings dir");
    }

    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

#[test]
fn replay_corpus_holds_and_exits_zero() {
    let corpus = repo_root().join("plans/corpus");
    let out = run(agp().args(["chaos", "--replay-corpus", corpus.to_str().unwrap()]));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(code(&out), 0, "pinned corpus verdicts must hold: {stdout}");
    assert!(stdout.contains("0 mismatch(es)"), "{stdout}");
}

#[test]
fn chaos_exit_codes_are_0_clean_2_findings_1_error() {
    // 0: the plain demo run recovers from the smoke plan.
    let clean = run(agp().args(["chaos"]));
    assert_eq!(code(&clean), 0, "{clean:?}");

    // 1: errors (unknown option; incompatible flag families).
    let usage = run(agp().args(["chaos", "--definitely-not-a-flag"]));
    assert_eq!(code(&usage), 1);
    let clash = run(agp().args(["chaos", "--fuzz", "--flight-recorder"]));
    assert_eq!(code(&clash), 1, "--fuzz owns the flight recorder");

    // 2 is covered by fuzz_is_byte_deterministic_and_pins_the_known_bad_seed.
}
