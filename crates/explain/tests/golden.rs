//! End-to-end golden and acceptance tests for `agp explain`.
//!
//! The golden pins the exact bytes of the quick-scale fig9 explain JSON.
//! To re-bless after an intentional schema or attribution change:
//!
//! ```text
//! AGP_BLESS=1 cargo test -p agp-explain --test golden
//! ```

use agp_cluster::{run_observed, ClusterConfig};
use agp_core::PolicyConfig;
use agp_experiments::{explain_pair, Scale};
use agp_explain::{explain_run, Analyzer, ExplainDiff};
use agp_obs::{shared, Collector, ObsLink};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/explain.quick.json"
);

/// The quick fig9 scenario under the full policy — the one combination
/// whose switches actually move pages (`ao` writes at the quantum edge,
/// `ai` replays the recorded set), so the cause buckets are non-trivial.
fn full_policy_cfg() -> ClusterConfig {
    let (mut cfg, _) = explain_pair(Scale::Quick);
    cfg.policy = PolicyConfig::full();
    cfg
}

#[test]
fn quick_fig9_explain_matches_the_committed_golden() {
    let (_, report) = explain_run(&full_policy_cfg(), "fig9", "quick").expect("explain run");
    assert!(
        report.causes.total_us() > 0,
        "the golden must capture real switch-time paging, not an all-zero run"
    );
    let got = report.to_json_string();
    if std::env::var_os("AGP_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = include_str!("goldens/explain.quick.json");
    assert_eq!(
        got, want,
        "explain JSON drifted from tests/goldens/explain.quick.json; \
         re-bless with AGP_BLESS=1 if the change is intentional"
    );
}

#[test]
fn per_switch_cause_buckets_sum_to_the_collector_switch_latency() {
    // Fan the same observed run into both the aggregate Collector and the
    // causal Analyzer: every switch the Collector times must be explained
    // by the Analyzer down to the exact microsecond.
    let collector = shared(Collector::new());
    let analyzer = shared(Analyzer::new());
    let link = ObsLink::fanout(vec![collector.clone(), analyzer.clone()]);
    run_observed(full_policy_cfg(), &link).expect("observed run");
    drop(link);
    let collector = collector.lock().expect("collector sink").clone();
    let switches = analyzer.lock().expect("analyzer sink").switches().to_vec();

    let records = collector.switch_records();
    assert_eq!(records.len(), switches.len(), "both sinks saw every switch");
    assert!(!switches.is_empty(), "the quick scenario must gang-switch");
    assert!(
        records.iter().any(|r| r.total_us > 0),
        "the equality must be exercised on real switch latency, not all zeros"
    );
    for (rec, exp) in records.iter().zip(&switches) {
        assert_eq!(rec.switch, exp.switch);
        assert_eq!(rec.total_us, exp.total_us, "switch #{}", rec.switch);
        assert_eq!(
            exp.causes.total_us(),
            rec.total_us,
            "cause buckets of switch #{} must sum to its profiled latency",
            rec.switch
        );
    }
}

#[test]
fn differential_attributes_the_so_delta_to_false_evictions_with_provenance() {
    // The acceptance criterion: on a same-seed so-on/so-off pair the
    // differential report attributes a non-zero delta to the
    // false-eviction bucket, with named event provenance from the base
    // (orig) run.
    let (test_cfg, base_cfg) = explain_pair(Scale::Quick);
    assert_eq!(test_cfg.seed, base_cfg.seed, "pair must share the seed");
    let (_, test) = explain_run(&test_cfg, "fig9", "quick").expect("so run");
    let (_, base) = explain_run(&base_cfg, "fig9", "quick").expect("orig run");
    let diff = ExplainDiff::new(test, base);

    let counts = diff.false_eviction_counts();
    assert!(
        counts.base > 0,
        "the orig policy must actually commit false evictions at quick scale"
    );
    assert_ne!(
        counts.delta(),
        0,
        "selective page-out must change the false-eviction count"
    );
    let samples = diff.base_false_eviction_samples();
    assert!(
        !samples.is_empty(),
        "the delta must carry named event provenance"
    );
    for s in samples {
        assert!(
            s.contains("evict#") && s.contains("fault#"),
            "provenance names both the eviction and the refault: {s}"
        );
    }
}

#[test]
fn diff_json_is_deterministic() {
    let build = || {
        let (test_cfg, base_cfg) = explain_pair(Scale::Quick);
        let (_, test) = explain_run(&test_cfg, "fig9", "quick").expect("so run");
        let (_, base) = explain_run(&base_cfg, "fig9", "quick").expect("orig run");
        ExplainDiff::new(test, base).to_json_string()
    };
    let a = build();
    assert_eq!(a, build(), "same seeds must render byte-identical diffs");
    assert!(a.ends_with('\n'));
}
