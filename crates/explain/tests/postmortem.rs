//! End-to-end incident pipeline tests: the committed trip plan arms the
//! flight recorder, exhausts I/O recovery, and the watchdog freeze
//! yields a byte-deterministic dump whose `agp postmortem` report is
//! pinned golden.
//!
//! To re-bless after an intentional schema or triage change:
//!
//! ```text
//! AGP_BLESS=1 cargo test -p agp-explain --test postmortem
//! ```

use agp_cluster::ClusterConfig;
use agp_experiments::chaos_demo;
use agp_explain::{triage_class, PostmortemReport, TRIAGE_CLASSES};
use agp_faults::FaultPlan;
use agp_obs::flight::{self, FlightConfig, IncidentDump, IncidentTrigger};
use agp_obs::{ObsEvent, WatchdogRule};
use std::sync::Mutex;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/postmortem.quick.json"
);

/// The flight recorder is process-global; serialize the tests that arm it.
static HUB_LOCK: Mutex<()> = Mutex::new(());

fn hub_lock() -> std::sync::MutexGuard<'static, ()> {
    match HUB_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The chaos-demo cluster under the committed recovery-exhaustion trip
/// plan — exactly what `agp chaos --plan plans/trip.json
/// --flight-recorder` simulates.
fn trip_cfg() -> ClusterConfig {
    let seed = 0x5EED_600D;
    let mut cfg = chaos_demo(seed);
    cfg.faults = Some(FaultPlan::trip(seed));
    cfg
}

/// Arm with the default config, run the trip scenario to its watchdog
/// abort, and hand back the frozen dump.
fn capture_incident() -> IncidentDump {
    flight::arm(FlightConfig::default());
    let err = agp_cluster::run(trip_cfg()).expect_err("the trip plan must abort the run");
    let dump = flight::take_incident().expect("the watchdog abort must freeze an incident");
    flight::disarm();
    assert!(
        err.to_string().contains("recovery_exhausted"),
        "unexpected abort: {err}"
    );
    dump
}

#[test]
fn trip_plan_freezes_a_watchdog_incident() {
    let _g = hub_lock();
    let dump = capture_incident();
    match &dump.trigger {
        IncidentTrigger::Watchdog {
            rule, value, limit, ..
        } => {
            assert_eq!(*rule, WatchdogRule::RecoveryExhausted);
            assert!(value >= limit, "trip fires once the budget is consumed");
        }
        other => panic!("expected a watchdog trigger, got {other:?}"),
    }
    assert_eq!(dump.meta.seed, 0x5EED_600D);
    assert_eq!(dump.meta.jobs.len(), 2, "chaos demo runs two CG.A jobs");
    // The freeze appends the trip marker as the final ring event.
    assert!(matches!(
        dump.events.last().map(|te| &te.event),
        Some(ObsEvent::WatchdogTrip { .. })
    ));
    assert!(
        dump.events_seen == dump.events_dropped + dump.events.len() as u64,
        "seen/dropped accounting must tile the stream"
    );
}

#[test]
fn same_seed_incident_dumps_are_byte_identical() {
    let _g = hub_lock();
    let a = capture_incident();
    let b = capture_incident();
    assert_eq!(
        a.to_json_string(),
        b.to_json_string(),
        "same plan + seed must freeze byte-identical incident dumps"
    );
    // And the dump itself round-trips through its JSON encoding.
    let reloaded = agp_explain::load_dump(&a.to_json_string()).expect("dump reloads");
    assert_eq!(reloaded, a);
}

#[test]
fn postmortem_report_matches_the_committed_golden() {
    let _g = hub_lock();
    let dump = capture_incident();
    let report = PostmortemReport::from_dump_str(&dump.to_json_string())
        .expect("postmortem builds from the dump");
    let got = report.to_json_string();
    if std::env::var_os("AGP_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = include_str!("goldens/postmortem.quick.json");
    assert_eq!(
        got, want,
        "postmortem JSON drifted from tests/goldens/postmortem.quick.json; \
         re-bless with AGP_BLESS=1 if the change is intentional"
    );
}

#[test]
fn triage_counts_tile_the_retained_window() {
    let _g = hub_lock();
    let dump = capture_incident();
    let report = PostmortemReport::build(&dump);
    assert_eq!(report.events_retained, dump.events.len() as u64);
    // The triage vector covers the taxonomy in order, and its counts sum
    // to exactly the retained window — every event lands in one class.
    let classes: Vec<&str> = report.triage.iter().map(|(c, _)| *c).collect();
    assert_eq!(classes, TRIAGE_CLASSES.to_vec());
    let total: u64 = report.triage.iter().map(|(_, n)| n).sum();
    assert_eq!(total, report.events_retained);
    // Cross-check against classifying the raw window directly.
    for (class, n) in &report.triage {
        let direct = dump
            .events
            .iter()
            .filter(|te| triage_class(&te.event) == *class)
            .count() as u64;
        assert_eq!(direct, *n, "triage count for {class} must match the window");
    }
    // The incident class is live: the trip marker is in the window.
    let incident = report
        .triage
        .iter()
        .find(|(c, _)| *c == "incident")
        .map(|(_, n)| *n)
        .unwrap_or(0);
    assert!(incident >= 1, "the watchdog trip marker must be triaged");
}
