//! Acceptance tests for fault attribution: under an injected-fault plan
//! `agp explain` must attribute switch latency to the fault taxonomy,
//! keep the per-switch tiling exact, and stay byte-deterministic.

use agp_cluster::{run_observed, ClusterConfig};
use agp_core::PolicyConfig;
use agp_experiments::{explain_pair, Scale};
use agp_explain::{explain_run, Analyzer, Cause};
use agp_faults::{FaultPlan, FaultSpec};
use agp_obs::{shared, Collector, ObsLink};

/// The quick fig9 scenario under the full policy with a deterministic
/// burst of disk errors spanning the first gang switches (quantum is
/// 10 s at quick scale, so a 30 s window catches real switch-edge I/O).
fn chaos_cfg() -> ClusterConfig {
    let (mut cfg, _) = explain_pair(Scale::Quick);
    cfg.policy = PolicyConfig::full();
    let mut plan = FaultPlan::empty(cfg.seed);
    plan.faults.push(FaultSpec::DiskErrors {
        node: 0,
        p: 1.0,
        from_us: 0,
        until_us: 30_000_000,
    });
    cfg.faults = Some(plan);
    cfg
}

#[test]
fn explain_attributes_switch_latency_to_fault_causes() {
    let (_, report) = explain_run(&chaos_cfg(), "fig9", "quick").expect("chaos explain run");
    assert!(
        report.causes.get(Cause::FaultIoError) > 0,
        "injected disk errors at the switch edge must surface in the fault taxonomy"
    );
    let faulted = report
        .switch_detail
        .iter()
        .filter(|sw| sw.causes.get(Cause::FaultIoError) > 0)
        .count();
    assert!(
        faulted >= 1,
        "at least one switch's latency is attributed to an injected fault"
    );
    // The fault causes join the JSON schema only because they are live.
    let text = report.to_json_string();
    assert!(text.contains("\"fault_io_error\""));
    assert!(
        !text.contains("\"fault_disk_slow\""),
        "the plan injects no latency spikes, so that cause stays hidden"
    );
}

#[test]
fn fault_attribution_keeps_the_per_switch_tiling_exact() {
    let collector = shared(Collector::new());
    let analyzer = shared(Analyzer::new());
    let link = ObsLink::fanout(vec![collector.clone(), analyzer.clone()]);
    run_observed(chaos_cfg(), &link).expect("observed chaos run");
    drop(link);
    let collector = collector.lock().expect("collector sink").clone();
    let switches = analyzer.lock().expect("analyzer sink").switches().to_vec();
    let records = collector.switch_records();
    assert_eq!(records.len(), switches.len());
    assert!(
        collector.counters.fault_disk_errors > 0,
        "the plan must actually fire"
    );
    for (rec, exp) in records.iter().zip(&switches) {
        assert_eq!(
            exp.causes.total_us(),
            rec.total_us,
            "cause buckets of switch #{} must still sum to its profiled latency",
            rec.switch
        );
    }
}

#[test]
fn chaos_explain_json_is_deterministic() {
    let build = || {
        let (_, report) = explain_run(&chaos_cfg(), "fig9", "quick").expect("chaos explain run");
        report.to_json_string()
    };
    let a = build();
    assert_eq!(
        a,
        build(),
        "same plan + seed must render byte-identical explains"
    );
}
