//! The per-switch causal event DAG and its critical path.
//!
//! Every gang switch submits its selective/aggressive page-out writes and
//! its adaptive page-in replay reads to the per-node disk FIFOs in the
//! same simulated instant; the switch completes when the last of those
//! requests drains (§3.2). This module rebuilds that structure from the
//! observed [`agp_obs::ObsEvent::DiskRequest`] records as an explicit
//! DAG — one chain of `queue-wait → seek → transfer` edges per request,
//! joined through a page-out barrier node into the switch-complete node —
//! and extracts the longest (critical) path.
//!
//! The path is then *attributed*: clamped or padded against the switch
//! latency the simulator actually reported, walking backwards from the
//! completion edge so the terminal transfer stays intact and any
//! unexplained remainder lands in [`Cause::Other`]. The resulting
//! segments always sum to the reported latency exactly — the invariant
//! the explain golden test pins against `agp profile`.

use crate::causes::Cause;

/// One disk request observed at a switch instant, as fed to the DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqInfo {
    /// Analyzer-local sequence number of the `DiskRequest` event.
    pub seq: u64,
    /// Emitting node index.
    pub src: u32,
    /// Submission instant, µs.
    pub at_us: u64,
    /// Write (page-out) vs read (page-in replay).
    pub write: bool,
    /// Pages moved.
    pub pages: u64,
    /// FIFO queue wait ahead of service, µs.
    pub wait_us: u64,
    /// Seek portion of the service time, µs.
    pub seek_us: u64,
    /// Total service time (seek + transfer), µs.
    pub service_us: u64,
}

/// One critical-path slice: `dur_us` microseconds attributed to `cause`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Why this slice of the switch took time.
    pub cause: Cause,
    /// Slice length, µs.
    pub dur_us: u64,
}

struct Edge {
    from: usize,
    to: usize,
    dur_us: u64,
    cause: Cause,
    /// Set on the transfer edge of a request chain: identifies the
    /// request for provenance.
    detail: Option<String>,
}

/// The causal DAG for one gang switch.
pub struct SwitchDag {
    /// Node labels; index is the node id. Construction order is a
    /// topological order (every edge points from a lower id to a
    /// higher one).
    labels: Vec<&'static str>,
    edges: Vec<Edge>,
    end: usize,
}

/// The longest start→end path through a [`SwitchDag`].
pub struct CriticalPath {
    /// Path slices in temporal order (zero-length join edges dropped).
    pub segments: Vec<Segment>,
    /// Provenance of the terminal request on the path, e.g.
    /// `"read req#1042 (node 0, 32 pages)"`; empty when the DAG holds
    /// no requests.
    pub terminal: String,
}

impl SwitchDag {
    /// Build the DAG for one switch from its observed requests.
    ///
    /// `pageout_us` is the reported page-out phase length; it splits
    /// each read's queue wait into the interleaved-page-out portion and
    /// the residual page-in queue wait.
    pub fn build(pageout_us: u64, reqs: &[ReqInfo]) -> SwitchDag {
        let mut dag = SwitchDag {
            labels: vec!["start"],
            edges: Vec::new(),
            end: 0,
        };
        let mut write_done = Vec::new();
        let mut read_done = Vec::new();
        for r in reqs {
            let detail = format!(
                "{} req#{} (node {}, {} pages)",
                if r.write { "write" } else { "read" },
                r.seq,
                r.src,
                r.pages
            );
            let mut at = 0usize; // chain cursor, starting at `start`
            if r.write {
                at = dag.chain(at, r.wait_us, Cause::PageoutQueueWait, "w-queued");
                at = dag.chain(at, r.seek_us, Cause::PageoutSeek, "w-positioned");
                let xfer = r.service_us.saturating_sub(r.seek_us);
                at = dag.chain_detail(at, xfer, Cause::PageoutTransfer, "w-done", detail);
                write_done.push(at);
            } else {
                let interleaved = r.wait_us.min(pageout_us);
                at = dag.chain(at, interleaved, Cause::InterleavedPageoutWait, "r-blocked");
                at = dag.chain(
                    at,
                    r.wait_us - interleaved,
                    Cause::PageinQueueWait,
                    "r-queued",
                );
                at = dag.chain(at, r.seek_us, Cause::PageinSeek, "r-positioned");
                let xfer = r.service_us.saturating_sub(r.seek_us);
                at = dag.chain_detail(at, xfer, Cause::PageinTransfer, "r-done", detail);
                read_done.push(at);
            }
        }
        // Join: writes meet at the page-out barrier, which (with every
        // read) feeds the switch-complete node — in_end = max(out_end,
        // read completions), exactly the simulator's rule.
        let out_join = dag.node("page-out drained");
        dag.join(0, out_join); // out_end >= now even with no writes
        for w in write_done {
            dag.join(w, out_join);
        }
        let end = dag.node("switch complete");
        dag.join(out_join, end);
        for r in read_done {
            dag.join(r, end);
        }
        dag.end = end;
        dag
    }

    fn node(&mut self, label: &'static str) -> usize {
        self.labels.push(label);
        self.labels.len() - 1
    }

    fn chain(&mut self, from: usize, dur_us: u64, cause: Cause, label: &'static str) -> usize {
        let to = self.node(label);
        self.edges.push(Edge {
            from,
            to,
            dur_us,
            cause,
            detail: None,
        });
        to
    }

    fn chain_detail(
        &mut self,
        from: usize,
        dur_us: u64,
        cause: Cause,
        label: &'static str,
        detail: String,
    ) -> usize {
        let to = self.chain(from, dur_us, cause, label);
        if let Some(e) = self.edges.last_mut() {
            e.detail = Some(detail);
        }
        to
    }

    fn join(&mut self, from: usize, to: usize) {
        self.edges.push(Edge {
            from,
            to,
            dur_us: 0,
            cause: Cause::Other,
            detail: None,
        });
    }

    /// Number of nodes (for diagnostics and tests).
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Longest path from `start` to `switch complete`.
    ///
    /// Nodes were created in topological order, so a single forward
    /// relaxation pass suffices. Ties pick the earliest-built edge,
    /// keeping the result deterministic.
    pub fn critical_path(&self) -> CriticalPath {
        let n = self.labels.len();
        let mut dist: Vec<Option<u64>> = vec![None; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        dist[0] = Some(0);
        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            in_edges[e.to].push(i);
        }
        for node in 1..n {
            for &ei in &in_edges[node] {
                let e = &self.edges[ei];
                if let Some(d) = dist[e.from] {
                    let cand = d + e.dur_us;
                    if dist[node].map(|cur| cand > cur).unwrap_or(true) {
                        dist[node] = Some(cand);
                        pred[node] = Some(ei);
                    }
                }
            }
        }
        let mut segments = Vec::new();
        let mut terminal = String::new();
        let mut at = self.end;
        while let Some(ei) = pred[at] {
            let e = &self.edges[ei];
            if e.dur_us > 0 {
                segments.push(Segment {
                    cause: e.cause,
                    dur_us: e.dur_us,
                });
            }
            if terminal.is_empty() {
                if let Some(d) = &e.detail {
                    terminal = d.clone();
                }
            }
            at = e.from;
        }
        segments.reverse();
        CriticalPath { segments, terminal }
    }
}

impl CriticalPath {
    /// Reconcile the path against the switch latency the simulator
    /// reported, producing segments that sum to `total_us` *exactly*.
    ///
    /// Walking backwards from the completion edge, each segment keeps
    /// `min(remaining, len)` — so if stray same-instant requests made
    /// the path longer than the switch, the earliest (wait) slices are
    /// trimmed, and the terminal transfer survives. Any shortfall the
    /// requests cannot explain is prepended as [`Cause::Other`].
    pub fn attributed(&self, total_us: u64) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut remaining = total_us;
        for s in self.segments.iter().rev() {
            if remaining == 0 {
                break;
            }
            let take = s.dur_us.min(remaining);
            out.push(Segment {
                cause: s.cause,
                dur_us: take,
            });
            remaining -= take;
        }
        if remaining > 0 {
            out.push(Segment {
                cause: Cause::Other,
                dur_us: remaining,
            });
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(seq: u64, wait: u64, seek: u64, service: u64) -> ReqInfo {
        ReqInfo {
            seq,
            src: 0,
            at_us: 1_000,
            write: false,
            pages: 16,
            wait_us: wait,
            seek_us: seek,
            service_us: service,
        }
    }

    fn write(seq: u64, wait: u64, seek: u64, service: u64) -> ReqInfo {
        ReqInfo {
            write: true,
            ..read(seq, wait, seek, service)
        }
    }

    #[test]
    fn empty_dag_has_zero_critical_path() {
        let cp = SwitchDag::build(0, &[]).critical_path();
        assert!(cp.segments.is_empty());
        assert!(cp.terminal.is_empty());
        assert_eq!(cp.attributed(0), Vec::new());
    }

    #[test]
    fn read_terminal_path_splits_wait_at_the_pageout_boundary() {
        // One write draining 300us, one read queued 300us behind it
        // then 200us more, seek 50, transfer 450.
        let reqs = [write(1, 0, 100, 300), read(2, 500, 50, 500)];
        let cp = SwitchDag::build(300, &reqs).critical_path();
        assert_eq!(cp.terminal, "read req#2 (node 0, 16 pages)");
        let total = 1_000; // 500 wait + 500 service
        let segs = cp.attributed(total);
        let sum: u64 = segs.iter().map(|s| s.dur_us).sum();
        assert_eq!(sum, total);
        assert_eq!(
            segs.iter().map(|s| s.cause).collect::<Vec<_>>(),
            vec![
                Cause::InterleavedPageoutWait,
                Cause::PageinQueueWait,
                Cause::PageinSeek,
                Cause::PageinTransfer,
            ]
        );
        assert_eq!(segs[0].dur_us, 300);
        assert_eq!(segs[1].dur_us, 200);
        assert_eq!(segs[3].dur_us, 450);
    }

    #[test]
    fn write_terminal_path_uses_pageout_causes() {
        let reqs = [write(1, 120, 80, 400)];
        let cp = SwitchDag::build(520, &reqs).critical_path();
        let segs = cp.attributed(520);
        assert_eq!(
            segs.iter().map(|s| (s.cause, s.dur_us)).collect::<Vec<_>>(),
            vec![
                (Cause::PageoutQueueWait, 120),
                (Cause::PageoutSeek, 80),
                (Cause::PageoutTransfer, 320),
            ]
        );
    }

    #[test]
    fn shortfall_pads_other_and_excess_trims_waits() {
        let reqs = [read(1, 100, 10, 90)];
        // Simulator reports more than the requests explain.
        let padded = SwitchDag::build(0, &reqs).critical_path().attributed(250);
        assert_eq!(padded[0].cause, Cause::Other);
        assert_eq!(padded[0].dur_us, 60);
        assert_eq!(padded.iter().map(|s| s.dur_us).sum::<u64>(), 250);
        // Simulator reports less: the wait is trimmed, transfer intact.
        let trimmed = SwitchDag::build(0, &reqs).critical_path().attributed(120);
        assert_eq!(trimmed.iter().map(|s| s.dur_us).sum::<u64>(), 120);
        assert_eq!(trimmed.last().map(|s| s.cause), Some(Cause::PageinTransfer));
        assert_eq!(trimmed.last().map(|s| s.dur_us), Some(80));
    }

    #[test]
    fn longest_chain_wins_among_parallel_requests() {
        let reqs = [
            read(1, 0, 10, 200),
            read(2, 50, 20, 400), // 450 total — the critical one
            write(3, 0, 30, 100),
        ];
        let cp = SwitchDag::build(100, &reqs).critical_path();
        assert_eq!(cp.terminal, "read req#2 (node 0, 16 pages)");
        assert_eq!(cp.segments.iter().map(|s| s.dur_us).sum::<u64>(), 450);
    }
}
