//! # agp-explain — causal switch-latency attribution
//!
//! The paper's numbers say *how much* gang-switch latency each paging
//! policy removes; this crate says *why*. It consumes the deterministic
//! [`agp_obs::ObsEvent`] stream of a run and
//!
//! 1. rebuilds a **causal event DAG** per gang switch (fault → disk
//!    queue wait → seek → transfer → resume edges, joined through the
//!    page-out barrier exactly like the simulator's §3.2 switch
//!    protocol), extracts its critical path, and buckets every critical
//!    microsecond into a stable [`Cause`] taxonomy — per-switch buckets
//!    sum to the switch latency `agp profile` reports, exactly;
//! 2. detects the paper-specific pathologies as typed [`Diagnostic`]s
//!    with event provenance: **false-eviction refaults** (§3.1),
//!    **redundant page-ins** (pages staged by adaptive page-in, thrown
//!    away unused, then re-read), and **dirty-flush storms** at switch
//!    edges (what selective page-out and background writing exist to
//!    prevent, §3.3–3.4);
//! 3. explains **differentially**: [`ExplainDiff`] attributes the
//!    end-to-end delta between two same-seed runs differing in one
//!    policy bit to cause buckets — the Fig. 9 ablation as a
//!    machine-checkable report;
//! 4. explains **incidents**: [`postmortem`] reloads a flight-recorder
//!    dump ([`agp_obs::flight::IncidentDump`]), triages its event window
//!    by subsystem, and replays it through the same analyzer — the
//!    `agp postmortem` report.
//!
//! Everything is byte-deterministic: reports serialize via
//! [`agp_metrics::Json`] with fixed field order and are golden-pinned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod causes;
pub mod dag;
pub mod diff;
pub mod postmortem;
pub mod report;

pub use analyze::{Analyzer, Diagnostic, JobStalls, SwitchExplain, STORM_THRESHOLD_PAGES};
pub use causes::{Cause, CauseBuckets};
pub use dag::{CriticalPath, ReqInfo, Segment, SwitchDag};
pub use diff::{Delta, ExplainDiff};
pub use postmortem::{
    load_dump, triage_class, PostmortemReport, CULPRIT_LIMIT, POSTMORTEM_SCHEMA_VERSION,
    TRIAGE_CLASSES,
};
pub use report::{ExplainReport, RunMeta, EXPLAIN_SCHEMA_VERSION, SWITCH_DETAIL_LIMIT};

use std::collections::BTreeMap;

use agp_cluster::{ClusterConfig, RunResult, ScheduleMode};
use agp_obs::{shared, ObsLink};

/// Run `cfg` with an attached [`Analyzer`] and assemble the
/// [`ExplainReport`]. `experiment` and `scale` label the report's meta
/// block; policy, mode, and seed are taken from the config itself.
///
/// This is the single entry point both `agp explain` and the golden
/// tests use, so the CLI's JSON and the pinned golden are byte-equal by
/// construction.
pub fn explain_run(
    cfg: &ClusterConfig,
    experiment: &str,
    scale: &str,
) -> Result<(RunResult, ExplainReport), String> {
    let mut names = Vec::new();
    let mut pid_job = BTreeMap::new();
    let mut next_pid = 0u32;
    for (j, job) in cfg.jobs.iter().enumerate() {
        names.push(job.name.clone());
        for _ in 0..job.workload.nprocs {
            pid_job.insert(next_pid, j);
            next_pid += 1;
        }
    }
    let sink = shared(Analyzer::with_jobs(names, pid_job));
    let link = ObsLink::to(sink.clone());
    let result = agp_cluster::run_observed(cfg.clone(), &link)?;
    drop(link);
    let analyzer = match std::sync::Arc::try_unwrap(sink) {
        Ok(m) => match m.into_inner() {
            Ok(a) => a,
            Err(p) => p.into_inner(),
        },
        Err(_) => return Err("explain analyzer still shared after the run".into()),
    };
    let meta = RunMeta {
        experiment: experiment.into(),
        scale: scale.into(),
        policy: cfg.policy.label(),
        mode: match cfg.mode {
            ScheduleMode::Gang => "gang".into(),
            ScheduleMode::Batch => "batch".into(),
        },
        seed: cfg.seed,
    };
    let report = ExplainReport::build(analyzer, meta, result.makespan.as_us(), result.switches);
    Ok((result, report))
}
