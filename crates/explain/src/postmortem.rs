//! `agp postmortem` — incident-dump triage and causal replay.
//!
//! A frozen [`IncidentDump`] (see [`agp_obs::flight`]) is the black-box
//! record of a run that tripped a watchdog or died on an error: the last
//! window of raw [`ObsEvent`]s, recent telemetry samples, and monitor
//! snapshots, plus the identity (scenario, seed, config fingerprint)
//! needed to reproduce the run. This module turns that record into an
//! explanation:
//!
//! 1. **Load** — [`load_dump`] parses the dump's deterministic JSON back
//!    into an [`IncidentDump`], re-deriving each retained event through
//!    [`agp_obs::flight::parse_event_line`];
//! 2. **Triage** — every retained event is classified into a stable
//!    subsystem taxonomy ([`TRIAGE_CLASSES`]) so the report's first table
//!    answers "what was the system doing when it died?";
//! 3. **Replay** — the window is replayed through the same [`Analyzer`]
//!    `agp explain` uses, so critical-path cause buckets, per-job stall
//!    attribution, and pathology diagnostics come out of the identical
//!    machinery (buckets tile switch totals exactly, as in explain);
//! 4. **Report** — [`PostmortemReport::to_json_string`] renders a
//!    schema-versioned, byte-deterministic document (golden-pinned), and
//!    [`PostmortemReport::tables`]/[`notes`](PostmortemReport::notes)
//!    feed the CLI's human output.
//!
//! Because the dump is byte-deterministic and the replay is pure, the
//! whole pipeline is reproducible: same seed → same trip → same dump →
//! same report.

use std::collections::BTreeMap;

use agp_faults::fuzz::Verdict;
use agp_metrics::{Json, Table};
use agp_obs::flight::{self, IncidentDump, IncidentTrigger, RunMeta, DUMP_SCHEMA_VERSION};
use agp_obs::{ObsEvent, Observer, TracedEvent, WatchdogRule};

use crate::analyze::{Analyzer, Diagnostic, JobStalls};
use crate::causes::CauseBuckets;
use crate::report::{causes_json, diag_json, job_json, num, pretty};

/// Schema version stamped into every postmortem document.
pub const POSTMORTEM_SCHEMA_VERSION: u64 = 1;

/// How many trailing window events the report lists verbatim as the
/// likeliest culprits (the freeze point is the last entry).
pub const CULPRIT_LIMIT: usize = 8;

/// The triage taxonomy, in report order. Every [`ObsEvent`] variant maps
/// to exactly one class (pinned by a test), so the triage counts tile
/// the retained window.
pub const TRIAGE_CLASSES: [&str; 9] = [
    "fault_path",
    "paging_policy",
    "disk",
    "switch_protocol",
    "synchronization",
    "telemetry",
    "chaos",
    "recovery",
    "incident",
];

/// Classify one event into its [`TRIAGE_CLASSES`] subsystem.
///
/// The match is intentionally exhaustive with every variant named: adding
/// an [`ObsEvent`] variant must force a decision here (and the
/// `event-protocol` lint holds incident variants to it).
pub fn triage_class(ev: &ObsEvent) -> &'static str {
    match ev {
        ObsEvent::PageFault { .. }
        | ObsEvent::MajorFault { .. }
        | ObsEvent::ReadaheadHit { .. }
        | ObsEvent::FaultService { .. } => "fault_path",
        ObsEvent::EvictBatch { .. }
        | ObsEvent::Evict { .. }
        | ObsEvent::Reclaim { .. }
        | ObsEvent::AggressiveOut { .. }
        | ObsEvent::ReplayPage { .. }
        | ObsEvent::Replay { .. }
        | ObsEvent::BgTick { .. } => "paging_policy",
        ObsEvent::DiskRequest { .. } => "disk",
        ObsEvent::SwitchPhase { .. } | ObsEvent::SwitchDone { .. } => "switch_protocol",
        ObsEvent::BarrierWait { .. } => "synchronization",
        ObsEvent::NodeGauge { .. } | ObsEvent::ProcGauge { .. } => "telemetry",
        ObsEvent::DiskError { .. }
        | ObsEvent::DiskSlowdown { .. }
        | ObsEvent::NodeCrash { .. }
        | ObsEvent::NodeRestart { .. }
        | ObsEvent::JobRequeued { .. }
        | ObsEvent::MemPressure { .. } => "chaos",
        ObsEvent::IoRetry { .. }
        | ObsEvent::BarrierTimeout { .. }
        | ObsEvent::AiDegraded { .. } => "recovery",
        ObsEvent::IoExhausted { .. }
        | ObsEvent::BarrierExhausted { .. }
        | ObsEvent::WatchdogTrip { .. } => "incident",
    }
}

fn want_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("dump missing string field {key:?}"))
}

fn want_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("dump missing numeric field {key:?}"))
}

fn want_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("dump missing array field {key:?}"))
}

/// Parse an incident dump's JSON back into an [`IncidentDump`].
///
/// Accepts exactly the encoding [`IncidentDump::to_json_string`] writes
/// (schema version checked); retained events round-trip through
/// [`flight::parse_event_line`], so a load-then-dump reproduces the
/// input byte for byte (pinned by a test).
pub fn load_dump(text: &str) -> Result<IncidentDump, String> {
    let doc = Json::parse(text).map_err(|e| format!("incident dump is not valid JSON: {e}"))?;
    let schema = want_u64(&doc, "schema_version")?;
    if schema != u64::from(DUMP_SCHEMA_VERSION) {
        return Err(format!(
            "unsupported dump schema_version {schema} (expected {DUMP_SCHEMA_VERSION})"
        ));
    }
    let trig = doc
        .get("trigger")
        .ok_or_else(|| "dump missing trigger".to_string())?;
    let trigger = match want_str(trig, "kind")?.as_str() {
        "watchdog" => {
            let rule_name = want_str(trig, "rule")?;
            let rule = WatchdogRule::from_name(&rule_name)
                .ok_or_else(|| format!("unknown watchdog rule {rule_name:?}"))?;
            IncidentTrigger::Watchdog {
                rule,
                value: want_u64(trig, "value")?,
                limit: want_u64(trig, "limit")?,
                detail: want_str(trig, "detail")?,
            }
        }
        "error" => IncidentTrigger::Error {
            what: want_str(trig, "what")?,
        },
        other => return Err(format!("unknown trigger kind {other:?}")),
    };
    let fp_text = want_str(&doc, "config_fp")?;
    let config_fp = u64::from_str_radix(&fp_text, 16)
        .map_err(|_| format!("config_fp {fp_text:?} is not a hex fingerprint"))?;
    let jobs = want_arr(&doc, "jobs")?
        .iter()
        .map(|j| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| "jobs entries must be strings".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let pid_job = want_arr(&doc, "pid_job")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| "pid_job entries must be [pid, job] pairs".to_string())?;
            let pid = pair[0]
                .as_f64()
                .ok_or_else(|| "pid_job pid must be numeric".to_string())?;
            let job = pair[1]
                .as_f64()
                .ok_or_else(|| "pid_job job must be numeric".to_string())?;
            Ok((pid as u32, job as u32))
        })
        .collect::<Result<Vec<_>, String>>()?;
    // Each retained event is one compact object per line; the strict
    // parser + compact writer round-trip bytes, so re-rendering an
    // element reproduces the original line for the line-level decoder.
    let events = want_arr(&doc, "events")?
        .iter()
        .map(|ev| flight::parse_event_line(&ev.to_string_compact()))
        .collect::<Result<Vec<_>, _>>()?;
    let lines = |key: &str| -> Result<Vec<String>, String> {
        Ok(want_arr(&doc, key)?
            .iter()
            .map(Json::to_string_compact)
            .collect())
    };
    Ok(IncidentDump {
        schema_version: DUMP_SCHEMA_VERSION,
        trigger,
        at_us: want_u64(&doc, "at_us")?,
        meta: RunMeta {
            scenario: want_str(&doc, "scenario")?,
            seed: want_u64(&doc, "seed")?,
            config_fp,
            jobs,
            pid_job,
        },
        events_seen: want_u64(&doc, "events_seen")?,
        events_dropped: want_u64(&doc, "events_dropped")?,
        events,
        samples_dropped: want_u64(&doc, "samples_dropped")?,
        samples: lines("samples")?,
        snapshots_dropped: want_u64(&doc, "snapshots_dropped")?,
        snapshots: lines("snapshots")?,
    })
}

/// The causal explanation of one incident dump.
#[derive(Clone, Debug)]
pub struct PostmortemReport {
    /// Identity of the recorded run.
    pub meta: RunMeta,
    /// What froze the ring.
    pub trigger: IncidentTrigger,
    /// Sim time of the freeze, µs.
    pub at_us: u64,
    /// Events delivered to the ring over the window (including evicted).
    pub events_seen: u64,
    /// Events evicted by the capacity bound.
    pub events_dropped: u64,
    /// Events retained (and replayed).
    pub events_retained: u64,
    /// Sim time of the oldest retained event, µs.
    pub window_first_us: u64,
    /// Sim time of the newest retained event, µs.
    pub window_last_us: u64,
    /// Telemetry sample lines retained.
    pub samples_retained: u64,
    /// Monitor snapshot lines retained.
    pub snapshots_retained: u64,
    /// Per-subsystem event counts over the retained window, in
    /// [`TRIAGE_CLASSES`] order (zero counts included; counts tile the
    /// window exactly).
    pub triage: Vec<(&'static str, u64)>,
    /// Gang switches completed inside the window.
    pub switches: u64,
    /// Summed critical-path switch latency inside the window, µs.
    pub switch_total_us: u64,
    /// Critical-path time per cause over the window's switches; tiles
    /// `switch_total_us` exactly, like `agp explain`.
    pub causes: CauseBuckets,
    /// Per-job stall attribution over the window.
    pub jobs: Vec<JobStalls>,
    /// Pathology diagnostics over the window (stable kind order).
    pub diagnostics: Vec<Diagnostic>,
    /// Pages the background writer cleaned inside the window.
    pub bg_cleaned_pages: u64,
    /// The last [`CULPRIT_LIMIT`] retained events, oldest first, as raw
    /// trace lines — the freeze point is the final entry.
    pub culprits: Vec<String>,
}

impl PostmortemReport {
    /// Triage and replay `dump` into a report.
    pub fn build(dump: &IncidentDump) -> PostmortemReport {
        let mut triage: Vec<(&'static str, u64)> =
            TRIAGE_CLASSES.iter().map(|c| (*c, 0u64)).collect();
        for ev in &dump.events {
            let class = triage_class(&ev.event);
            if let Some(slot) = triage.iter_mut().find(|(c, _)| *c == class) {
                slot.1 += 1;
            }
        }
        // Replay the window through the explain analyzer: identical
        // attribution machinery, applied to the incident's last window.
        let mut pid_job = BTreeMap::new();
        for (pid, job) in &dump.meta.pid_job {
            pid_job.insert(*pid, *job as usize);
        }
        let mut analyzer = Analyzer::with_jobs(dump.meta.jobs.clone(), pid_job);
        for TracedEvent { at, src, event } in &dump.events {
            analyzer.on_event(*at, *src, event);
        }
        let mut causes = CauseBuckets::new();
        let mut switch_total_us = 0u64;
        for sw in analyzer.switches() {
            causes.merge(&sw.causes);
            switch_total_us += sw.total_us;
        }
        let culprit_skip = dump.events.len().saturating_sub(CULPRIT_LIMIT);
        PostmortemReport {
            meta: dump.meta.clone(),
            trigger: dump.trigger.clone(),
            at_us: dump.at_us,
            events_seen: dump.events_seen,
            events_dropped: dump.events_dropped,
            events_retained: dump.events.len() as u64,
            window_first_us: dump.events.first().map_or(0, |e| e.at.as_us()),
            window_last_us: dump.events.last().map_or(0, |e| e.at.as_us()),
            samples_retained: dump.samples.len() as u64,
            snapshots_retained: dump.snapshots.len() as u64,
            triage,
            switches: analyzer.switches().len() as u64,
            switch_total_us,
            causes,
            jobs: analyzer.jobs().to_vec(),
            diagnostics: analyzer.diagnostics(),
            bg_cleaned_pages: analyzer.bg_cleaned_pages(),
            culprits: dump.events[culprit_skip..]
                .iter()
                .map(|e| e.event.to_json_line(e.at, e.src))
                .collect(),
        }
    }

    /// Load `text` as an incident dump and build its report.
    pub fn from_dump_str(text: &str) -> Result<PostmortemReport, String> {
        Ok(PostmortemReport::build(&load_dump(text)?))
    }

    /// The incident's place in the fuzzer's closed verdict taxonomy
    /// ([`agp_faults::fuzz::Verdict`]): the `no_progress` rule is a
    /// [`Verdict::Hang`], the invariant rule an
    /// [`Verdict::InvariantViolation`], any other watchdog rule a
    /// [`Verdict::WatchdogTrip`], and a plain error a
    /// [`Verdict::TypedError`]. A frozen incident is never `Clean`,
    /// `Recovered`, or `Nondeterministic` — those verdicts describe runs
    /// (or run *pairs*) that left no incident behind.
    pub fn verdict(&self) -> Verdict {
        match &self.trigger {
            IncidentTrigger::Watchdog {
                rule: WatchdogRule::NoProgress,
                ..
            } => Verdict::Hang,
            IncidentTrigger::Watchdog {
                rule: WatchdogRule::Invariant,
                ..
            } => Verdict::InvariantViolation,
            IncidentTrigger::Watchdog { .. } => Verdict::WatchdogTrip,
            IncidentTrigger::Error { .. } => Verdict::TypedError,
        }
    }

    fn trigger_json(&self) -> Json {
        match &self.trigger {
            IncidentTrigger::Watchdog {
                rule,
                value,
                limit,
                detail,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("watchdog".into())),
                ("rule".into(), Json::Str(rule.name().into())),
                ("value".into(), num(*value)),
                ("limit".into(), num(*limit)),
                ("detail".into(), Json::Str(detail.clone())),
            ]),
            IncidentTrigger::Error { what } => Json::Obj(vec![
                ("kind".into(), Json::Str("error".into())),
                ("what".into(), Json::Str(what.clone())),
            ]),
        }
    }

    /// The report as a [`Json`] document with a fixed field order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), num(POSTMORTEM_SCHEMA_VERSION)),
            ("kind".into(), Json::Str("postmortem".into())),
            ("verdict".into(), Json::Str(self.verdict().name().into())),
            (
                "meta".into(),
                Json::Obj(vec![
                    ("scenario".into(), Json::Str(self.meta.scenario.clone())),
                    ("seed".into(), num(self.meta.seed)),
                    (
                        "config_fp".into(),
                        Json::Str(format!("{:016x}", self.meta.config_fp)),
                    ),
                    (
                        "jobs".into(),
                        Json::Arr(
                            self.meta
                                .jobs
                                .iter()
                                .map(|j| Json::Str(j.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("trigger".into(), self.trigger_json()),
            ("at_us".into(), num(self.at_us)),
            (
                "window".into(),
                Json::Obj(vec![
                    ("events_seen".into(), num(self.events_seen)),
                    ("events_dropped".into(), num(self.events_dropped)),
                    ("events_retained".into(), num(self.events_retained)),
                    ("first_us".into(), num(self.window_first_us)),
                    ("last_us".into(), num(self.window_last_us)),
                    ("samples".into(), num(self.samples_retained)),
                    ("snapshots".into(), num(self.snapshots_retained)),
                ]),
            ),
            (
                "triage".into(),
                Json::Obj(
                    self.triage
                        .iter()
                        .map(|(class, count)| ((*class).into(), num(*count)))
                        .collect(),
                ),
            ),
            (
                "replay".into(),
                Json::Obj(vec![
                    ("switches".into(), num(self.switches)),
                    ("switch_total_us".into(), num(self.switch_total_us)),
                    ("bg_cleaned_pages".into(), num(self.bg_cleaned_pages)),
                ]),
            ),
            ("causes".into(), causes_json(&self.causes)),
            (
                "jobs".into(),
                Json::Arr(self.jobs.iter().map(job_json).collect()),
            ),
            (
                "diagnostics".into(),
                Json::Arr(self.diagnostics.iter().map(diag_json).collect()),
            ),
            (
                "culprits".into(),
                Json::Arr(self.culprits.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON, byte-deterministic (golden-pinned), with a
    /// trailing newline.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }

    /// One-line incident headline for the CLI, led by the
    /// [`verdict`](Self::verdict) so triage reads the class first.
    pub fn headline(&self) -> String {
        let verdict = self.verdict().name();
        match &self.trigger {
            IncidentTrigger::Watchdog {
                rule,
                value,
                limit,
                detail,
            } => {
                let mut s = format!(
                    "[{verdict}] watchdog {} tripped at {}us ({} > {})",
                    rule.name(),
                    self.at_us,
                    value,
                    limit
                );
                if !detail.is_empty() {
                    s.push_str(&format!(": {detail}"));
                }
                s
            }
            IncidentTrigger::Error { what } => {
                format!("[{verdict}] run aborted at {}us: {}", self.at_us, what)
            }
        }
    }

    /// The human-facing tables `agp postmortem` prints.
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            format!(
                "Incident window — {} (seed {})",
                self.meta.scenario, self.meta.seed
            ),
            &["subsystem", "events"],
        );
        for (class, count) in &self.triage {
            t1.row(vec![(*class).to_string(), count.to_string()]);
        }

        let mut t2 = Table::new(
            "Critical-path causes (window replay)",
            &["cause", "time (us)", "share (%)"],
        );
        let total = self.switch_total_us.max(1) as f64;
        for (cause, us) in self.causes.iter() {
            if cause.is_fault() && us == 0 {
                continue;
            }
            t2.row(vec![
                cause.name().into(),
                us.to_string(),
                format!("{:.1}", us as f64 * 100.0 / total),
            ]);
        }

        let mut t3 = Table::new("Last events before the freeze", &["trace line"]);
        for line in &self.culprits {
            t3.row(vec![line.clone()]);
        }
        vec![t1, t2, t3]
    }

    /// Context lines for the CLI's notes section.
    pub fn notes(&self) -> Vec<String> {
        let mut out = vec![
            format!(
                "window: {} events retained of {} seen ({} evicted), {}us..{}us",
                self.events_retained,
                self.events_seen,
                self.events_dropped,
                self.window_first_us,
                self.window_last_us
            ),
            format!(
                "replayed {} switches, {}us critical path; config fingerprint {:016x}",
                self.switches, self.switch_total_us, self.meta.config_fp
            ),
        ];
        for d in &self.diagnostics {
            if d.count > 0 {
                out.push(format!("{}: {} occurrences, {}us", d.kind, d.count, d.us));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agp_sim::SimTime;

    fn dump() -> IncidentDump {
        IncidentDump {
            schema_version: DUMP_SCHEMA_VERSION,
            trigger: IncidentTrigger::Watchdog {
                rule: WatchdogRule::RecoveryExhausted,
                value: 4,
                limit: 4,
                detail: String::new(),
            },
            at_us: 9_000,
            meta: RunMeta {
                scenario: "trip-smoke".into(),
                seed: 7,
                config_fp: 0xdead_beef_0bad_f00d,
                jobs: vec!["a".into(), "b".into()],
                pid_job: vec![(0, 0), (1, 1)],
            },
            events_seen: 5,
            events_dropped: 1,
            events: vec![
                TracedEvent {
                    at: SimTime::from_us(8_000),
                    src: 0,
                    event: ObsEvent::PageFault {
                        pid: 0,
                        page: 3,
                        major: true,
                    },
                },
                TracedEvent {
                    at: SimTime::from_us(8_500),
                    src: 0,
                    event: ObsEvent::IoRetry {
                        node: 0,
                        attempt: 4,
                        backoff_us: 16_000,
                    },
                },
                TracedEvent {
                    at: SimTime::from_us(9_000),
                    src: 0,
                    event: ObsEvent::IoExhausted {
                        node: 0,
                        attempts: 4,
                    },
                },
                TracedEvent {
                    at: SimTime::from_us(9_000),
                    src: agp_obs::SRC_CLUSTER,
                    event: ObsEvent::WatchdogTrip {
                        rule: WatchdogRule::RecoveryExhausted,
                        value: 4,
                        limit: 4,
                    },
                },
            ],
            samples_dropped: 0,
            samples: vec![
                r#"{"t":8000,"src":0,"ev":"node_gauge","free_frames":10,"dirty_pages":2,"disk_backlog_us":0,"disk_busy_us":5,"bg_cleaned":0}"#.into(),
            ],
            snapshots_dropped: 0,
            snapshots: Vec::new(),
        }
    }

    #[test]
    fn dump_load_round_trips_bytes() {
        let d = dump();
        let text = d.to_json_string();
        let loaded = load_dump(&text).expect("dump loads");
        assert_eq!(loaded, d);
        assert_eq!(loaded.to_json_string(), text, "load → dump is identity");
    }

    #[test]
    fn load_rejects_foreign_schema_and_garbage() {
        let mut d = dump();
        d.schema_version = DUMP_SCHEMA_VERSION + 1;
        let err = load_dump(&d.to_json_string()).unwrap_err();
        assert!(err.contains("schema_version"));
        assert!(load_dump("not json").is_err());
        assert!(load_dump("{}").is_err());
    }

    #[test]
    fn every_event_variant_has_a_triage_class() {
        for ev in ObsEvent::samples() {
            let class = triage_class(&ev);
            assert!(
                TRIAGE_CLASSES.contains(&class),
                "{} triaged to unknown class {class:?}",
                ev.name()
            );
        }
    }

    #[test]
    fn triage_counts_tile_the_window() {
        let r = PostmortemReport::build(&dump());
        let total: u64 = r.triage.iter().map(|(_, c)| c).sum();
        assert_eq!(total, r.events_retained);
        let incident = r.triage.iter().find(|(c, _)| *c == "incident").unwrap().1;
        assert_eq!(incident, 2, "io_exhausted + watchdog_trip");
        assert_eq!(r.triage.len(), TRIAGE_CLASSES.len());
    }

    #[test]
    fn report_json_is_deterministic_and_parses() {
        let r = PostmortemReport::build(&dump());
        let text = r.to_json_string();
        assert_eq!(text, r.to_json_string());
        let doc = Json::parse(&text).expect("report parses");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(POSTMORTEM_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("postmortem"));
        let trig = doc.get("trigger").expect("trigger");
        assert_eq!(trig.get("kind").and_then(Json::as_str), Some("watchdog"));
        assert_eq!(
            trig.get("rule").and_then(Json::as_str),
            Some("recovery_exhausted")
        );
        let triage = doc.get("triage").and_then(Json::as_object).expect("triage");
        assert_eq!(triage.len(), TRIAGE_CLASSES.len());
        assert_eq!(
            doc.get("verdict").and_then(Json::as_str),
            Some("watchdog_trip")
        );
        assert!(r.headline().starts_with("[watchdog_trip]"));
        assert!(r.headline().contains("recovery_exhausted"));
        assert_eq!(r.tables().len(), 3);
        assert_eq!(
            r.culprits.len(),
            4,
            "short window: every event is a culprit"
        );
    }

    #[test]
    fn incident_triggers_map_onto_the_verdict_taxonomy() {
        let with_trigger = |trigger: IncidentTrigger| {
            let mut d = dump();
            d.trigger = trigger;
            PostmortemReport::build(&d)
        };
        let watchdog = |rule| IncidentTrigger::Watchdog {
            rule,
            value: 2,
            limit: 1,
            detail: String::new(),
        };
        assert_eq!(
            with_trigger(watchdog(WatchdogRule::NoProgress)).verdict(),
            Verdict::Hang
        );
        assert_eq!(
            with_trigger(watchdog(WatchdogRule::Invariant)).verdict(),
            Verdict::InvariantViolation
        );
        for rule in [
            WatchdogRule::RecoveryExhausted,
            WatchdogRule::JobStall,
            WatchdogRule::QueueDepth,
        ] {
            assert_eq!(
                with_trigger(watchdog(rule)).verdict(),
                Verdict::WatchdogTrip
            );
        }
        let error = with_trigger(IncidentTrigger::Error {
            what: "disk on fire".into(),
        });
        assert_eq!(error.verdict(), Verdict::TypedError);
        assert!(error.headline().starts_with("[typed_error]"));
        // Every reachable verdict here is a failing one: incidents only
        // freeze on aborts.
        assert!(error.verdict().is_failing());
    }

    #[test]
    fn cause_buckets_tile_replayed_switch_totals() {
        let r = PostmortemReport::build(&dump());
        assert_eq!(r.causes.total_us(), r.switch_total_us);
    }
}
