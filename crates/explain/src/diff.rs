//! Differential explanation: attribute the end-to-end delta between two
//! same-seed runs differing in one policy bit to cause buckets (the
//! machine-checkable form of the paper's Fig. 9 ablation).

use agp_metrics::{Json, Table};

use crate::causes::Cause;
use crate::report::{inum, meta_json, num, pretty, ExplainReport, EXPLAIN_SCHEMA_VERSION};

/// `test − base` for one quantity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delta {
    /// Value in the test run.
    pub test: u64,
    /// Value in the base run.
    pub base: u64,
}

impl Delta {
    fn of(test: u64, base: u64) -> Delta {
        Delta { test, base }
    }

    /// Signed `test − base`.
    pub fn delta(&self) -> i64 {
        self.test as i64 - self.base as i64
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("test".into(), num(self.test)),
            ("base".into(), num(self.base)),
            ("delta".into(), inum(self.delta())),
        ])
    }
}

/// The differential report `agp explain <id> --against <policy>` emits.
#[derive(Clone, Debug)]
pub struct ExplainDiff {
    /// The test run's explanation.
    pub test: ExplainReport,
    /// The base run's explanation.
    pub base: ExplainReport,
}

impl ExplainDiff {
    /// Pair two reports. They should come from runs sharing seed,
    /// workload, and mode (the constructor does not enforce it; the
    /// `meta` echo in the JSON lets a reader check).
    pub fn new(test: ExplainReport, base: ExplainReport) -> ExplainDiff {
        ExplainDiff { test, base }
    }

    /// End-to-end completion delta, µs (negative = test faster).
    pub fn makespan(&self) -> Delta {
        Delta::of(self.test.makespan_us, self.base.makespan_us)
    }

    /// Summed switch-latency delta, µs.
    pub fn switch_total(&self) -> Delta {
        Delta::of(self.test.switch_total_us, self.base.switch_total_us)
    }

    /// Per-cause deltas in schema order. Fault-taxonomy causes are
    /// included only when either side holds time, so fault-free diffs
    /// keep the pre-chaos schema.
    pub fn causes(&self) -> Vec<(Cause, Delta)> {
        Cause::ALL
            .iter()
            .map(|&c| {
                (
                    c,
                    Delta::of(self.test.causes.get(c), self.base.causes.get(c)),
                )
            })
            .filter(|&(c, d)| !c.is_fault() || d.test > 0 || d.base > 0)
            .collect()
    }

    /// Fault-stall delta summed over jobs, µs.
    pub fn fault_stall(&self) -> Delta {
        let sum = |r: &ExplainReport| r.jobs.iter().map(|j| j.fault_stall_us).sum();
        Delta::of(sum(&self.test), sum(&self.base))
    }

    /// False-eviction refault stall delta, µs (the §3.1 bucket the
    /// selective page-out bit exists to shrink).
    pub fn false_eviction_stall(&self) -> Delta {
        let stall = |r: &ExplainReport| {
            r.diagnostics
                .iter()
                .find(|d| d.kind == "false_eviction_refault")
                .map(|d| d.us)
                .unwrap_or(0)
        };
        Delta::of(stall(&self.test), stall(&self.base))
    }

    /// False-eviction refault counts (test, base).
    pub fn false_eviction_counts(&self) -> Delta {
        let count = |r: &ExplainReport| {
            r.diagnostics
                .iter()
                .find(|d| d.kind == "false_eviction_refault")
                .map(|d| d.count)
                .unwrap_or(0)
        };
        Delta::of(count(&self.test), count(&self.base))
    }

    /// Provenance samples of the base run's false-eviction refaults —
    /// the named events whose elimination the delta is attributed to.
    pub fn base_false_eviction_samples(&self) -> &[String] {
        self.base
            .diagnostics
            .iter()
            .find(|d| d.kind == "false_eviction_refault")
            .map(|d| d.samples.as_slice())
            .unwrap_or(&[])
    }

    /// Background-writer cleaned-page delta (the bg-write savings side).
    pub fn bg_cleaned_pages(&self) -> Delta {
        Delta::of(self.test.bg_cleaned_pages, self.base.bg_cleaned_pages)
    }

    /// The diff as a [`Json`] document with a fixed field order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), num(EXPLAIN_SCHEMA_VERSION)),
            ("kind".into(), Json::Str("explain_diff".into())),
            ("test".into(), meta_json(&self.test.meta)),
            ("base".into(), meta_json(&self.base.meta)),
            ("makespan_us".into(), self.makespan().json()),
            ("switch_total_us".into(), self.switch_total().json()),
            (
                "causes".into(),
                Json::Obj(
                    self.causes()
                        .into_iter()
                        .map(|(c, d)| (c.name().into(), d.json()))
                        .collect(),
                ),
            ),
            (
                "stalls".into(),
                Json::Obj(vec![
                    ("fault_stall_us".into(), self.fault_stall().json()),
                    (
                        "false_eviction_stall_us".into(),
                        self.false_eviction_stall().json(),
                    ),
                    (
                        "false_eviction_refaults".into(),
                        self.false_eviction_counts().json(),
                    ),
                ]),
            ),
            ("bg_cleaned_pages".into(), self.bg_cleaned_pages().json()),
            (
                "base_false_eviction_samples".into(),
                Json::Arr(
                    self.base_false_eviction_samples()
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON, byte-deterministic, trailing newline.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }

    /// Human-facing diff tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Differential explanation — {} vs {} (seed {})",
                self.test.meta.policy, self.base.meta.policy, self.base.meta.seed
            ),
            &["quantity", "test", "base", "delta"],
        );
        let mut push = |name: &str, d: Delta| {
            t.row(vec![
                name.into(),
                d.test.to_string(),
                d.base.to_string(),
                format!("{:+}", d.delta()),
            ]);
        };
        push("makespan_us", self.makespan());
        push("switch_total_us", self.switch_total());
        for (c, d) in self.causes() {
            push(c.name(), d);
        }
        push("fault_stall_us", self.fault_stall());
        push("false_eviction_stall_us", self.false_eviction_stall());
        push("false_eviction_refaults", self.false_eviction_counts());
        push("bg_cleaned_pages", self.bg_cleaned_pages());
        vec![t]
    }

    /// Narrative lines for the CLI (what the delta is attributed to).
    pub fn notes(&self) -> Vec<String> {
        let mut out = Vec::new();
        let fe = self.false_eviction_stall();
        out.push(format!(
            "false-eviction refault stall: {}us -> {}us ({:+}us)",
            fe.base,
            fe.test,
            fe.delta()
        ));
        for s in self.base_false_eviction_samples() {
            out.push(format!("  base: {s}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::Analyzer;
    use crate::report::RunMeta;

    fn report(policy: &str, makespan: u64) -> ExplainReport {
        ExplainReport::build(
            Analyzer::new(),
            RunMeta {
                experiment: "fig9".into(),
                scale: "quick".into(),
                policy: policy.into(),
                mode: "gang".into(),
                seed: 7,
            },
            makespan,
            2,
        )
    }

    #[test]
    fn diff_json_is_deterministic_and_signed() {
        let d = ExplainDiff::new(report("so", 900), report("orig", 1_000));
        assert_eq!(d.makespan().delta(), -100);
        let text = d.to_json_string();
        assert_eq!(text, d.to_json_string());
        let doc = Json::parse(&text).expect("diff parses");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("explain_diff"));
        let mk = doc.get("makespan_us").expect("makespan block");
        assert_eq!(mk.get("delta").and_then(Json::as_f64), Some(-100.0));
    }
}
