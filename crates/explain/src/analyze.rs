//! The stream analyzer: an [`Observer`] that rebuilds per-switch causal
//! DAGs, accumulates per-job stall attribution, and detects the paper's
//! pathologies (false-eviction refaults, redundant page-ins, dirty-flush
//! storms) with event provenance.
//!
//! Every event delivered to the analyzer gets a monotonically increasing
//! sequence number; diagnostics cite those numbers (`evict#123 ->
//! fault#456`), so provenance is exact, replayable against a JSONL trace
//! of the same run, and byte-deterministic.

use std::collections::BTreeMap;

use agp_obs::{ObsEvent, Observer, SwitchPhaseKind};
use agp_sim::SimTime;

use crate::causes::{Cause, CauseBuckets};
use crate::dag::{ReqInfo, Segment, SwitchDag};

/// Write-page count at a single switch that qualifies as a dirty-flush
/// storm (§3.3: selective page-out exists precisely to avoid shoving
/// this much dirty state through the switch edge).
pub const STORM_THRESHOLD_PAGES: u64 = 128;

/// Cap on provenance samples kept per diagnostic kind (the counts keep
/// accumulating past it).
const MAX_SAMPLES: usize = 8;

/// One explained gang switch.
#[derive(Clone, Debug)]
pub struct SwitchExplain {
    /// Monotonic switch number (0 is the initial placement).
    pub switch: u64,
    /// Instant the switch began, µs.
    pub at_us: u64,
    /// Total switch latency, µs (matches `agp profile`).
    pub total_us: u64,
    /// Page-out phase length, µs.
    pub pageout_us: u64,
    /// Page-in phase length, µs.
    pub pagein_us: u64,
    /// Critical-path time per cause; sums to `total_us` exactly.
    pub causes: CauseBuckets,
    /// Critical-path slices in temporal order, tiling
    /// `[at_us, at_us + total_us]`.
    pub segments: Vec<Segment>,
    /// Terminal request on the critical path (empty if none recorded).
    pub critical: String,
}

/// Per-job stall attribution (fault-service time the job's processes
/// spent blocked, and barrier skew it absorbed).
#[derive(Clone, Debug, Default)]
pub struct JobStalls {
    /// Job name from the cluster config.
    pub name: String,
    /// Major-fault stalls serviced.
    pub fault_stalls: u64,
    /// Total fault-service stall time, µs.
    pub fault_stall_us: u64,
    /// Of those, stalls re-reading a page the policy evicted from the
    /// *running* process (§3.1 false evictions).
    pub false_eviction_stalls: u64,
    /// Stall time attributable to false evictions, µs.
    pub false_eviction_stall_us: u64,
    /// Barrier episodes the job completed.
    pub barriers: u64,
    /// Summed barrier arrival skew, µs.
    pub barrier_skew_us: u64,
}

/// One detected anomaly class, with provenance samples.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable kind tag (`false_eviction_refault`, `redundant_page_in`,
    /// `dirty_flush_storm`).
    pub kind: &'static str,
    /// Occurrences detected.
    pub count: u64,
    /// Stall/latency microseconds the occurrences account for.
    pub us: u64,
    /// Up to eight event-sequence provenance strings.
    pub samples: Vec<String>,
}

#[derive(Clone, Copy, Debug)]
struct EvictMark {
    seq: u64,
    false_eviction: bool,
}

/// The analyzing sink. Attach via [`agp_obs::ObsLink::to`] (or fan out
/// next to a [`agp_obs::Collector`]), read back after the run.
#[derive(Debug)]
pub struct Analyzer {
    seq: u64,
    // -- switch assembly --
    cur_reqs: Vec<ReqInfo>,
    cur_reqs_at: u64,
    cur_pageout_us: u64,
    cur_pagein_us: u64,
    // Injected-fault time since the last switch, as (at_us, us) pairs:
    // only entries stamped at (or after) the switch instant belong to
    // the switch's drain; earlier ones were mid-quantum demand faults.
    cur_fault_io: Vec<(u64, u64)>,
    cur_fault_slow: Vec<(u64, u64)>,
    switches: Vec<SwitchExplain>,
    // -- anomaly state (BTreeMaps keep iteration deterministic) --
    last_evict: BTreeMap<(u32, u32), EvictMark>,
    staged: BTreeMap<(u32, u32), u64>,
    wasted: BTreeMap<(u32, u32), (u64, u64)>,
    last_fault_seq: BTreeMap<u32, u64>,
    // -- job attribution --
    jobs: Vec<JobStalls>,
    pid_job: BTreeMap<u32, usize>,
    // -- diagnostics --
    false_refault: Diagnostic,
    redundant: Diagnostic,
    storm: Diagnostic,
    /// Pages the background writer cleaned ahead of switches.
    bg_cleaned_pages: u64,
    events: u64,
}

impl Diagnostic {
    fn new(kind: &'static str) -> Diagnostic {
        Diagnostic {
            kind,
            count: 0,
            us: 0,
            samples: Vec::new(),
        }
    }

    fn hit(&mut self, us: u64, sample: String) {
        self.count += 1;
        self.us += us;
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(sample);
        }
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// An analyzer without job attribution (the `jobs` section stays
    /// empty; switch and diagnostic analysis is unaffected).
    pub fn new() -> Analyzer {
        Analyzer {
            seq: 0,
            cur_reqs: Vec::new(),
            cur_reqs_at: 0,
            cur_pageout_us: 0,
            cur_pagein_us: 0,
            cur_fault_io: Vec::new(),
            cur_fault_slow: Vec::new(),
            switches: Vec::new(),
            last_evict: BTreeMap::new(),
            staged: BTreeMap::new(),
            wasted: BTreeMap::new(),
            last_fault_seq: BTreeMap::new(),
            jobs: Vec::new(),
            pid_job: BTreeMap::new(),
            false_refault: Diagnostic::new("false_eviction_refault"),
            redundant: Diagnostic::new("redundant_page_in"),
            storm: Diagnostic::new("dirty_flush_storm"),
            bg_cleaned_pages: 0,
            events: 0,
        }
    }

    /// An analyzer that attributes stalls to jobs. `names` are the job
    /// names in submission order; `pid_job` maps every pid to its index
    /// in `names` (pids are assigned sequentially per job, so the map
    /// is derivable from the cluster config — see
    /// [`crate::explain_run`]).
    pub fn with_jobs(names: Vec<String>, pid_job: BTreeMap<u32, usize>) -> Analyzer {
        let mut a = Analyzer::new();
        a.jobs = names
            .into_iter()
            .map(|name| JobStalls {
                name,
                ..JobStalls::default()
            })
            .collect();
        a.pid_job = pid_job;
        a
    }

    /// Explained switches, in switch order.
    pub fn switches(&self) -> &[SwitchExplain] {
        &self.switches
    }

    /// Per-job stall attribution (empty without [`Analyzer::with_jobs`]).
    pub fn jobs(&self) -> &[JobStalls] {
        &self.jobs
    }

    /// The three diagnostic classes, in stable order. Zero-count
    /// diagnostics are included so reports are shape-stable.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        vec![
            self.false_refault.clone(),
            self.redundant.clone(),
            self.storm.clone(),
        ]
    }

    /// Pages the background writer cleaned (the bg-write savings side
    /// of the ledger: dirty pages that did *not* have to drain at a
    /// switch edge).
    pub fn bg_cleaned_pages(&self) -> u64 {
        self.bg_cleaned_pages
    }

    /// Events delivered to this analyzer.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn job_mut(&mut self, pid: u32) -> Option<&mut JobStalls> {
        let j = *self.pid_job.get(&pid)?;
        self.jobs.get_mut(j)
    }

    fn finish_switch(&mut self, switch: u64, at_us: u64, total_us: u64) {
        let reqs: Vec<ReqInfo> = if self.cur_reqs_at == at_us {
            std::mem::take(&mut self.cur_reqs)
        } else {
            Vec::new()
        };
        let pageout_us = self.cur_pageout_us;
        let pagein_us = self.cur_pagein_us;
        self.cur_reqs.clear();
        self.cur_pageout_us = 0;
        self.cur_pagein_us = 0;
        // Fault time stamped at the switch instant or later happened
        // inside this drain (retry timestamps advance past the switch
        // start as backoff accumulates); anything earlier belongs to the
        // preceding quantum's demand faults and is discarded.
        let fault_io_us: u64 = self
            .cur_fault_io
            .iter()
            .filter(|&&(t, _)| t >= at_us)
            .map(|&(_, us)| us)
            .sum();
        let fault_slow_us: u64 = self
            .cur_fault_slow
            .iter()
            .filter(|&&(t, _)| t >= at_us)
            .map(|&(_, us)| us)
            .sum();
        self.cur_fault_io.clear();
        self.cur_fault_slow.clear();

        let cp = SwitchDag::build(pageout_us, &reqs).critical_path();
        let segments = cp.attributed(total_us);
        let mut causes = CauseBuckets::new();
        for s in &segments {
            causes.add(s.cause, s.dur_us);
        }
        debug_assert_eq!(causes.total_us(), total_us);
        // Injected faults stretch the drain beyond what the successful
        // requests explain (error service + backoff, latency penalties),
        // so the stretch sits in the unexplained remainder. Carve it out
        // into the fault taxonomy, clamped so buckets still tile the
        // switch latency exactly.
        causes.reassign(Cause::Other, Cause::FaultIoError, fault_io_us);
        causes.reassign(Cause::Other, Cause::FaultDiskSlow, fault_slow_us);

        let write_pages: u64 = reqs.iter().filter(|r| r.write).map(|r| r.pages).sum();
        if write_pages >= STORM_THRESHOLD_PAGES {
            let bursts = reqs.iter().filter(|r| r.write).count();
            self.storm.hit(
                pageout_us,
                format!(
                    "switch#{switch}: {write_pages} dirty pages flushed in {bursts} bursts \
                     at {at_us}us (page-out phase {pageout_us}us)"
                ),
            );
        }

        self.switches.push(SwitchExplain {
            switch,
            at_us,
            total_us,
            pageout_us,
            pagein_us,
            causes,
            segments,
            critical: cp.terminal,
        });
    }
}

impl Observer for Analyzer {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        self.seq += 1;
        self.events += 1;
        let seq = self.seq;
        let at_us = at.as_us();
        match *ev {
            ObsEvent::DiskRequest {
                write,
                pages,
                wait_us,
                seek_us,
                service_us,
                ..
            } => {
                // Only the most recent instant's burst can belong to a
                // switch (switch events follow their submissions at the
                // same timestamp), so older requests are dropped here.
                if self.cur_reqs_at != at_us {
                    self.cur_reqs.clear();
                    self.cur_reqs_at = at_us;
                }
                self.cur_reqs.push(ReqInfo {
                    seq,
                    src,
                    at_us,
                    write,
                    pages,
                    wait_us,
                    seek_us,
                    service_us,
                });
            }
            ObsEvent::SwitchPhase { phase, dur_us, .. } => match phase {
                SwitchPhaseKind::PageOut => self.cur_pageout_us = dur_us,
                SwitchPhaseKind::PageIn => self.cur_pagein_us = dur_us,
                SwitchPhaseKind::Stop | SwitchPhaseKind::Cont => {}
            },
            ObsEvent::SwitchDone { switch, total_us } => {
                self.finish_switch(switch, at_us, total_us);
            }
            ObsEvent::Evict {
                pid,
                page,
                false_eviction,
                ..
            } => {
                self.last_evict.insert(
                    (pid, page),
                    EvictMark {
                        seq,
                        false_eviction,
                    },
                );
                // A page staged by replay and evicted before its owner
                // faulted even once since staging was paged in for
                // nothing; remember it in case it gets re-read later.
                if let Some(stage_seq) = self.staged.remove(&(pid, page)) {
                    let faulted_since = self
                        .last_fault_seq
                        .get(&pid)
                        .map(|&f| f > stage_seq)
                        .unwrap_or(false);
                    if !faulted_since {
                        self.wasted.insert((pid, page), (stage_seq, seq));
                    }
                }
            }
            ObsEvent::ReplayPage { pid, page } => {
                self.staged.insert((pid, page), seq);
            }
            ObsEvent::PageFault { pid, page, major } => {
                self.last_fault_seq.insert(pid, seq);
                if major {
                    if let Some((stage_seq, evict_seq)) = self.wasted.remove(&(pid, page)) {
                        self.redundant.hit(
                            0,
                            format!(
                                "replay#{stage_seq} -> evict#{evict_seq} -> refault#{seq}: \
                                 pid {pid} page {page} staged, thrown away unused, re-read"
                            ),
                        );
                    }
                }
            }
            ObsEvent::FaultService { pid, page, wait_us } => {
                let false_ev = match self.last_evict.remove(&(pid, page)) {
                    Some(mark) if mark.false_eviction => Some(mark.seq),
                    _ => None,
                };
                if let Some(evict_seq) = false_ev {
                    self.false_refault.hit(
                        wait_us,
                        format!(
                            "evict#{evict_seq} -> fault#{seq}: pid {pid} page {page} \
                             evicted from the running process, stalled {wait_us}us re-reading"
                        ),
                    );
                }
                if let Some(job) = self.job_mut(pid) {
                    job.fault_stalls += 1;
                    job.fault_stall_us += wait_us;
                    if false_ev.is_some() {
                        job.false_eviction_stalls += 1;
                        job.false_eviction_stall_us += wait_us;
                    }
                }
            }
            ObsEvent::BarrierWait { skew_us, .. } => {
                // Barrier links are tagged with the job index.
                if let Some(job) = self.jobs.get_mut(src as usize) {
                    job.barriers += 1;
                    job.barrier_skew_us += skew_us;
                }
            }
            ObsEvent::BgTick { pages, .. } => {
                self.bg_cleaned_pages += pages;
            }
            ObsEvent::DiskError { service_us, .. } => {
                self.cur_fault_io.push((at_us, service_us));
            }
            ObsEvent::IoRetry { backoff_us, .. } => {
                self.cur_fault_io.push((at_us, backoff_us));
            }
            ObsEvent::DiskSlowdown { penalty_us } => {
                self.cur_fault_slow.push((at_us, penalty_us));
            }
            // Intentionally unanalyzed, but named so the match stays
            // exhaustive: adding an ObsEvent variant without deciding how
            // the explain pass treats it is a compile error here (and the
            // `event-protocol` lint flags wildcard funnels). These carry
            // detail the switch-latency analysis already gets in another
            // form — MajorFault's I/O plan arrives as DiskRequest, the
            // batch events as per-page Evict/ReplayPage — or gauge and
            // chaos telemetry consumed by the report/replay layers.
            ObsEvent::MajorFault { .. }
            | ObsEvent::ReadaheadHit { .. }
            | ObsEvent::EvictBatch { .. }
            | ObsEvent::Reclaim { .. }
            | ObsEvent::AggressiveOut { .. }
            | ObsEvent::Replay { .. }
            | ObsEvent::NodeGauge { .. }
            | ObsEvent::ProcGauge { .. }
            | ObsEvent::NodeCrash { .. }
            | ObsEvent::NodeRestart { .. }
            | ObsEvent::JobRequeued { .. }
            | ObsEvent::BarrierTimeout { .. }
            | ObsEvent::MemPressure { .. }
            | ObsEvent::AiDegraded { .. }
            | ObsEvent::IoExhausted { .. }
            | ObsEvent::BarrierExhausted { .. }
            | ObsEvent::WatchdogTrip { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::Cause;

    fn feed(a: &mut Analyzer, at_us: u64, src: u32, ev: ObsEvent) {
        a.on_event(SimTime::from_us(at_us), src, &ev);
    }

    fn switch_at(a: &mut Analyzer, at_us: u64, switch: u64, pageout: u64, pagein: u64) {
        for (phase, dur) in [
            (SwitchPhaseKind::Stop, 0),
            (SwitchPhaseKind::PageOut, pageout),
            (SwitchPhaseKind::PageIn, pagein),
            (SwitchPhaseKind::Cont, 0),
        ] {
            feed(
                a,
                at_us,
                u32::MAX,
                ObsEvent::SwitchPhase {
                    switch,
                    phase,
                    dur_us: dur,
                },
            );
        }
        feed(
            a,
            at_us,
            u32::MAX,
            ObsEvent::SwitchDone {
                switch,
                total_us: pageout + pagein,
            },
        );
    }

    #[test]
    fn switch_buckets_sum_to_the_reported_total() {
        let mut a = Analyzer::new();
        feed(
            &mut a,
            5_000,
            0,
            ObsEvent::DiskRequest {
                write: true,
                extents: 1,
                pages: 12,
                wait_us: 0,
                seek_us: 100,
                service_us: 300,
            },
        );
        feed(
            &mut a,
            5_000,
            0,
            ObsEvent::DiskRequest {
                write: false,
                extents: 2,
                pages: 32,
                wait_us: 300,
                seek_us: 50,
                service_us: 650,
            },
        );
        switch_at(&mut a, 5_000, 1, 300, 650);
        let sw = &a.switches()[0];
        assert_eq!(sw.total_us, 950);
        assert_eq!(sw.causes.total_us(), 950);
        assert_eq!(sw.causes.get(Cause::InterleavedPageoutWait), 300);
        assert_eq!(sw.causes.get(Cause::PageinTransfer), 600);
        assert_eq!(sw.causes.get(Cause::Other), 0);
        assert!(sw.critical.contains("read req#2"));
    }

    #[test]
    fn stale_fault_requests_do_not_pollute_the_switch() {
        let mut a = Analyzer::new();
        // A fault-time read long before the switch instant.
        feed(
            &mut a,
            1_000,
            0,
            ObsEvent::DiskRequest {
                write: false,
                extents: 1,
                pages: 4,
                wait_us: 0,
                seek_us: 10,
                service_us: 90,
            },
        );
        switch_at(&mut a, 9_000, 1, 0, 0);
        let sw = &a.switches()[0];
        assert_eq!(sw.total_us, 0);
        assert!(sw.segments.is_empty());
        assert!(sw.critical.is_empty());
    }

    #[test]
    fn unexplained_time_lands_in_other() {
        let mut a = Analyzer::new();
        switch_at(&mut a, 2_000, 3, 100, 400);
        let sw = &a.switches()[0];
        assert_eq!(sw.causes.get(Cause::Other), 500);
        assert_eq!(sw.causes.total_us(), sw.total_us);
    }

    #[test]
    fn switch_instant_fault_time_lands_in_fault_causes() {
        let mut a = Analyzer::new();
        feed(
            &mut a,
            5_000,
            0,
            ObsEvent::DiskError {
                write: true,
                pages: 4,
                service_us: 1_000,
            },
        );
        feed(
            &mut a,
            5_000,
            u32::MAX,
            ObsEvent::IoRetry {
                node: 0,
                attempt: 1,
                backoff_us: 2_000,
            },
        );
        feed(&mut a, 5_000, 0, ObsEvent::DiskSlowdown { penalty_us: 700 });
        switch_at(&mut a, 5_000, 1, 0, 10_000);
        let sw = &a.switches()[0];
        assert_eq!(sw.total_us, 10_000);
        assert_eq!(sw.causes.get(Cause::FaultIoError), 3_000);
        assert_eq!(sw.causes.get(Cause::FaultDiskSlow), 700);
        assert_eq!(sw.causes.get(Cause::Other), 6_300);
        assert_eq!(sw.causes.total_us(), sw.total_us, "buckets still tile");
    }

    #[test]
    fn mid_quantum_fault_time_is_not_charged_to_the_switch() {
        let mut a = Analyzer::new();
        // A demand-fault retry long before the switch instant.
        feed(
            &mut a,
            1_000,
            u32::MAX,
            ObsEvent::IoRetry {
                node: 0,
                attempt: 1,
                backoff_us: 2_000,
            },
        );
        switch_at(&mut a, 9_000, 1, 100, 400);
        let sw = &a.switches()[0];
        assert_eq!(sw.causes.get(Cause::FaultIoError), 0);
        assert_eq!(sw.causes.get(Cause::Other), 500);
        // And the stale entry does not leak into the next switch either.
        feed(
            &mut a,
            9_500,
            u32::MAX,
            ObsEvent::IoRetry {
                node: 0,
                attempt: 1,
                backoff_us: 300,
            },
        );
        switch_at(&mut a, 9_400, 2, 0, 1_000);
        assert_eq!(a.switches()[1].causes.get(Cause::FaultIoError), 300);
    }

    #[test]
    fn fault_reassignment_is_clamped_to_the_unexplained_remainder() {
        let mut a = Analyzer::new();
        feed(
            &mut a,
            2_000,
            0,
            ObsEvent::DiskError {
                write: false,
                pages: 8,
                service_us: 50_000,
            },
        );
        // The switch is shorter than the claimed fault time: the carve-out
        // must clamp instead of going negative.
        switch_at(&mut a, 2_000, 1, 0, 4_000);
        let sw = &a.switches()[0];
        assert_eq!(sw.causes.get(Cause::FaultIoError), 4_000);
        assert_eq!(sw.causes.get(Cause::Other), 0);
        assert_eq!(sw.causes.total_us(), 4_000);
    }

    #[test]
    fn false_eviction_refault_is_detected_with_provenance() {
        let mut pid_job = BTreeMap::new();
        pid_job.insert(7u32, 0usize);
        let mut a = Analyzer::with_jobs(vec!["lu.0".into()], pid_job);
        feed(
            &mut a,
            1_000,
            0,
            ObsEvent::Evict {
                pid: 7,
                page: 42,
                false_eviction: true,
                recorded: false,
            },
        );
        feed(
            &mut a,
            2_000,
            u32::MAX,
            ObsEvent::FaultService {
                pid: 7,
                page: 42,
                wait_us: 8_000,
            },
        );
        let d = &a.diagnostics()[0];
        assert_eq!(d.kind, "false_eviction_refault");
        assert_eq!(d.count, 1);
        assert_eq!(d.us, 8_000);
        assert!(d.samples[0].contains("evict#1 -> fault#2"));
        assert_eq!(a.jobs()[0].false_eviction_stalls, 1);
        assert_eq!(a.jobs()[0].false_eviction_stall_us, 8_000);
        // A second service of the same page without a new evict does
        // not double-count.
        feed(
            &mut a,
            3_000,
            u32::MAX,
            ObsEvent::FaultService {
                pid: 7,
                page: 42,
                wait_us: 5_000,
            },
        );
        assert_eq!(a.diagnostics()[0].count, 1);
        assert_eq!(a.jobs()[0].fault_stalls, 2);
    }

    #[test]
    fn redundant_page_in_needs_stage_evict_refault_without_use() {
        let mut a = Analyzer::new();
        feed(&mut a, 1_000, 0, ObsEvent::ReplayPage { pid: 3, page: 9 });
        feed(
            &mut a,
            2_000,
            0,
            ObsEvent::Evict {
                pid: 3,
                page: 9,
                false_eviction: false,
                recorded: true,
            },
        );
        feed(
            &mut a,
            3_000,
            0,
            ObsEvent::PageFault {
                pid: 3,
                page: 9,
                major: true,
            },
        );
        let d = &a.diagnostics()[1];
        assert_eq!(d.kind, "redundant_page_in");
        assert_eq!(d.count, 1);
        assert!(d.samples[0].contains("replay#1 -> evict#2 -> refault#3"));

        // If the owner faulted between stage and evict, it ran — the
        // staging was not wasted.
        let mut b = Analyzer::new();
        feed(&mut b, 1_000, 0, ObsEvent::ReplayPage { pid: 3, page: 9 });
        feed(
            &mut b,
            1_500,
            0,
            ObsEvent::PageFault {
                pid: 3,
                page: 11,
                major: false,
            },
        );
        feed(
            &mut b,
            2_000,
            0,
            ObsEvent::Evict {
                pid: 3,
                page: 9,
                false_eviction: false,
                recorded: true,
            },
        );
        feed(
            &mut b,
            3_000,
            0,
            ObsEvent::PageFault {
                pid: 3,
                page: 9,
                major: true,
            },
        );
        assert_eq!(b.diagnostics()[1].count, 0);
    }

    #[test]
    fn dirty_flush_storm_trips_at_the_threshold() {
        let mut a = Analyzer::new();
        feed(
            &mut a,
            4_000,
            0,
            ObsEvent::DiskRequest {
                write: true,
                extents: 4,
                pages: STORM_THRESHOLD_PAGES,
                wait_us: 0,
                seek_us: 500,
                service_us: 9_500,
            },
        );
        switch_at(&mut a, 4_000, 2, 9_500, 0);
        let d = &a.diagnostics()[2];
        assert_eq!(d.kind, "dirty_flush_storm");
        assert_eq!(d.count, 1);
        assert_eq!(d.us, 9_500);
        assert!(d.samples[0].contains("switch#2"));
    }

    #[test]
    fn barrier_skew_lands_on_the_src_job() {
        let mut a = Analyzer::with_jobs(vec!["a".into(), "b".into()], BTreeMap::new());
        feed(
            &mut a,
            1_000,
            1,
            ObsEvent::BarrierWait {
                ranks: 4,
                skew_us: 250,
                lag_us: 10,
            },
        );
        assert_eq!(a.jobs()[1].barriers, 1);
        assert_eq!(a.jobs()[1].barrier_skew_us, 250);
        assert_eq!(a.jobs()[0].barriers, 0);
    }
}
