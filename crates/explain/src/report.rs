//! The explain report: deterministic JSON (golden-pinned, stable field
//! order, pretty-printed) plus the human-facing tables `agp explain`
//! prints.

use agp_metrics::{Json, Table};

use crate::analyze::{Analyzer, Diagnostic, JobStalls, SwitchExplain};
use crate::causes::CauseBuckets;

/// Schema version stamped into every explain (and diff) document.
pub const EXPLAIN_SCHEMA_VERSION: u64 = 1;

/// How many slowest switches keep full per-switch detail in the report.
pub const SWITCH_DETAIL_LIMIT: usize = 8;

/// Identity of the run being explained, echoed into the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Experiment id (`fig9`, …) or a free-form label.
    pub experiment: String,
    /// Scale name (`quick` / `paper`).
    pub scale: String,
    /// Policy label (`orig`, `so`, `so/ao/ai/bg`, …).
    pub policy: String,
    /// Scheduling mode (`gang` / `batch`).
    pub mode: String,
    /// Deterministic seed the run used.
    pub seed: u64,
}

/// The complete causal explanation of one run.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// Run identity.
    pub meta: RunMeta,
    /// End-to-end completion time, µs.
    pub makespan_us: u64,
    /// Gang switches performed (including the initial placement).
    pub switch_count: u64,
    /// Summed switch latency, µs (matches `agp profile`'s total).
    pub switch_total_us: u64,
    /// Critical-path time per cause, summed over every switch; the
    /// bucket total equals `switch_total_us` exactly.
    pub causes: CauseBuckets,
    /// The [`SWITCH_DETAIL_LIMIT`] slowest switches (total µs
    /// descending, switch number ascending on ties), full detail.
    pub switch_detail: Vec<SwitchExplain>,
    /// True when the run had more switches than the detail limit.
    pub switch_detail_truncated: bool,
    /// Per-job stall attribution.
    pub jobs: Vec<JobStalls>,
    /// Anomaly diagnostics in stable kind order (zero counts included).
    pub diagnostics: Vec<Diagnostic>,
    /// Pages the background writer cleaned ahead of switch edges.
    pub bg_cleaned_pages: u64,
}

impl ExplainReport {
    /// Assemble the report from a drained [`Analyzer`] and the run's
    /// result.
    pub fn build(analyzer: Analyzer, meta: RunMeta, makespan_us: u64, switch_count: u64) -> Self {
        let mut causes = CauseBuckets::new();
        let mut switch_total_us = 0u64;
        for sw in analyzer.switches() {
            causes.merge(&sw.causes);
            switch_total_us += sw.total_us;
        }
        let mut detail: Vec<SwitchExplain> = analyzer.switches().to_vec();
        detail.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.switch.cmp(&b.switch)));
        let truncated = detail.len() > SWITCH_DETAIL_LIMIT;
        detail.truncate(SWITCH_DETAIL_LIMIT);
        ExplainReport {
            meta,
            makespan_us,
            switch_count,
            switch_total_us,
            causes,
            switch_detail: detail,
            switch_detail_truncated: truncated,
            jobs: analyzer.jobs().to_vec(),
            diagnostics: analyzer.diagnostics(),
            bg_cleaned_pages: analyzer.bg_cleaned_pages(),
        }
    }

    /// The report as a [`Json`] document with a fixed field order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), num(EXPLAIN_SCHEMA_VERSION)),
            ("kind".into(), Json::Str("explain".into())),
            ("meta".into(), meta_json(&self.meta)),
            (
                "run".into(),
                Json::Obj(vec![
                    ("makespan_us".into(), num(self.makespan_us)),
                    ("switches".into(), num(self.switch_count)),
                    ("switch_total_us".into(), num(self.switch_total_us)),
                    ("bg_cleaned_pages".into(), num(self.bg_cleaned_pages)),
                ]),
            ),
            ("causes".into(), causes_json(&self.causes)),
            (
                "switch_detail".into(),
                Json::Arr(self.switch_detail.iter().map(switch_json).collect()),
            ),
            (
                "switch_detail_truncated".into(),
                Json::Bool(self.switch_detail_truncated),
            ),
            (
                "jobs".into(),
                Json::Arr(self.jobs.iter().map(job_json).collect()),
            ),
            (
                "diagnostics".into(),
                Json::Arr(self.diagnostics.iter().map(diag_json).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON, byte-deterministic (pinned by the golden
    /// test), with a trailing newline.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }

    /// The human-facing tables `agp explain` prints.
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            format!(
                "Critical-path causes — {} ({})",
                self.meta.policy, self.meta.experiment
            ),
            &["cause", "time (us)", "share (%)"],
        );
        let total = self.switch_total_us.max(1) as f64;
        for (cause, us) in self.causes.iter() {
            if cause.is_fault() && us == 0 {
                continue;
            }
            t1.row(vec![
                cause.name().into(),
                us.to_string(),
                format!("{:.1}", us as f64 * 100.0 / total),
            ]);
        }

        let mut t2 = Table::new(
            "Slowest switches (critical path)",
            &[
                "switch",
                "at (us)",
                "total (us)",
                "pageout",
                "pagein",
                "dominant",
                "terminal",
            ],
        );
        for sw in &self.switch_detail {
            t2.row(vec![
                sw.switch.to_string(),
                sw.at_us.to_string(),
                sw.total_us.to_string(),
                sw.pageout_us.to_string(),
                sw.pagein_us.to_string(),
                sw.causes
                    .dominant()
                    .map(|c| c.name().to_string())
                    .unwrap_or_else(|| "-".into()),
                if sw.critical.is_empty() {
                    "-".into()
                } else {
                    sw.critical.clone()
                },
            ]);
        }

        let mut t3 = Table::new(
            "Per-job stall attribution",
            &[
                "job",
                "fault stalls",
                "stall (us)",
                "false-evict stalls",
                "false-evict (us)",
                "barriers",
                "skew (us)",
            ],
        );
        for j in &self.jobs {
            t3.row(vec![
                j.name.clone(),
                j.fault_stalls.to_string(),
                j.fault_stall_us.to_string(),
                j.false_eviction_stalls.to_string(),
                j.false_eviction_stall_us.to_string(),
                j.barriers.to_string(),
                j.barrier_skew_us.to_string(),
            ]);
        }
        vec![t1, t2, t3]
    }

    /// One line per diagnostic kind (plus its first provenance sample),
    /// for the CLI's notes section.
    pub fn notes(&self) -> Vec<String> {
        let mut out = Vec::new();
        for d in &self.diagnostics {
            let mut line = format!("{}: {} occurrences, {}us", d.kind, d.count, d.us);
            if let Some(s) = d.samples.first() {
                line.push_str(&format!(" — e.g. {s}"));
            }
            out.push(line);
        }
        out.push(format!(
            "bg writer cleaned {} pages ahead of switch edges",
            self.bg_cleaned_pages
        ));
        out
    }
}

pub(crate) fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

pub(crate) fn inum(v: i64) -> Json {
    Json::Num(v as f64)
}

pub(crate) fn meta_json(m: &RunMeta) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str(m.experiment.clone())),
        ("scale".into(), Json::Str(m.scale.clone())),
        ("policy".into(), Json::Str(m.policy.clone())),
        ("mode".into(), Json::Str(m.mode.clone())),
        ("seed".into(), num(m.seed)),
    ])
}

/// Cause buckets as JSON. The fault-taxonomy causes only appear when
/// they hold time, so fault-free reports keep the pre-chaos schema (and
/// the committed golden) byte for byte.
pub(crate) fn causes_json(c: &CauseBuckets) -> Json {
    Json::Obj(
        c.iter()
            .filter(|&(cause, us)| !cause.is_fault() || us > 0)
            .map(|(cause, us)| (cause.name().into(), num(us)))
            .collect(),
    )
}

fn switch_json(sw: &SwitchExplain) -> Json {
    Json::Obj(vec![
        ("switch".into(), num(sw.switch)),
        ("at_us".into(), num(sw.at_us)),
        ("total_us".into(), num(sw.total_us)),
        ("pageout_us".into(), num(sw.pageout_us)),
        ("pagein_us".into(), num(sw.pagein_us)),
        ("causes".into(), causes_json(&sw.causes)),
        ("critical".into(), Json::Str(sw.critical.clone())),
    ])
}

pub(crate) fn job_json(j: &JobStalls) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(j.name.clone())),
        ("fault_stalls".into(), num(j.fault_stalls)),
        ("fault_stall_us".into(), num(j.fault_stall_us)),
        ("false_eviction_stalls".into(), num(j.false_eviction_stalls)),
        (
            "false_eviction_stall_us".into(),
            num(j.false_eviction_stall_us),
        ),
        ("barriers".into(), num(j.barriers)),
        ("barrier_skew_us".into(), num(j.barrier_skew_us)),
    ])
}

pub(crate) fn diag_json(d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str(d.kind.into())),
        ("count".into(), num(d.count)),
        ("us".into(), num(d.us)),
        (
            "samples".into(),
            Json::Arr(d.samples.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
    ])
}

/// Render `j` with two-space indentation. Scalar leaves delegate to the
/// compact writer, so numbers format identically in both modes.
pub(crate) fn pretty(j: &Json, indent: usize, out: &mut String) {
    match j {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                push_indent(out, indent + 1);
                out.push_str(&Json::Str(k.clone()).to_string_compact());
                out.push_str(": ");
                pretty(v, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
        other => out.push_str(&other.to_string_compact()),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::Cause;

    fn meta() -> RunMeta {
        RunMeta {
            experiment: "fig9".into(),
            scale: "quick".into(),
            policy: "so".into(),
            mode: "gang".into(),
            seed: 42,
        }
    }

    #[test]
    fn report_json_has_stable_shape_and_roundtrips() {
        let r = ExplainReport::build(Analyzer::new(), meta(), 1_000_000, 3);
        let text = r.to_json_string();
        let doc = Json::parse(&text).expect("pretty output parses");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(EXPLAIN_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("explain"));
        let diags = doc
            .get("diagnostics")
            .and_then(Json::as_array)
            .expect("diagnostics");
        assert_eq!(diags.len(), 3, "all kinds present even at zero count");
        // A fault-free run emits exactly the core (pre-chaos) cause keys,
        // in schema order.
        let causes = doc.get("causes").and_then(Json::as_object).expect("causes");
        let keys: Vec<&str> = causes.iter().map(|(k, _)| k.as_str()).collect();
        let want: Vec<&str> = Cause::CORE.iter().map(|c| c.name()).collect();
        assert_eq!(keys, want);
        // Byte-determinism of the writer itself.
        assert_eq!(text, r.to_json_string());
    }

    #[test]
    fn fault_causes_appear_only_when_nonzero() {
        let mut r = ExplainReport::build(Analyzer::new(), meta(), 1_000, 1);
        r.causes.add(Cause::FaultIoError, 250);
        let doc = Json::parse(&r.to_json_string()).expect("parses");
        let causes = doc.get("causes").and_then(Json::as_object).expect("causes");
        let keys: Vec<&str> = causes.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"fault_io_error"));
        assert!(
            !keys.contains(&"fault_disk_slow"),
            "still-zero fault cause stays hidden"
        );
        // Schema order is preserved: the fault cause slots in before "other".
        assert_eq!(keys.last(), Some(&"other"));
        assert_eq!(r.tables()[0].len(), Cause::CORE.len() + 1);
    }

    #[test]
    fn tables_cover_every_cause() {
        let r = ExplainReport::build(Analyzer::new(), meta(), 0, 0);
        let t = r.tables();
        assert_eq!(t[0].len(), Cause::CORE.len());
        assert!(r
            .notes()
            .iter()
            .any(|n| n.contains("false_eviction_refault")));
    }
}
