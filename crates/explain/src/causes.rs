//! The stable cause taxonomy every critical-path nanosecond is bucketed
//! into, and the fixed-size accumulator that keeps cause totals exact.
//!
//! The names are part of the `agp explain` JSON schema: they are emitted
//! verbatim (snake_case, in declaration order) and pinned by the golden
//! test, so renaming or reordering a variant is a schema change.

use std::fmt;

/// Where a slice of switch critical-path time went.
///
/// The first seven causes correspond to edges of the per-switch event
/// DAG (§3.2 of the paper's switch protocol: drain page-out writes, then
/// drain page-in reads). [`Cause::Other`] absorbs any remainder the
/// recorded disk requests cannot explain, so per-switch buckets always
/// sum to the switch latency exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cause {
    /// A page-out write sat in the disk FIFO behind earlier requests.
    PageoutQueueWait,
    /// Head movement before a page-out write's transfer.
    PageoutSeek,
    /// Raw data transfer of a page-out write.
    PageoutTransfer,
    /// A page-in read waited while interleaved page-out writes drained
    /// (the §3.2 "interleaved page-out" phase ahead of it in the queue).
    InterleavedPageoutWait,
    /// A page-in read sat in the disk FIFO beyond the page-out drain.
    PageinQueueWait,
    /// Head movement before a page-in read's transfer.
    PageinSeek,
    /// Raw data transfer of a page-in read.
    PageinTransfer,
    /// Injected disk errors at the switch edge: device time burned by
    /// failing attempts plus the retry backoff the recovery policy
    /// waited (chaos runs only — always zero on a fault-free run).
    FaultIoError,
    /// Injected disk latency spikes that inflated switch-edge request
    /// service times (chaos runs only).
    FaultDiskSlow,
    /// Critical-path time the recorded requests cannot account for.
    Other,
}

impl Cause {
    /// Every cause, in the (stable) schema order.
    pub const ALL: [Cause; 10] = [
        Cause::PageoutQueueWait,
        Cause::PageoutSeek,
        Cause::PageoutTransfer,
        Cause::InterleavedPageoutWait,
        Cause::PageinQueueWait,
        Cause::PageinSeek,
        Cause::PageinTransfer,
        Cause::FaultIoError,
        Cause::FaultDiskSlow,
        Cause::Other,
    ];

    /// The fault-free causes — the report schema before chaos existed.
    /// Reports emit these unconditionally and the fault causes only when
    /// nonzero, so fault-free explain JSON is byte-identical to the
    /// pre-chaos golden.
    pub const CORE: [Cause; 8] = [
        Cause::PageoutQueueWait,
        Cause::PageoutSeek,
        Cause::PageoutTransfer,
        Cause::InterleavedPageoutWait,
        Cause::PageinQueueWait,
        Cause::PageinSeek,
        Cause::PageinTransfer,
        Cause::Other,
    ];

    /// Whether this cause comes from the fault-injection taxonomy.
    pub fn is_fault(self) -> bool {
        matches!(self, Cause::FaultIoError | Cause::FaultDiskSlow)
    }

    /// The stable snake_case schema name.
    pub fn name(self) -> &'static str {
        match self {
            Cause::PageoutQueueWait => "pageout_queue_wait",
            Cause::PageoutSeek => "pageout_seek",
            Cause::PageoutTransfer => "pageout_transfer",
            Cause::InterleavedPageoutWait => "interleaved_pageout_wait",
            Cause::PageinQueueWait => "pagein_queue_wait",
            Cause::PageinSeek => "pagein_seek",
            Cause::PageinTransfer => "pagein_transfer",
            Cause::FaultIoError => "fault_io_error",
            Cause::FaultDiskSlow => "fault_disk_slow",
            Cause::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Cause::PageoutQueueWait => 0,
            Cause::PageoutSeek => 1,
            Cause::PageoutTransfer => 2,
            Cause::InterleavedPageoutWait => 3,
            Cause::PageinQueueWait => 4,
            Cause::PageinSeek => 5,
            Cause::PageinTransfer => 6,
            Cause::FaultIoError => 7,
            Cause::FaultDiskSlow => 8,
            Cause::Other => 9,
        }
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Microseconds attributed to each [`Cause`], iterated in schema order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CauseBuckets {
    us: [u64; 10],
}

impl CauseBuckets {
    /// All-zero buckets.
    pub fn new() -> Self {
        CauseBuckets::default()
    }

    /// Add `us` microseconds to `cause`.
    pub fn add(&mut self, cause: Cause, us: u64) {
        self.us[cause.index()] += us;
    }

    /// Microseconds currently attributed to `cause`.
    pub fn get(&self, cause: Cause) -> u64 {
        self.us[cause.index()]
    }

    /// Sum over every bucket; equals the switch latency for per-switch
    /// buckets (asserted by the explain golden test).
    pub fn total_us(&self) -> u64 {
        self.us.iter().sum()
    }

    /// Move up to `us` microseconds from `from` to `to`, clamped to what
    /// `from` actually holds so the bucket total is preserved exactly.
    /// Returns the amount moved.
    pub fn reassign(&mut self, from: Cause, to: Cause, us: u64) -> u64 {
        let moved = us.min(self.us[from.index()]);
        self.us[from.index()] -= moved;
        self.us[to.index()] += moved;
        moved
    }

    /// Fold another set of buckets into this one.
    pub fn merge(&mut self, other: &CauseBuckets) {
        for (a, b) in self.us.iter_mut().zip(other.us.iter()) {
            *a += b;
        }
    }

    /// `(cause, us)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (Cause, u64)> + '_ {
        Cause::ALL.iter().map(move |&c| (c, self.us[c.index()]))
    }

    /// The cause holding the most time (first in schema order on ties),
    /// or `None` when every bucket is zero.
    pub fn dominant(&self) -> Option<Cause> {
        let mut best: Option<(Cause, u64)> = None;
        for (c, us) in self.iter() {
            if us > 0 && best.map(|(_, b)| us > b).unwrap_or(true) {
                best = Some((c, us));
            }
        }
        best.map(|(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_in_order() {
        let names: Vec<_> = Cause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "pageout_queue_wait",
                "pageout_seek",
                "pageout_transfer",
                "interleaved_pageout_wait",
                "pagein_queue_wait",
                "pagein_seek",
                "pagein_transfer",
                "fault_io_error",
                "fault_disk_slow",
                "other",
            ]
        );
        let core: Vec<_> = Cause::CORE.iter().map(|c| c.name()).collect();
        assert!(!core.iter().any(|n| n.starts_with("fault_")));
        assert_eq!(core.len() + 2, Cause::ALL.len());
    }

    #[test]
    fn reassign_is_clamped_and_total_preserving() {
        let mut b = CauseBuckets::new();
        b.add(Cause::Other, 100);
        assert_eq!(b.reassign(Cause::Other, Cause::FaultIoError, 60), 60);
        assert_eq!(b.reassign(Cause::Other, Cause::FaultDiskSlow, 90), 40);
        assert_eq!(b.get(Cause::Other), 0);
        assert_eq!(b.get(Cause::FaultIoError), 60);
        assert_eq!(b.get(Cause::FaultDiskSlow), 40);
        assert_eq!(b.total_us(), 100);
    }

    #[test]
    fn buckets_sum_and_merge() {
        let mut a = CauseBuckets::new();
        a.add(Cause::PageinSeek, 5);
        a.add(Cause::Other, 7);
        let mut b = CauseBuckets::new();
        b.add(Cause::PageinSeek, 3);
        b.merge(&a);
        assert_eq!(b.get(Cause::PageinSeek), 8);
        assert_eq!(b.total_us(), 15);
        assert_eq!(b.dominant(), Some(Cause::PageinSeek));
        assert_eq!(CauseBuckets::new().dominant(), None);
    }
}
