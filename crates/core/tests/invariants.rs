//! Deterministic (seeded) mirror of the invariant-layer property tests.
//!
//! The proptest suite in `proptests.rs` explores the same state spaces
//! with shrinking; these tests drive the identical operation mix from
//! `SimRng` so the invariant layer stays exercised in builds where the
//! proptest dev-dependency is unavailable, and so a fixed seed pins one
//! known-good trajectory forever.

use agp_core::{PageRecorder, PagingEngine, PolicyConfig};
use agp_mem::{Kernel, PageNum, ProcId, VmParams};
use agp_sim::{SimRng, SimTime};

const NPROCS: u32 = 2;
const PAGES: u32 = 96;

fn kernel() -> Kernel {
    let mut k = Kernel::new(
        VmParams {
            total_frames: 128,
            wired_frames: 0,
            freepages_min: 4,
            freepages_high: 8,
            readahead: 16,
        },
        8192,
    );
    for p in 0..NPROCS {
        k.register_proc(ProcId(p), PAGES as usize);
    }
    k
}

#[test]
fn recorder_coherence_survives_seeded_flush_orders() {
    let mut rng = SimRng::new(0xC0_4E5E);
    for round in 0..64 {
        let mut r = PageRecorder::new();
        let n = rng.below(300);
        for i in 0..n {
            // Mostly-ascending with jumps: the flush-order shape real
            // evictions produce, plus occasional duplicates.
            r.record(PageNum(rng.below(128) as u32));
            r.check_coherence()
                .unwrap_or_else(|e| panic!("round {round} op {i}: {e}"));
            if rng.chance(0.02) {
                r.drain_pages();
                r.check_coherence()
                    .unwrap_or_else(|e| panic!("round {round} post-drain: {e}"));
            }
        }
        r.clear();
        assert!(r.check_coherence().is_ok());
    }
}

#[test]
fn engine_and_kernel_invariants_survive_seeded_schedules() {
    let mut rng = SimRng::new(0x0001_6A65_C4ED);
    for (pi, &policy) in PolicyConfig::paper_combinations().iter().enumerate() {
        let mut k = kernel();
        let mut e = PagingEngine::new(policy);
        e.set_running(Some(ProcId(0)));
        if policy.bg_write {
            e.start_bgwrite(ProcId(0));
        }
        let mut t = 0u64;
        for step in 0..400 {
            t += 7;
            let now = SimTime::from_us(t);
            match rng.below(6) {
                // Weighted like the proptest strategy: faults dominate.
                0..=2 => {
                    let pid = ProcId(rng.below(NPROCS as u64) as u32);
                    let pg = PageNum(rng.below(PAGES as u64) as u32);
                    let write = rng.chance(0.3);
                    match k.touch(pid, pg, write, now).unwrap() {
                        agp_mem::TouchOutcome::Hit => {}
                        _ => {
                            let plan = e.on_fault(&mut k, pid, pg, now).unwrap();
                            assert!(plan.mapped >= 1);
                        }
                    }
                }
                3 => {
                    let o = ProcId(rng.below(NPROCS as u64) as u32);
                    let i = ProcId(rng.below(NPROCS as u64) as u32);
                    if o != i {
                        e.stop_bgwrite();
                        e.adaptive_page_out(&mut k, o, i, None).unwrap();
                        k.quantum_started(i).unwrap();
                        e.adaptive_page_in(&mut k, i, now).unwrap();
                        e.start_bgwrite(i);
                    }
                }
                4 => {
                    let pid = ProcId(rng.below(NPROCS as u64) as u32);
                    e.adaptive_page_in(&mut k, pid, now).unwrap();
                }
                _ => {
                    e.bgwrite_tick(&mut k).unwrap();
                }
            }
            k.check_invariants()
                .unwrap_or_else(|er| panic!("policy {pi} step {step}: kernel: {er}"));
            e.check_invariants()
                .unwrap_or_else(|er| panic!("policy {pi} step {step}: engine: {er}"));
        }
    }
}
