//! Property tests for the adaptive-paging mechanisms: the run-length
//! recorder round-trips arbitrary flush orders, and the paging engine
//! preserves kernel invariants under arbitrary switch/fault schedules.

use agp_core::{PageRecorder, PagingEngine, PolicyConfig};
use agp_mem::{Kernel, PageNum, ProcId, VmParams};
use agp_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// drain_pages() returns exactly the recorded sequence, in order, for
    /// any flush order, and the run-length compression never exceeds one
    /// node per page.
    #[test]
    fn recorder_roundtrip(pages in prop::collection::vec(0u32..4096, 0..500)) {
        let mut r = PageRecorder::new();
        for &p in &pages {
            r.record(PageNum(p));
        }
        prop_assert_eq!(r.total_pages(), pages.len() as u64);
        prop_assert!(r.runs().len() <= pages.len().max(1));
        prop_assert_eq!(r.kernel_bytes(), r.runs().len() * 12);
        let drained: Vec<u32> = r.drain_pages().into_iter().map(|p| p.0).collect();
        prop_assert_eq!(drained, pages);
        prop_assert!(r.is_empty());
    }

    /// The structural coherence check accepts every reachable recorder
    /// state: after each record, after a drain, and after a clear. (The
    /// corruption-detection direction is covered by unit tests that
    /// forge states `record()` cannot produce.)
    #[test]
    fn recorder_coherence_is_invariant(
        pages in prop::collection::vec(0u32..128, 0..300),
        drain_at in prop::option::of(0usize..300),
    ) {
        let mut r = PageRecorder::new();
        for (i, &p) in pages.iter().enumerate() {
            r.record(PageNum(p));
            r.check_coherence().map_err(TestCaseError::fail)?;
            if Some(i) == drain_at {
                r.drain_pages();
                r.check_coherence().map_err(TestCaseError::fail)?;
            }
        }
        r.clear();
        prop_assert!(r.check_coherence().is_ok());
    }

    /// Sorted contiguous input compresses to exactly the number of
    /// maximal runs.
    #[test]
    fn recorder_compression_optimal(start in 0u32..1000, lens in prop::collection::vec(1u32..50, 1..20)) {
        let mut r = PageRecorder::new();
        let mut expected_runs = 0;
        let mut next = start;
        for len in &lens {
            // Leave a gap of 2 before each run so runs never merge.
            next += 2;
            expected_runs += 1;
            for i in 0..*len {
                r.record(PageNum(next + i));
            }
            next += len;
        }
        prop_assert_eq!(r.runs().len(), expected_runs);
    }
}

/// A random gang-schedule-shaped workload over the engine.
#[derive(Clone, Debug)]
enum Act {
    Fault { proc: u8, page: u8 },
    Switch { out: u8, inn: u8 },
    Replay { proc: u8 },
    BgTick,
}

fn act_strategy() -> impl Strategy<Value = Act> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(p, g)| Act::Fault { proc: p, page: g }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(o, i)| Act::Switch { out: o, inn: i }),
        1 => any::<u8>().prop_map(|p| Act::Replay { proc: p }),
        1 => Just(Act::BgTick),
    ]
}

const NPROCS: u32 = 2;
const PAGES: u32 = 96;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every policy, any interleaving of faults, switches, replays
    /// and bg ticks leaves the kernel consistent, and plans' page counts
    /// stay within physical bounds.
    #[test]
    fn engine_preserves_invariants(
        policy_idx in 0usize..6,
        acts in prop::collection::vec(act_strategy(), 1..200),
    ) {
        let policy = PolicyConfig::paper_combinations()[policy_idx];
        let mut k = Kernel::new(
            VmParams {
                total_frames: 128,
                wired_frames: 0,
                freepages_min: 4,
                freepages_high: 8,
                readahead: 16,
            },
            8192,
        );
        for p in 0..NPROCS {
            k.register_proc(ProcId(p), PAGES as usize);
        }
        let mut e = PagingEngine::new(policy);
        e.set_running(Some(ProcId(0)));
        if policy.bg_write {
            e.start_bgwrite(ProcId(0));
        }
        let mut t = 0u64;
        for act in acts {
            t += 7;
            let now = SimTime::from_us(t);
            match act {
                Act::Fault { proc, page } => {
                    let pid = ProcId(proc as u32 % NPROCS);
                    let pg = PageNum(page as u32 % PAGES);
                    // Touch; fault through the engine if non-resident.
                    match k.touch(pid, pg, page % 3 == 0, now).unwrap() {
                        agp_mem::TouchOutcome::Hit => {}
                        _ => {
                            let plan = e.on_fault(&mut k, pid, pg, now).unwrap();
                            prop_assert!(plan.mapped >= 1);
                            prop_assert!(
                                plan.mapped <= k.params().readahead,
                                "mapped {} beyond read-ahead window",
                                plan.mapped
                            );
                        }
                    }
                }
                Act::Switch { out, inn } => {
                    let o = ProcId(out as u32 % NPROCS);
                    let i = ProcId(inn as u32 % NPROCS);
                    if o != i {
                        e.stop_bgwrite();
                        let plan = e.adaptive_page_out(&mut k, o, i, None).unwrap();
                        prop_assert!(
                            plan.write_pages() <= PAGES as u64,
                            "cannot write more than the address space"
                        );
                        k.quantum_started(i).unwrap();
                        let rp = e.adaptive_page_in(&mut k, i, now).unwrap();
                        prop_assert!(rp.read_pages() <= PAGES as u64 * 2);
                        e.start_bgwrite(i);
                    }
                }
                Act::Replay { proc } => {
                    let pid = ProcId(proc as u32 % NPROCS);
                    let _ = e.adaptive_page_in(&mut k, pid, now).unwrap();
                }
                Act::BgTick => {
                    let _ = e.bgwrite_tick(&mut k).unwrap();
                }
            }
            k.check_invariants().map_err(TestCaseError::fail)?;
            e.check_invariants().map_err(TestCaseError::fail)?;
        }
        // Engine-level consistency: replayed ≤ recorded.
        let s = e.stats();
        prop_assert!(s.replayed_pages + s.replay_skipped <= s.recorded_pages + 1);
        // Selective policies never falsely evict outside the fallback.
        if policy.selective && !policy.adaptive_in {
            // (fallback may still fire in extreme schedules; just require
            // it stays far below total reclaim churn)
            prop_assert!(s.false_evictions <= s.reclaimed_pages);
        }
    }
}
