//! # agp-core — adaptive paging mechanisms (the paper's contribution)
//!
//! This crate implements the four mechanisms of *Adaptive Memory Paging
//! for Efficient Gang Scheduling of Parallel Applications* (Ryu,
//! Pachapurkar, Fong; IPPS 2004) against the simulated kernel in
//! `agp-mem`, plus the original Linux-2.2 clock/LRU baseline they are
//! compared with:
//!
//! | paper | here |
//! |---|---|
//! | selective page-out (§3.1, Fig. 2) | [`PagingEngine::free_pages`] with [`PolicyConfig::selective`] |
//! | aggressive page-out (§3.2, Fig. 3) | [`PagingEngine::adaptive_page_out`] |
//! | adaptive page-in (§3.3, Fig. 4) | [`recorder::PageRecorder`] + [`PagingEngine::adaptive_page_in`] |
//! | background writing (§3.4) | [`bgwrite`] via [`PagingEngine::start_bgwrite`] |
//! | original LRU/clock (§2) | the same engine with [`PolicyConfig::original`] |
//!
//! The public surface mirrors the paper's kernel API (§3.5):
//! `adaptive_page_out(out_pid, in_pid, wss)`, `adaptive_page_in(in_pid)`,
//! `start_bgwrite(pid)`, `stop_bgwrite()` — plus the demand-fault path
//! [`PagingEngine::on_fault`] that every policy shares.
//!
//! The engine returns **I/O plans** (extent lists); the cluster layer turns
//! them into disk requests and charges simulated time. Nothing in this
//! crate advances the clock itself, which keeps every mechanism unit
//! testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgwrite;
pub mod engine;
pub mod policy;
pub mod recorder;

pub use bgwrite::BgWriter;
pub use engine::{EngineStats, FaultPlan, IoPlan, PagingEngine};
pub use policy::PolicyConfig;
pub use recorder::{PageRecorder, PageRun};
