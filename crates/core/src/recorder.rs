//! The adaptive page-in recorder (paper §3.3, Fig. 4).
//!
//! As a descheduled process's pages are flushed, the kernel records them so
//! the whole set can be faulted back in — in bulk — when the process is
//! rescheduled. The paper compresses the record as *base address +
//! contiguous-page offset* runs ("our page recording module records just
//! the offset as the number of contiguous pages from a given page
//! address"), and this module reproduces exactly that run-length
//! structure, including its kernel-memory accounting.

use agp_mem::PageNum;
use serde::{Deserialize, Serialize};

/// One recorded run: `count` virtually contiguous pages starting at `base`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRun {
    /// First page of the run.
    pub base: PageNum,
    /// Number of contiguous pages (≥ 1).
    pub count: u32,
}

impl PageRun {
    /// Iterate the pages covered by the run.
    pub fn pages(&self) -> impl Iterator<Item = PageNum> {
        let b = self.base.0;
        (b..b + self.count).map(PageNum)
    }
}

/// Run-length record of one process's flushed pages, in flush order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRecorder {
    runs: Vec<PageRun>,
    total: u64,
}

impl PageRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one flushed page. Pages flushed in virtually ascending
    /// adjacency extend the current run ("append the addr to the list" /
    /// bump the offset, Fig. 4); anything else starts a new run.
    pub fn record(&mut self, page: PageNum) {
        self.total += 1;
        if let Some(last) = self.runs.last_mut() {
            if page.0 == last.base.0 + last.count {
                last.count += 1;
                return;
            }
        }
        self.runs.push(PageRun {
            base: page,
            count: 1,
        });
    }

    /// Record a batch in order.
    pub fn record_all(&mut self, pages: &[PageNum]) {
        for &p in pages {
            self.record(p);
        }
    }

    /// Number of pages recorded.
    pub fn total_pages(&self) -> u64 {
        self.total
    }

    /// Number of runs (each run costs one record of kernel memory).
    pub fn runs(&self) -> &[PageRun] {
        &self.runs
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Kernel memory the record would occupy, in bytes, assuming the
    /// paper's list node of {base, offset, next} (3 × 4 bytes on the
    /// i386 kernels of the day). The point of run-length coding is that
    /// this is far smaller than one node per page.
    pub fn kernel_bytes(&self) -> usize {
        self.runs.len() * 12
    }

    /// Drain the record, yielding every page in recorded order (the replay
    /// order of the induced faults in Fig. 4) and leaving the recorder
    /// empty.
    pub fn drain_pages(&mut self) -> Vec<PageNum> {
        let out: Vec<PageNum> = self.runs.iter().flat_map(|r| r.pages()).collect();
        self.runs.clear();
        self.total = 0;
        out
    }

    /// Clear without draining (e.g. when a process exits).
    pub fn clear(&mut self) {
        self.runs.clear();
        self.total = 0;
    }

    /// Structural coherence of the run-length list.
    ///
    /// The record is in *flush order*, not page order, and the same page may
    /// legitimately be recorded twice (bgwrite + re-eviction interplay), so
    /// sortedness and non-overlap are **not** invariants here. What must
    /// always hold:
    ///
    /// * every run covers at least one page and does not wrap the page-
    ///   number space;
    /// * `total` equals the sum of the run counts (the kernel-memory
    ///   accounting depends on it);
    /// * runs are maximal: a run is only started when the flushed page does
    ///   not extend the previous run, so no run begins exactly one past the
    ///   end of its predecessor.
    pub fn check_coherence(&self) -> Result<(), String> {
        let mut sum = 0u64;
        for (i, r) in self.runs.iter().enumerate() {
            if r.count == 0 {
                return Err(format!("run {i} at {:?} is empty", r.base));
            }
            if r.base.0.checked_add(r.count).is_none() {
                return Err(format!(
                    "run {i} at {:?} × {} wraps the page-number space",
                    r.base, r.count
                ));
            }
            sum += u64::from(r.count);
        }
        if sum != self.total {
            return Err(format!(
                "run-length total {} != recorded page count {sum}",
                self.total
            ));
        }
        for (i, w) in self.runs.windows(2).enumerate() {
            if w[1].base.0 == w[0].base.0 + w[0].count {
                return Err(format!(
                    "runs {i} and {} are forward-adjacent ({:?} × {} then {:?}); \
                     record() should have extended the first",
                    i + 1,
                    w[0].base,
                    w[0].count,
                    w[1].base
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pg(n: u32) -> PageNum {
        PageNum(n)
    }

    #[test]
    fn contiguous_pages_form_one_run() {
        let mut r = PageRecorder::new();
        for i in 0..100 {
            r.record(pg(i));
        }
        assert_eq!(r.runs().len(), 1);
        assert_eq!(
            r.runs()[0],
            PageRun {
                base: pg(0),
                count: 100
            }
        );
        assert_eq!(r.total_pages(), 100);
        assert_eq!(r.kernel_bytes(), 12, "100 pages cost one 12-byte node");
    }

    #[test]
    fn gaps_start_new_runs() {
        let mut r = PageRecorder::new();
        r.record_all(&[pg(5), pg(6), pg(10), pg(11), pg(12), pg(3)]);
        assert_eq!(
            r.runs(),
            &[
                PageRun {
                    base: pg(5),
                    count: 2
                },
                PageRun {
                    base: pg(10),
                    count: 3
                },
                PageRun {
                    base: pg(3),
                    count: 1
                },
            ]
        );
    }

    #[test]
    fn descending_adjacency_does_not_merge() {
        // The paper's structure only extends forward (base, offset++).
        let mut r = PageRecorder::new();
        r.record_all(&[pg(7), pg(6)]);
        assert_eq!(r.runs().len(), 2);
    }

    #[test]
    fn drain_replays_in_recorded_order() {
        let mut r = PageRecorder::new();
        r.record_all(&[pg(10), pg(11), pg(2), pg(3), pg(4)]);
        assert_eq!(r.drain_pages(), vec![pg(10), pg(11), pg(2), pg(3), pg(4)]);
        assert!(r.is_empty());
        assert_eq!(r.total_pages(), 0);
    }

    #[test]
    fn duplicate_page_recorded_twice() {
        // A page can be flushed, faulted back by nothing (process is
        // stopped) — but with bgwrite + re-eviction interplay the same page
        // number may legitimately appear again; the recorder is a log, not
        // a set.
        let mut r = PageRecorder::new();
        r.record_all(&[pg(1), pg(1)]);
        assert_eq!(r.total_pages(), 2);
        assert_eq!(r.runs().len(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut r = PageRecorder::new();
        r.record_all(&[pg(1), pg(2)]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.kernel_bytes(), 0);
    }

    #[test]
    fn coherence_holds_under_recording() {
        let mut r = PageRecorder::new();
        assert!(r.check_coherence().is_ok(), "empty recorder is coherent");
        r.record_all(&[pg(5), pg(6), pg(10), pg(1), pg(1), pg(2)]);
        assert!(r.check_coherence().is_ok());
        r.drain_pages();
        assert!(r.check_coherence().is_ok());
    }

    #[test]
    fn coherence_catches_corruption() {
        // Hand-built corrupt states (fields are private, so go through a
        // serde round-trip surrogate: construct via record then mutate).
        let mut r = PageRecorder::new();
        r.record_all(&[pg(1), pg(2)]);
        r.total = 99;
        assert!(r.check_coherence().unwrap_err().contains("total"));

        let mut r = PageRecorder::new();
        r.record(pg(3));
        r.runs[0].count = 0;
        r.total = 0;
        assert!(r.check_coherence().unwrap_err().contains("empty"));

        let mut r = PageRecorder::new();
        r.record_all(&[pg(1), pg(5)]);
        // Forge forward-adjacency: second run starts right after the first.
        r.runs[1].base = pg(2);
        assert!(r
            .check_coherence()
            .unwrap_err()
            .contains("forward-adjacent"));

        let mut r = PageRecorder::new();
        r.record(pg(u32::MAX));
        r.runs[0].count = 2;
        r.total = 2;
        assert!(r.check_coherence().unwrap_err().contains("wraps"));
    }

    #[test]
    fn run_page_iteration() {
        let run = PageRun {
            base: pg(4),
            count: 3,
        };
        assert_eq!(run.pages().collect::<Vec<_>>(), vec![pg(4), pg(5), pg(6)]);
    }
}
