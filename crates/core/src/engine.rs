//! The paging engine: demand-fault handling plus the paper's switch-time
//! API, parameterized by a [`PolicyConfig`].
//!
//! One engine instance exists per node (it plays the role of the node's
//! modified `vmscan.c` + the `/dev/kmem` interface of paper §3.5). It owns
//! the per-process page-in recorders and the background writer, and it is
//! the only component that decides *which* pages are evicted — `agp-mem`
//! supplies mechanisms, the cluster layer supplies time.

use crate::bgwrite::BgWriter;
use crate::policy::PolicyConfig;
use crate::recorder::PageRecorder;
use agp_disk::{extents_from_blocks, Extent};
use agp_mem::{Kernel, MapInOutcome, MemError, PageNum, PageState, ProcId};
use agp_obs::{ObsEvent, ObsLink};
use agp_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Disk work produced by a switch-time operation: writes are submitted
/// before reads (and the node's FIFO disk preserves that order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoPlan {
    /// Page-out extents.
    pub writes: Vec<Extent>,
    /// Page-in extents.
    pub reads: Vec<Extent>,
}

impl IoPlan {
    /// Whether the plan moves no data.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty() && self.reads.is_empty()
    }

    /// Total pages written.
    pub fn write_pages(&self) -> u64 {
        self.writes.iter().map(|e| e.len).sum()
    }

    /// Total pages read.
    pub fn read_pages(&self) -> u64 {
        self.reads.iter().map(|e| e.len).sum()
    }
}

/// Disk work produced by one demand fault: any synchronous reclaim writes,
/// then the fault + read-ahead reads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Reclaim write-back extents (empty unless memory was below
    /// `freepages.min`).
    pub writes: Vec<Extent>,
    /// Swap-in extents: the faulted page plus read-ahead neighbors.
    pub reads: Vec<Extent>,
    /// Pages mapped in by this fault (1 + read-ahead count, or 1 for a
    /// zero fill).
    pub mapped: usize,
}

impl FaultPlan {
    /// Whether the fault required no disk traffic (pure zero fill with no
    /// reclaim).
    pub fn is_io_free(&self) -> bool {
        self.writes.is_empty() && self.reads.is_empty()
    }
}

/// Cumulative engine statistics; the experiment layer aggregates these
/// across nodes.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Faults that required a swap-in read.
    pub major_faults: u64,
    /// Faults satisfied by zero-filling (first touch).
    pub minor_faults: u64,
    /// Pages brought in by read-ahead (excluding the faulted page).
    pub readahead_pages: u64,
    /// Times the reclaim path ran because free memory fell below
    /// `freepages.min`.
    pub reclaim_calls: u64,
    /// Pages evicted on the demand-reclaim path.
    pub reclaimed_pages: u64,
    /// Demand-reclaim evictions that hit the *currently running* process —
    /// the paper's "false evictions" (§3.1). Selective page-out exists to
    /// drive this to zero.
    pub false_evictions: u64,
    /// Pages evicted by aggressive page-out at switches.
    pub aggressive_evictions: u64,
    /// Pages recorded for adaptive page-in.
    pub recorded_pages: u64,
    /// Pages brought back by adaptive page-in replay.
    pub replayed_pages: u64,
    /// Recorded pages skipped at replay (already resident or frame budget
    /// exhausted).
    pub replay_skipped: u64,
}

/// Cached oldest-first victim ordering for the outgoing process.
///
/// Under the Linux-2.2 watermark spacing, reclaim runs every few dozen
/// faults; re-sorting the outgoing process's resident set each time would
/// be quadratic. The process is stopped, so its page ages are frozen —
/// one ordering computed at the switch stays valid for the whole quantum
/// (entries are re-checked for residency as they are consumed).
#[derive(Clone, Debug, Default)]
struct SelectiveCache {
    pid: Option<ProcId>,
    pages: Vec<PageNum>,
    cursor: usize,
}

/// Cached global-LRU victim stream for the original policy.
///
/// The baseline replacement is the global LRU the paper reasons with in
/// §3.1 ("A's lingering pages will be swapped out first, because they are
/// older than B's pages"): victims are the globally oldest resident pages
/// regardless of owner. A snapshot of `(last_ref, pid, page)` sorted
/// oldest-first is consumed incrementally; entries whose page has been
/// evicted or re-referenced since the snapshot are skipped (their age
/// changed), and the snapshot is rebuilt when it runs dry. This keeps the
/// amortized cost near O(log n) per eviction while selecting exactly the
/// LRU victim.
#[derive(Clone, Debug, Default)]
struct GlobalLruCache {
    entries: Vec<(SimTime, ProcId, PageNum)>,
    cursor: usize,
}

impl GlobalLruCache {
    fn rebuild(&mut self, kern: &Kernel) {
        self.entries.clear();
        self.cursor = 0;
        let pids: Vec<ProcId> = kern.procs_rss().map(|(p, _)| p).collect();
        for pid in pids {
            if let Ok(pm) = kern.proc(pid) {
                for (page, r) in pm.pt.iter_resident() {
                    self.entries.push((r.last_ref, pid, page));
                }
            }
        }
        self.entries.sort_unstable();
    }

    /// Pop up to `max` currently valid victims, grouped per process in
    /// encounter order (grouping lets the kernel batch swap allocation).
    fn pop_victims(&mut self, kern: &Kernel, max: usize) -> Vec<(ProcId, Vec<PageNum>)> {
        let mut out: Vec<(ProcId, Vec<PageNum>)> = Vec::new();
        let mut taken = 0;
        let mut rebuilt = false;
        while taken < max {
            if self.cursor >= self.entries.len() {
                if rebuilt {
                    break; // genuinely nothing evictable
                }
                self.rebuild(kern);
                rebuilt = true;
                if self.entries.is_empty() {
                    break;
                }
                continue;
            }
            let (t, pid, page) = self.entries[self.cursor];
            self.cursor += 1;
            let Ok(pm) = kern.proc(pid) else { continue };
            match pm.pt.state(page) {
                agp_mem::PageState::Resident(r) if r.last_ref == t => {
                    match out.last_mut() {
                        Some((p, v)) if *p == pid => v.push(page),
                        _ => out.push((pid, vec![page])),
                    }
                    taken += 1;
                }
                _ => {} // stale: evicted or re-referenced since snapshot
            }
        }
        out
    }
}

/// Per-node paging engine.
#[derive(Clone, Debug)]
pub struct PagingEngine {
    cfg: PolicyConfig,
    /// Process most recently descheduled on this node: the preferred
    /// reclaim victim while `selective` is on.
    outgoing: Option<ProcId>,
    /// Process currently scheduled on this node (evictions of anyone else
    /// are recorded when `adaptive_in` is on).
    running: Option<ProcId>,
    recorders: BTreeMap<ProcId, PageRecorder>,
    selective_cache: SelectiveCache,
    lru_cache: GlobalLruCache,
    bg: BgWriter,
    stats: EngineStats,
    obs: ObsLink,
}

impl PagingEngine {
    /// An engine enforcing `cfg`.
    pub fn new(cfg: PolicyConfig) -> Self {
        PagingEngine {
            cfg,
            outgoing: None,
            running: None,
            recorders: BTreeMap::new(),
            selective_cache: SelectiveCache::default(),
            lru_cache: GlobalLruCache::default(),
            bg: BgWriter::default(),
            stats: EngineStats::default(),
            obs: ObsLink::disabled(),
        }
    }

    /// Attach an observation link (fault-service, reclaim, policy and
    /// background-writer events).
    pub fn set_observer(&mut self, obs: ObsLink) {
        self.obs = obs;
    }

    /// Active policy.
    pub fn cfg(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// Enable or disable adaptive page-in at runtime (graceful
    /// degradation: the cluster simulator downgrades a node to demand
    /// paging after repeated disk errors, because replaying access
    /// sequences into a flaky device multiplies the failed I/O).
    ///
    /// Disabling drops all page-in recorders — a half-recorded access
    /// sequence must not be replayed later, and
    /// [`PagingEngine::check_invariants`] treats live recorders with
    /// the policy off as a violation.
    pub fn set_adaptive_in(&mut self, on: bool) {
        self.cfg.adaptive_in = on;
        if !on {
            self.recorders.clear();
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Process currently marked as running on this node.
    pub fn running(&self) -> Option<ProcId> {
        self.running
    }

    /// Process currently marked as outgoing (descheduled last).
    pub fn outgoing(&self) -> Option<ProcId> {
        self.outgoing
    }

    /// Mark `pid` as the scheduled process without a full switch (job
    /// start, or a job running alone after its partner finished).
    pub fn set_running(&mut self, pid: Option<ProcId>) {
        self.running = pid;
        if pid.is_some() && self.outgoing == pid {
            self.outgoing = None;
        }
    }

    /// Forget a process entirely (job completion).
    pub fn forget_proc(&mut self, pid: ProcId) {
        self.recorders.remove(&pid);
        if self.selective_cache.pid == Some(pid) {
            self.selective_cache = SelectiveCache::default();
        }
        if self.outgoing == Some(pid) {
            self.outgoing = None;
        }
        if self.running == Some(pid) {
            self.running = None;
        }
        if self.bg.active() == Some(pid) {
            self.bg.stop();
        }
    }

    /// Bytes of kernel memory currently held by page-in records (the
    /// paper's run-length compression keeps this small; exposed for
    /// metrics).
    pub fn recorder_bytes(&self) -> usize {
        self.recorders.values().map(|r| r.kernel_bytes()).sum()
    }

    // ------------------------------------------------------------------
    // Demand fault path
    // ------------------------------------------------------------------

    /// Handle a page fault of the scheduled process: run watermark reclaim
    /// if needed, map the page, and apply swap read-ahead.
    ///
    /// Returns the disk work; the caller charges time by submitting writes
    /// then reads to the node's FIFO disk and blocking the process until
    /// the last read completes.
    pub fn on_fault(
        &mut self,
        kern: &mut Kernel,
        pid: ProcId,
        page: PageNum,
        now: SimTime,
    ) -> Result<FaultPlan, MemError> {
        let _perf = agp_perf::scope(agp_perf::Span::MemFault);
        let mut plan = FaultPlan::default();

        // Watermark model: reclaim to freepages.high once free dips below
        // freepages.min (paper §2).
        let target = kern.reclaim_target();
        if target > 0 {
            plan.writes = self.free_pages(kern, target, now)?;
        }

        match kern.map_in(pid, page, now)? {
            MapInOutcome::Zeroed => {
                self.stats.minor_faults += 1;
                plan.mapped = 1;
            }
            MapInOutcome::Read { block } => {
                self.stats.major_faults += 1;
                let mut blocks = vec![block];
                // Read-ahead: chase swap-contiguous neighbors, limited by
                // the configured window and by frames above freepages.min
                // (read-ahead must never itself force reclaim).
                let window = kern.params().readahead.saturating_sub(1);
                let budget = kern
                    .free_frames()
                    .saturating_sub(kern.params().freepages_min)
                    .min(window);
                let chain = kern.swap_chain_after(pid, block, budget);
                for (p2, b2) in chain {
                    match kern.map_in(pid, p2, now)? {
                        MapInOutcome::Read { block: rb } => {
                            debug_assert_eq!(rb, b2);
                            blocks.push(rb);
                            self.stats.readahead_pages += 1;
                            self.obs.emit(now, || ObsEvent::ReadaheadHit {
                                pid: pid.0,
                                page: p2.0,
                            });
                        }
                        // swap_chain_after only returns Swapped pages, which
                        // map_in always reads from disk.
                        // agp-lint: allow(panic-site): chain pages are swapped
                        MapInOutcome::Zeroed => unreachable!("chain pages are swapped"),
                    }
                }
                plan.mapped = blocks.len();
                plan.reads = extents_from_blocks(&mut blocks);
                self.obs.emit(now, || ObsEvent::MajorFault {
                    pid: pid.0,
                    page: page.0,
                    readahead: (plan.mapped - 1) as u32,
                    write_pages: plan.writes.iter().map(|e| e.len).sum(),
                    read_pages: plan.reads.iter().map(|e| e.len).sum(),
                });
            }
        }
        Ok(plan)
    }

    // ------------------------------------------------------------------
    // Reclaim (`try_to_free_pages`)
    // ------------------------------------------------------------------

    /// Free at least `target` frames (stopping early only if the whole
    /// system runs out of evictable pages). Returns the write-back
    /// extents.
    ///
    /// With `selective` enabled this is the paper's Fig. 2 algorithm: the
    /// outgoing process's pages are reclaimed oldest-first, and only when
    /// it has nothing resident left does the default clock scan run.
    /// Without it, it reproduces the Linux 2.2 `swap_out()` behavior: scan
    /// the largest-RSS process's page table, clearing reference bits and
    /// evicting unreferenced pages.
    pub fn free_pages(
        &mut self,
        kern: &mut Kernel,
        target: usize,
        now: SimTime,
    ) -> Result<Vec<Extent>, MemError> {
        self.free_pages_inner(kern, target, now, self.cfg.selective)
    }

    /// Reclaim with an explicit choice of whether the outgoing process is
    /// victimized first. The demand path follows `cfg.selective`; the
    /// adaptive page-in replay always passes `true` (paper §3.3: the
    /// induced faults "will not page out any useful pages because only
    /// the pages of the outgoing process will be swapped out").
    fn free_pages_inner(
        &mut self,
        kern: &mut Kernel,
        target: usize,
        now: SimTime,
        selective_first: bool,
    ) -> Result<Vec<Extent>, MemError> {
        let _perf = agp_perf::scope(agp_perf::Span::MemReclaim);
        self.stats.reclaim_calls += 1;
        let mut writes: Vec<Extent> = Vec::new();
        let mut freed = 0usize;

        // Phase 1: selective page-out of the outgoing process, consuming
        // the per-switch oldest-first cache (rebuilt when the outgoing
        // process changes).
        if selective_first && freed < target {
            if let Some(out) = self.outgoing {
                if kern.proc(out).is_ok() {
                    if self.selective_cache.pid != Some(out) {
                        self.selective_cache = SelectiveCache {
                            pid: Some(out),
                            pages: kern.resident_oldest_first(out)?,
                            cursor: 0,
                        };
                    }
                    let mut cands = Vec::new();
                    {
                        let cache = &mut self.selective_cache;
                        while cands.len() < target - freed && cache.cursor < cache.pages.len() {
                            let p = cache.pages[cache.cursor];
                            cache.cursor += 1;
                            if kern.proc(out)?.pt.state(p).is_resident() {
                                cands.push(p);
                            }
                        }
                    }
                    if !cands.is_empty() {
                        freed += self.evict_recorded(kern, out, &cands, &mut writes)?;
                    }
                }
            }
        }

        // Phase 2: the default replacement, selected by the baseline kind.
        match self.cfg.baseline {
            crate::policy::BaselineKind::Clock => {
                // The Linux 2.2 shape: rounds over the processes in
                // decreasing-RSS order, sweeping each table with the clock
                // (round 1 mostly clears reference bits, later rounds
                // evict). The per-process hand persists across calls, so
                // scans are incremental. This baseline exhibits the
                // paper's §3.1 pathology: a descheduled job's pages and a
                // rescheduled job's *lingering* pages are evicted on age
                // grounds even when about to be used.
                let mut rounds = 0;
                while freed < target && rounds < 8 {
                    rounds += 1;
                    let mut progressed = false;
                    let mut procs: Vec<(usize, ProcId)> =
                        kern.procs_rss().map(|(p, r)| (r, p)).collect();
                    procs.sort_unstable_by(|a, b| b.cmp(a));
                    for (rss, pid) in procs {
                        if freed >= target {
                            break;
                        }
                        if rss == 0 {
                            continue;
                        }
                        let len = kern.proc(pid)?.pt.len();
                        let max_scan = (len / 4).max(512).min(len);
                        let victims = kern.clock_sweep_proc(pid, max_scan, target - freed)?;
                        if !victims.is_empty() {
                            freed += self.evict_recorded(kern, pid, &victims, &mut writes)?;
                            progressed = true;
                        }
                    }
                    if !progressed && rounds >= 4 {
                        // Everything referenced: fall back to reaping the
                        // oldest pages of the largest process so the
                        // fault can make progress.
                        if let Some(pid) = kern.largest_rss_proc(None) {
                            let mut cands = kern.resident_oldest_first(pid)?;
                            cands.truncate(target - freed);
                            freed += self.evict_recorded(kern, pid, &cands, &mut writes)?;
                        }
                        break;
                    }
                }
            }
            crate::policy::BaselineKind::GlobalLru => {
                // Idealized exact LRU: evict the globally oldest resident
                // pages regardless of owner — the abstraction §3.1
                // reasons with ("A's lingering pages … are older than B's
                // pages"). See [`GlobalLruCache`].
                while freed < target {
                    let groups = self.lru_cache.pop_victims(kern, target - freed);
                    if groups.is_empty() {
                        break; // nothing evictable at all
                    }
                    for (pid, pages) in groups {
                        freed += self.evict_recorded(kern, pid, &pages, &mut writes)?;
                    }
                }
            }
        }
        self.stats.reclaimed_pages += freed as u64;
        self.obs.emit(now, || ObsEvent::Reclaim {
            target: target as u64,
            freed: freed as u64,
            write_pages: writes.iter().map(|e| e.len).sum(),
        });
        Ok(writes)
    }

    /// Evict `pages` of `pid`, recording them for adaptive page-in when
    /// appropriate and counting false evictions. Returns how many frames
    /// were actually freed.
    fn evict_recorded(
        &mut self,
        kern: &mut Kernel,
        pid: ProcId,
        pages: &[PageNum],
        writes: &mut Vec<Extent>,
    ) -> Result<usize, MemError> {
        let mut log = Vec::new();
        let ext = kern.evict_batch(pid, pages, &mut log)?;
        writes.extend(ext);
        let false_eviction = Some(pid) == self.running;
        let recorded = !false_eviction && self.cfg.adaptive_in;
        if false_eviction {
            self.stats.false_evictions += log.len() as u64;
        } else if recorded {
            let rec = self.recorders.entry(pid).or_default();
            rec.record_all(&log);
            self.stats.recorded_pages += log.len() as u64;
        }
        if self.obs.enabled() {
            for &p in &log {
                self.obs.emit_clock(|| ObsEvent::Evict {
                    pid: pid.0,
                    page: p.0,
                    false_eviction,
                    recorded,
                });
            }
        }
        Ok(log.len())
    }

    // ------------------------------------------------------------------
    // Switch-time API (paper §3.5)
    // ------------------------------------------------------------------

    /// `adaptive_page_out(out_pid, in_pid, wss)`: called by the gang
    /// scheduler at a job switch, after stopping `out` and before
    /// continuing `inn`.
    ///
    /// Always updates the switch context (which is what arms selective
    /// page-out for the coming quantum). With `aggressive` enabled it also
    /// evicts `out` oldest-first until free frames cover the incoming
    /// working-set estimate (paper Fig. 3), so the subsequent fault-in
    /// storm triggers no interleaved page-outs.
    pub fn adaptive_page_out(
        &mut self,
        kern: &mut Kernel,
        out: ProcId,
        inn: ProcId,
        wss_hint: Option<usize>,
    ) -> Result<IoPlan, MemError> {
        let _perf = agp_perf::scope(agp_perf::Span::MemPageOut);
        self.outgoing = Some(out);
        self.running = Some(inn);
        self.selective_cache = SelectiveCache::default();
        let mut plan = IoPlan::default();
        if !self.cfg.aggressive {
            return Ok(plan);
        }
        let wss = match wss_hint {
            Some(w) => w.min(kern.params().usable_frames()),
            None => kern.wss_estimate(inn)?,
        };
        let want_free = (wss + kern.params().freepages_high).min(kern.params().usable_frames());
        let to_free = want_free.saturating_sub(kern.free_frames());
        if to_free == 0 {
            return Ok(plan);
        }
        let mut cands = kern.resident_oldest_first(out)?;
        cands.truncate(to_free);
        let n = self.evict_recorded(kern, out, &cands, &mut plan.writes)?;
        self.stats.aggressive_evictions += n as u64;
        if n > 0 {
            self.obs.emit_clock(|| ObsEvent::AggressiveOut {
                pid: out.0,
                pages: n as u64,
            });
        }
        // evict_recorded counted these toward reclaimed_pages only via
        // free_pages; keep the aggregate honest here too.
        self.stats.reclaimed_pages += n as u64;
        Ok(plan)
    }

    /// `adaptive_page_in(in_pid)`: replay the recorded working set of the
    /// incoming process as bulk block reads (paper Fig. 4's induced
    /// faults).
    ///
    /// Each induced fault behaves like a real one: when free memory dips
    /// below `freepages.min`, the reclaim path runs (selective page-out if
    /// armed, the clock otherwise) before more pages are mapped — so with
    /// `ai` alone the replay itself pages the outgoing process out, page
    /// by batch, exactly as the demand path would have. Pages recorded but
    /// already resident again are skipped; replay stops early only if
    /// reclaim cannot free a single frame.
    pub fn adaptive_page_in(
        &mut self,
        kern: &mut Kernel,
        inn: ProcId,
        now: SimTime,
    ) -> Result<IoPlan, MemError> {
        let _perf = agp_perf::scope(agp_perf::Span::MemPageIn);
        let mut plan = IoPlan::default();
        if !self.cfg.adaptive_in {
            return Ok(plan);
        }
        let Some(rec) = self.recorders.get_mut(&inn) else {
            return Ok(plan);
        };
        let pages = rec.drain_pages();
        if pages.is_empty() {
            return Ok(plan);
        }
        let replayed_before = self.stats.replayed_pages;
        let skipped_before = self.stats.replay_skipped;
        // The record's size is known up front — that is the "adaptive"
        // part — so room for the whole set is made in one aggregate
        // reclaim instead of per induced fault. (Replaying with per-fault
        // reclaim would let the clock churn pages replayed seconds
        // earlier, destroying exactly the benefit the paper measures for
        // `ai` alone.)
        let needed: usize = pages
            .iter()
            .filter(|&&p| {
                kern.proc(inn)
                    .map(|pm| !pm.pt.state(p).is_resident())
                    .unwrap_or(false)
            })
            .count()
            .min(kern.params().usable_frames());
        // Leave freepages.high of slack above the set being replayed, as
        // aggressive page-out does: ending the replay exactly at the
        // reclaim trigger would hand the clock the incoming process as
        // its next victim on the first post-replay allocation.
        let want_free = (needed + kern.params().freepages_high).min(kern.params().usable_frames());
        let shortfall = want_free.saturating_sub(kern.free_frames());
        if shortfall > 0 {
            plan.writes = self.free_pages_inner(kern, shortfall, now, true)?;
        }
        let mut blocks = Vec::new();
        for p in pages {
            let state = *kern.proc(inn)?.pt.state(p);
            if matches!(state, PageState::Resident(_)) {
                // Already back (e.g. duplicate record); nothing to do.
                self.stats.replay_skipped += 1;
                continue;
            }
            if kern.free_frames() <= kern.params().freepages_high {
                // Reclaim could not make full room (everything else is
                // hot); the rest of the set comes back via demand faults.
                self.stats.replay_skipped += 1;
                continue;
            }
            match kern.map_in(inn, p, now)? {
                MapInOutcome::Read { block } => blocks.push(block),
                MapInOutcome::Zeroed => {}
            }
            self.stats.replayed_pages += 1;
            if self.obs.enabled() {
                self.obs.emit(now, || ObsEvent::ReplayPage {
                    pid: inn.0,
                    page: p.0,
                });
            }
        }
        plan.reads = extents_from_blocks(&mut blocks);
        self.obs.emit(now, || ObsEvent::Replay {
            pid: inn.0,
            pages: self.stats.replayed_pages - replayed_before,
            skipped: self.stats.replay_skipped - skipped_before,
        });
        Ok(plan)
    }

    /// `start_bgwrite(inpid)` (paper §3.5).
    pub fn start_bgwrite(&mut self, pid: ProcId) {
        if self.cfg.bg_write {
            self.bg.start(pid);
        }
    }

    /// `stop_bgwrite()` — invoked when the actual job switch begins.
    pub fn stop_bgwrite(&mut self) {
        self.bg.stop();
    }

    /// Whether background writing is currently active.
    pub fn bgwrite_active(&self) -> bool {
        self.bg.active().is_some()
    }

    /// One background-writer burst; the cluster calls this only when the
    /// node's disk is idle (the "lower priority" of paper §3.4) and
    /// schedules the next tick. Returns write extents (empty = nothing to
    /// do).
    pub fn bgwrite_tick(&mut self, kern: &mut Kernel) -> Result<Vec<Extent>, MemError> {
        let _perf = agp_perf::scope(agp_perf::Span::MemBgTick);
        let ext = self.bg.tick(kern)?;
        if !ext.is_empty() {
            let pid = self.bg.active().map_or(0, |p| p.0);
            self.obs.emit_clock(|| ObsEvent::BgTick {
                pid,
                pages: ext.iter().map(|e| e.len).sum(),
            });
        }
        Ok(ext)
    }

    /// Pages cleaned by the background writer so far.
    pub fn bg_cleaned_pages(&self) -> u64 {
        self.bg.stats().cleaned_pages
    }

    /// Engine-level structural invariants, paired with
    /// [`Kernel::check_invariants`](agp_mem::Kernel::check_invariants) by the
    /// cluster's `--check-invariants` sweep: every adaptive page-in record
    /// must be a coherent run-length list
    /// ([`PageRecorder::check_coherence`]), and records only exist at all
    /// when the `ai` mechanism is enabled.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.cfg.adaptive_in && self.recorders.values().any(|r| !r.is_empty()) {
            return Err("page-in records exist but adaptive_in is disabled".to_string());
        }
        for (pid, rec) in &self.recorders {
            rec.check_coherence()
                .map_err(|e| format!("page-in record of {pid}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agp_mem::VmParams;

    const NOW: SimTime = SimTime(1_000_000);

    fn kernel(frames: usize) -> Kernel {
        Kernel::new(
            VmParams {
                total_frames: frames,
                wired_frames: 0,
                freepages_min: 8,
                freepages_high: 16,
                readahead: 16,
            },
            1 << 20,
        )
    }

    /// Map `n` pages of `pid` resident and dirty, with ages increasing by
    /// page number starting at `t0`.
    fn fill_dirty(k: &mut Kernel, pid: ProcId, n: u32, t0: u64) {
        for p in 0..n {
            let t = SimTime::from_us(t0 + p as u64);
            k.map_in(pid, PageNum(p), t).unwrap();
            k.touch(pid, PageNum(p), true, t).unwrap();
        }
    }

    #[test]
    fn zero_fill_fault_without_pressure_is_io_free() {
        let mut k = kernel(128);
        k.register_proc(ProcId(1), 16);
        let mut e = PagingEngine::new(PolicyConfig::original());
        let plan = e.on_fault(&mut k, ProcId(1), PageNum(0), NOW).unwrap();
        assert!(plan.is_io_free());
        assert_eq!(plan.mapped, 1);
        assert_eq!(e.stats().minor_faults, 1);
    }

    #[test]
    fn fault_under_pressure_reclaims_to_high_watermark() {
        let mut k = kernel(128); // min 8, high 16
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 128);
        k.register_proc(b, 16);
        fill_dirty(&mut k, a, 121, 0); // free = 7 < min
        assert!(k.below_min());
        let mut e = PagingEngine::new(PolicyConfig::original());
        e.set_running(Some(b));
        let plan = e.on_fault(&mut k, b, PageNum(0), NOW).unwrap();
        assert!(!plan.writes.is_empty(), "dirty evictions require writes");
        assert!(
            k.free_frames() >= 15,
            "reclaimed to ~high minus the mapped page"
        );
        assert_eq!(e.stats().reclaim_calls, 1);
        k.check_invariants().unwrap();
    }

    #[test]
    fn original_policy_falsely_evicts_running_procs_old_pages() {
        // The false-eviction scenario of §3.1: A has old residual pages, B
        // was just descheduled with fresher pages. Under the original
        // clock, A's own stale pages are evicted while A runs.
        let mut k = kernel(256);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 200);
        k.register_proc(b, 100);
        // A's pages are old and unreferenced (bits cleared by an earlier
        // sweep).
        fill_dirty(&mut k, a, 150, 0);
        let _ = k.clock_sweep_proc(a, 200, 0); // clear ref bits only
                                               // Give A one more sweep so bits are all cleared.
        let _ = k.clock_sweep_proc(a, 200, 0);
        // B fills the rest: 150 + 98 leaves free = 8... make it dip below min.
        fill_dirty(&mut k, b, 99, 1_000_000); // free = 256-249 = 7 < 8
        let mut e = PagingEngine::new(PolicyConfig::original());
        e.outgoing = Some(b);
        e.set_running(Some(a));
        // A faults for a new page.
        e.on_fault(&mut k, a, PageNum(199), NOW).unwrap();
        assert!(
            e.stats().false_evictions > 0,
            "clock evicts A's unreferenced residual pages: A has the larger RSS \
             and its bits are clear, B's are still set"
        );
    }

    #[test]
    fn selective_policy_prevents_false_eviction() {
        let mut k = kernel(256);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 200);
        k.register_proc(b, 100);
        fill_dirty(&mut k, a, 150, 0);
        let _ = k.clock_sweep_proc(a, 200, 0);
        let _ = k.clock_sweep_proc(a, 200, 0);
        fill_dirty(&mut k, b, 99, 1_000_000);
        let mut e = PagingEngine::new(PolicyConfig::so());
        e.adaptive_page_out(&mut k, b, a, None).unwrap(); // sets ctx: out=b, running=a
        e.on_fault(&mut k, a, PageNum(199), NOW).unwrap();
        assert_eq!(
            e.stats().false_evictions,
            0,
            "selective page-out victimizes only the outgoing process"
        );
        k.check_invariants().unwrap();
    }

    #[test]
    fn selective_falls_back_when_outgoing_exhausted() {
        let mut k = kernel(128);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 128);
        k.register_proc(b, 8);
        fill_dirty(&mut k, a, 118, 0);
        fill_dirty(&mut k, b, 3, 500); // free = 7 < min(8)
        let mut e = PagingEngine::new(PolicyConfig::so());
        // Outgoing is b with only 3 resident pages; target is ~9.
        e.adaptive_page_out(&mut k, b, a, None).unwrap();
        let plan = e.on_fault(&mut k, a, PageNum(120), NOW).unwrap();
        assert!(plan.mapped >= 1);
        assert!(!k.below_min(), "fallback clock scan finished the job");
        assert_eq!(k.proc(b).unwrap().rss(), 0, "outgoing fully swapped first");
        k.check_invariants().unwrap();
    }

    #[test]
    fn aggressive_page_out_frees_incoming_wss() {
        let mut k = kernel(256);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 245);
        k.register_proc(b, 120);
        // b ran a quantum touching 100 pages, then was evicted entirely.
        k.quantum_started(b).unwrap();
        fill_dirty(&mut k, b, 100, 0);
        let pages: Vec<PageNum> = (0..100).map(PageNum).collect();
        k.evict_batch(b, &pages, &mut Vec::new()).unwrap();
        k.quantum_started(b).unwrap(); // closes epoch: wss_last = 100
                                       // a now owns most of memory.
        fill_dirty(&mut k, a, 240, 1_000);
        assert!(k.free_frames() < 100);

        let mut e = PagingEngine::new(PolicyConfig::so_ao());
        let plan = e.adaptive_page_out(&mut k, a, b, None).unwrap();
        assert!(plan.write_pages() > 0, "a's dirty pages written out");
        assert!(
            k.free_frames() >= 100,
            "free frames now cover b's WSS estimate (100): have {}",
            k.free_frames()
        );
        assert_eq!(
            e.stats().aggressive_evictions as usize,
            plan.write_pages() as usize
        );
        k.check_invariants().unwrap();
    }

    #[test]
    fn aggressive_is_noop_when_memory_already_free() {
        let mut k = kernel(256);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 8);
        k.register_proc(b, 8);
        fill_dirty(&mut k, a, 4, 0);
        let mut e = PagingEngine::new(PolicyConfig::so_ao());
        let plan = e.adaptive_page_out(&mut k, a, b, Some(8)).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn recorded_evictions_replay_as_bulk_reads() {
        // Tight memory: 128 frames, b's 100 resident pages leave only 28
        // free, so the switch must evict ~88 of them to cover a's claim.
        let mut k = kernel(128);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 120);
        k.register_proc(b, 100);
        fill_dirty(&mut k, b, 100, 0);
        let mut e = PagingEngine::new(PolicyConfig::full());
        // Switch b -> a: aggressive page-out evicts b's pages and records
        // them.
        k.quantum_started(a).unwrap();
        let out_plan = e.adaptive_page_out(&mut k, b, a, Some(100)).unwrap();
        assert!(out_plan.write_pages() >= 80);
        assert!(e.stats().recorded_pages >= 80);
        // Switch a -> b: replay.
        k.quantum_started(b).unwrap();
        let _ = e.adaptive_page_out(&mut k, a, b, Some(0)).unwrap();
        let in_plan = e.adaptive_page_in(&mut k, b, NOW).unwrap();
        assert_eq!(in_plan.read_pages(), e.stats().replayed_pages);
        assert!(
            in_plan.reads.len() <= 3,
            "batch-evicted pages occupy contiguous swap: few extents, got {}",
            in_plan.reads.len()
        );
        assert!(k.proc(b).unwrap().rss() >= 90, "working set restored");
        k.check_invariants().unwrap();
    }

    #[test]
    fn replay_reclaims_like_induced_faults() {
        // The replay must not be capped by the free frames at switch
        // time: induced faults run the reclaim path, paging the outgoing
        // process out as the incoming set streams in (this is what makes
        // the paper's `ai`-alone configuration effective).
        let mut k = kernel(64); // min 8, high 16
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 60);
        k.register_proc(b, 60);
        fill_dirty(&mut k, b, 50, 0);
        let mut e = PagingEngine::new(PolicyConfig::full());
        e.adaptive_page_out(&mut k, b, a, Some(50)).unwrap();
        // a fills memory so b's replay must reclaim to proceed.
        fill_dirty(&mut k, a, 40, 1_000);
        e.adaptive_page_out(&mut k, a, b, Some(0)).unwrap();
        let plan = e.adaptive_page_in(&mut k, b, NOW).unwrap();
        assert!(
            plan.read_pages() >= 45,
            "nearly all of b's 50 recorded pages stream back, got {}",
            plan.read_pages()
        );
        assert!(
            !plan.writes.is_empty(),
            "the replay's induced faults paged a out"
        );
        assert!(k.free_frames() <= k.params().freepages_high + 1);
        assert!(k.proc(b).unwrap().rss() >= 45);
        k.check_invariants().unwrap();
    }

    #[test]
    fn adaptive_page_in_disabled_is_noop() {
        let mut k = kernel(64);
        let b = ProcId(2);
        k.register_proc(b, 8);
        let mut e = PagingEngine::new(PolicyConfig::so_ao());
        let plan = e.adaptive_page_in(&mut k, b, NOW).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn degrading_adaptive_in_drops_recorders_coherently() {
        let mut k = kernel(128);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 120);
        k.register_proc(b, 100);
        fill_dirty(&mut k, b, 100, 0);
        let mut e = PagingEngine::new(PolicyConfig::full());
        k.quantum_started(a).unwrap();
        e.adaptive_page_out(&mut k, b, a, Some(100)).unwrap();
        assert!(e.stats().recorded_pages > 0, "b's eviction was recorded");
        // Degrade to demand paging: the half-recorded sequence must go
        // with it or check_invariants flags the stale records.
        e.set_adaptive_in(false);
        assert!(!e.cfg().adaptive_in);
        e.check_invariants().unwrap();
        k.quantum_started(b).unwrap();
        e.adaptive_page_out(&mut k, a, b, Some(0)).unwrap();
        let plan = e.adaptive_page_in(&mut k, b, NOW).unwrap();
        assert!(plan.is_empty(), "no replay after degradation");
        // Re-enabling starts from a clean slate.
        e.set_adaptive_in(true);
        e.check_invariants().unwrap();
    }

    #[test]
    fn readahead_follows_contiguous_swap() {
        let mut k = kernel(256);
        let a = ProcId(1);
        k.register_proc(a, 64);
        fill_dirty(&mut k, a, 64, 0);
        let pages: Vec<PageNum> = (0..64).map(PageNum).collect();
        k.evict_batch(a, &pages, &mut Vec::new()).unwrap();
        let mut e = PagingEngine::new(PolicyConfig::original());
        e.set_running(Some(a));
        let plan = e.on_fault(&mut k, a, PageNum(0), NOW).unwrap();
        assert_eq!(plan.mapped, 16, "fault + 15 read-ahead pages");
        assert_eq!(plan.reads.len(), 1, "one contiguous extent");
        assert_eq!(e.stats().readahead_pages, 15);
        // Next fault continues from page 16.
        let plan2 = e.on_fault(&mut k, a, PageNum(16), NOW).unwrap();
        assert_eq!(plan2.mapped, 16);
        k.check_invariants().unwrap();
    }

    #[test]
    fn readahead_stops_at_discontiguity() {
        let mut k = kernel(256);
        let a = ProcId(1);
        k.register_proc(a, 64);
        // Evict pages one by one in reverse order: swap blocks are
        // allocated 0,1,2,… for pages 63,62,61,… so ascending blocks hold
        // *descending* pages — forward page chains exist but each
        // eviction was a separate allocation; the chain after any block
        // belongs to a different virtual page ordering.
        fill_dirty(&mut k, a, 8, 0);
        for p in (0..8).rev() {
            k.evict(a, PageNum(p)).unwrap();
        }
        let mut e = PagingEngine::new(PolicyConfig::original());
        e.set_running(Some(a));
        // Fault page 7 (swap block 0). Block 1 holds page 6, etc. — the
        // owner chain exists, so read-ahead may follow it; what matters is
        // it never reads junk. Fault page 0 instead (swap block 7): chain
        // after block 7 is empty.
        let plan = e.on_fault(&mut k, a, PageNum(0), NOW).unwrap();
        assert_eq!(plan.mapped, 1, "no chain after the last block");
        k.check_invariants().unwrap();
    }

    #[test]
    fn bgwrite_gated_by_policy() {
        let mut e = PagingEngine::new(PolicyConfig::so_ao());
        e.start_bgwrite(ProcId(1));
        assert!(!e.bgwrite_active(), "bg disabled by policy");
        let mut e2 = PagingEngine::new(PolicyConfig::so_ao_bg());
        e2.start_bgwrite(ProcId(1));
        assert!(e2.bgwrite_active());
        e2.stop_bgwrite();
        assert!(!e2.bgwrite_active());
    }

    #[test]
    fn bgwrite_reduces_switch_writes() {
        // 128 frames so the switch genuinely has to evict a's pages.
        let mut k = kernel(128);
        let a = ProcId(1);
        let b = ProcId(2);
        k.register_proc(a, 120);
        k.register_proc(b, 8);
        fill_dirty(&mut k, a, 100, 0);
        let mut e = PagingEngine::new(PolicyConfig::so_ao_bg());
        e.start_bgwrite(a);
        // Drain all dirty pages in background before the switch.
        let mut bg_pages = 0u64;
        loop {
            let ext = e.bgwrite_tick(&mut k).unwrap();
            let n: u64 = ext.iter().map(|x| x.len).sum();
            if n == 0 {
                break;
            }
            bg_pages += n;
        }
        assert_eq!(bg_pages, 100);
        e.stop_bgwrite();
        let plan = e.adaptive_page_out(&mut k, a, b, Some(100)).unwrap();
        assert_eq!(
            plan.write_pages(),
            0,
            "switch-time eviction after bgwrite needs no writes"
        );
        assert!(
            e.stats().aggressive_evictions > 0,
            "pages were still evicted"
        );
        k.check_invariants().unwrap();
    }

    #[test]
    fn forget_proc_clears_state() {
        let mut e = PagingEngine::new(PolicyConfig::full());
        e.adaptive_page_out(&mut kernel_with_two(), ProcId(1), ProcId(2), Some(0))
            .unwrap();
        e.start_bgwrite(ProcId(2));
        e.forget_proc(ProcId(1));
        e.forget_proc(ProcId(2));
        assert_eq!(e.outgoing(), None);
        assert_eq!(e.running(), None);
        assert!(!e.bgwrite_active());
    }

    fn kernel_with_two() -> Kernel {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 8);
        k.register_proc(ProcId(2), 8);
        k
    }
}
