//! Background writing of dirty pages (paper §3.4).
//!
//! While a job is running — in the paper's tuning, during the last 10 % of
//! its quantum — a low-priority daemon writes the job's dirty pages to
//! swap. The pages stay resident but become clean, so the job switch that
//! follows has far fewer pages to write synchronously.
//!
//! The writer scans with a **cyclic cursor** over the address space (the
//! shape of the kernel's own bdflush scan): each tick sweeps a bounded
//! window forward from where the last tick stopped, collecting dirty
//! pages. For the sweep-structured NPB codes this tends to clean pages
//! *behind* the application's own write sweep — pages that will not be
//! re-dirtied until the sweep wraps around — which is how the
//! implementation limits the "writing of same pages repeatedly" the paper
//! warns about. The window length (10 % of the quantum) is the paper's
//! empirical compromise and is exercised by the `bgwrite_ablation` bench.
//!
//! The writer is a passive state machine: the cluster layer calls
//! [`BgWriter::tick`] whenever the paging disk is idle (that is the "lower
//! priority" part — background writes never delay demand paging I/O in the
//! queue ahead of them) and schedules the next tick itself.

use agp_disk::Extent;
use agp_mem::{Kernel, MemError, ProcId};
use serde::{Deserialize, Serialize};

/// Default pages written per tick. 256 pages = 1 MiB per burst ≈ 50 ms of
/// device time: large enough to amortize the seek, short enough that a
/// demand fault arriving mid-burst is barely delayed.
pub const DEFAULT_BATCH_PAGES: usize = 256;

/// Default page-table entries scanned per tick while hunting for dirty
/// pages (bounds tick cost when dirty pages are sparse).
pub const DEFAULT_SCAN_PAGES: usize = 8192;

/// Cumulative background-writer statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BgStats {
    /// Ticks that found work.
    pub active_ticks: u64,
    /// Ticks that found no dirty pages.
    pub idle_ticks: u64,
    /// Pages transitioned dirty → clean-with-copy.
    pub cleaned_pages: u64,
}

/// The background dirty-page writer.
#[derive(Clone, Debug)]
pub struct BgWriter {
    active: Option<ProcId>,
    batch_pages: usize,
    scan_pages: usize,
    /// Cyclic cursor into the active process's page table.
    hand: usize,
    stats: BgStats,
}

impl Default for BgWriter {
    fn default() -> Self {
        BgWriter::new(DEFAULT_BATCH_PAGES)
    }
}

impl BgWriter {
    /// A writer flushing up to `batch_pages` pages per tick.
    pub fn new(batch_pages: usize) -> Self {
        BgWriter {
            active: None,
            batch_pages: batch_pages.max(1),
            scan_pages: DEFAULT_SCAN_PAGES.max(batch_pages),
            hand: 0,
            stats: BgStats::default(),
        }
    }

    /// `start_bgwrite(inpid)` from the paper's API (§3.5). The scan cursor
    /// persists across activations so successive windows continue around
    /// the address space instead of re-cleaning the same prefix.
    pub fn start(&mut self, pid: ProcId) {
        if self.active != Some(pid) {
            self.hand = 0;
        }
        self.active = Some(pid);
    }

    /// `stop_bgwrite()` — called when the actual job switch begins.
    pub fn stop(&mut self) {
        self.active = None;
    }

    /// The process currently being written back, if any.
    pub fn active(&self) -> Option<ProcId> {
        self.active
    }

    /// Statistics.
    pub fn stats(&self) -> BgStats {
        self.stats
    }

    /// Flush one batch of the active process's dirty pages (cursor
    /// sweep). Returns the write extents to submit (empty when inactive or
    /// when the scan window found nothing dirty).
    pub fn tick(&mut self, kern: &mut Kernel) -> Result<Vec<Extent>, MemError> {
        let Some(pid) = self.active else {
            return Ok(Vec::new());
        };
        let (pages, hand) = kern.dirty_sweep(pid, self.hand, self.scan_pages, self.batch_pages)?;
        self.hand = hand;
        if pages.is_empty() {
            self.stats.idle_ticks += 1;
            return Ok(Vec::new());
        }
        let extents = kern.clean_batch(pid, &pages)?;
        self.stats.active_ticks += 1;
        self.stats.cleaned_pages += pages.len() as u64;
        Ok(extents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agp_mem::{PageNum, VmParams};
    use agp_sim::SimTime;

    fn kernel_with_dirty(pid: ProcId, n: u32) -> Kernel {
        let mut k = Kernel::new(
            VmParams {
                total_frames: 256,
                wired_frames: 0,
                freepages_min: 4,
                freepages_high: 8,
                readahead: 16,
            },
            4096,
        );
        k.register_proc(pid, n as usize);
        for p in 0..n {
            k.map_in(pid, PageNum(p), SimTime::from_us(p as u64))
                .unwrap();
            k.touch(pid, PageNum(p), true, SimTime::from_us(p as u64))
                .unwrap();
        }
        k
    }

    #[test]
    fn inactive_writer_does_nothing() {
        let pid = ProcId(1);
        let mut k = kernel_with_dirty(pid, 10);
        let mut bg = BgWriter::default();
        assert!(bg.tick(&mut k).unwrap().is_empty());
        assert_eq!(k.proc(pid).unwrap().pt.dirty_resident(), 10);
    }

    #[test]
    fn tick_cleans_one_batch_from_cursor() {
        let pid = ProcId(1);
        let mut k = kernel_with_dirty(pid, 100);
        let mut bg = BgWriter::new(32);
        bg.start(pid);
        let ext = bg.tick(&mut k).unwrap();
        assert_eq!(ext.iter().map(|e| e.len).sum::<u64>(), 32);
        assert_eq!(k.proc(pid).unwrap().pt.dirty_resident(), 68);
        assert_eq!(k.proc(pid).unwrap().rss(), 100, "pages stay resident");
        assert_eq!(bg.stats().cleaned_pages, 32);
        // The cursor advanced: the next tick cleans the *next* 32 pages,
        // so pages 0..32 are clean and 32..64 get cleaned now.
        bg.tick(&mut k).unwrap();
        assert_eq!(k.proc(pid).unwrap().pt.dirty_resident(), 36);
    }

    #[test]
    fn writer_drains_to_idle() {
        let pid = ProcId(1);
        let mut k = kernel_with_dirty(pid, 50);
        let mut bg = BgWriter::new(64);
        bg.start(pid);
        assert!(!bg.tick(&mut k).unwrap().is_empty());
        assert!(bg.tick(&mut k).unwrap().is_empty(), "nothing left to clean");
        assert_eq!(bg.stats().idle_ticks, 1);
        k.check_invariants().unwrap();
    }

    #[test]
    fn stop_halts_writing() {
        let pid = ProcId(1);
        let mut k = kernel_with_dirty(pid, 50);
        let mut bg = BgWriter::new(16);
        bg.start(pid);
        bg.tick(&mut k).unwrap();
        bg.stop();
        assert!(bg.tick(&mut k).unwrap().is_empty());
        assert_eq!(k.proc(pid).unwrap().pt.dirty_resident(), 34);
    }

    #[test]
    fn cursor_survives_restart_for_same_proc() {
        let pid = ProcId(1);
        let mut k = kernel_with_dirty(pid, 100);
        let mut bg = BgWriter::new(30);
        bg.start(pid);
        bg.tick(&mut k).unwrap(); // cleans 0..30
        bg.stop();
        bg.start(pid); // same process: cursor keeps going
        bg.tick(&mut k).unwrap(); // cleans 30..60
        assert_eq!(k.proc(pid).unwrap().pt.dirty_resident(), 40);
        bg.start(ProcId(2)); // different process: cursor resets
        bg.stop();
        bg.start(pid);
        bg.tick(&mut k).unwrap(); // back at 0, but 0..60 clean; cleans 60..90
        assert_eq!(k.proc(pid).unwrap().pt.dirty_resident(), 10);
    }

    #[test]
    fn cleaned_pages_evict_for_free_later() {
        // The whole point: after background writing, the switch-time
        // eviction of those pages needs no write I/O.
        let pid = ProcId(1);
        let mut k = kernel_with_dirty(pid, 64);
        let mut bg = BgWriter::new(64);
        bg.start(pid);
        bg.tick(&mut k).unwrap();
        let pages: Vec<PageNum> = (0..64).map(PageNum).collect();
        let writes = k.evict_batch(pid, &pages, &mut Vec::new()).unwrap();
        assert!(writes.is_empty(), "background-cleaned pages drop for free");
        k.check_invariants().unwrap();
    }

    #[test]
    fn scan_window_bounds_tick_cost_but_makes_progress() {
        let pid = ProcId(1);
        // 200-page table with only the tail dirty.
        let mut k = Kernel::new(
            VmParams {
                total_frames: 256,
                wired_frames: 0,
                freepages_min: 4,
                freepages_high: 8,
                readahead: 16,
            },
            4096,
        );
        k.register_proc(pid, 200);
        for p in 150..200 {
            k.map_in(pid, PageNum(p), SimTime::ZERO).unwrap();
            k.touch(pid, PageNum(p), true, SimTime::ZERO).unwrap();
        }
        let mut bg = BgWriter::new(64);
        bg.scan_pages = 100; // force multiple ticks just to find the tail
        bg.start(pid);
        let first = bg.tick(&mut k).unwrap();
        assert!(first.is_empty(), "first window (0..100) has nothing dirty");
        let second = bg.tick(&mut k).unwrap();
        assert!(!second.is_empty(), "second window reaches the dirty tail");
    }
}
