//! Policy configuration: which of the paper's four mechanisms are active.
//!
//! The paper evaluates named combinations — `ai`, `so`, `so/ao`,
//! `so/ao/bg`, `so/ao/ai/bg` — against the unmodified kernel (`orig`).
//! [`PolicyConfig`] models any subset plus the background-writing window
//! fraction (the paper settles on the last 10 % of the quantum, §3.4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Background-writing window as a fraction of the quantum (paper default:
/// write during the last 10 %).
pub const DEFAULT_BG_FRACTION: f64 = 0.10;

/// Victim-selection algorithm used by the default (non-selective)
/// reclaim path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BaselineKind {
    /// The Linux 2.2 clock: sweep the largest-RSS process's page table,
    /// clearing reference bits and evicting unreferenced pages. This is
    /// the kernel the paper modified, including its cross-quantum
    /// false-eviction pathology (§3.1).
    #[default]
    Clock,
    /// Idealized exact global LRU by last-reference time. Not what Linux
    /// shipped, but the abstraction §3.1 reasons with; selectable for the
    /// baseline-sensitivity ablation.
    GlobalLru,
}

/// Which adaptive paging mechanisms are enabled.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Selective page-out (`so`): reclaim victims come from the outgoing
    /// process (oldest first) before anyone else — prevents *false
    /// eviction* of the incoming process's residual pages.
    pub selective: bool,
    /// Aggressive page-out (`ao`): at the job switch, synchronously evict
    /// the outgoing process until free memory covers the incoming
    /// process's working-set estimate.
    pub aggressive: bool,
    /// Adaptive page-in (`ai`): record pages flushed while a process is
    /// descheduled; replay them as bulk block reads when it is
    /// rescheduled.
    pub adaptive_in: bool,
    /// Background writing (`bg`): flush the running job's dirty pages at
    /// low priority near the end of its quantum.
    pub bg_write: bool,
    /// Fraction of the quantum during which background writing runs
    /// (ignored unless `bg_write`).
    pub bg_fraction: f64,
    /// Victim selection for the default reclaim path.
    pub baseline: BaselineKind,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::original()
    }
}

impl PolicyConfig {
    /// The unmodified kernel: plain watermark-driven clock/LRU (`orig`).
    pub const fn original() -> Self {
        PolicyConfig {
            selective: false,
            aggressive: false,
            adaptive_in: false,
            bg_write: false,
            bg_fraction: DEFAULT_BG_FRACTION,
            baseline: BaselineKind::Clock,
        }
    }

    /// Adaptive page-in alone (`ai`).
    pub const fn ai() -> Self {
        PolicyConfig {
            adaptive_in: true,
            ..PolicyConfig::original()
        }
    }

    /// Selective page-out alone (`so`).
    pub const fn so() -> Self {
        PolicyConfig {
            selective: true,
            ..PolicyConfig::original()
        }
    }

    /// Selective + aggressive page-out (`so/ao`).
    pub const fn so_ao() -> Self {
        PolicyConfig {
            selective: true,
            aggressive: true,
            ..PolicyConfig::original()
        }
    }

    /// Selective + aggressive page-out + background writing (`so/ao/bg`).
    pub const fn so_ao_bg() -> Self {
        PolicyConfig {
            selective: true,
            aggressive: true,
            bg_write: true,
            ..PolicyConfig::original()
        }
    }

    /// All four mechanisms (`so/ao/ai/bg`) — the paper's headline
    /// configuration.
    pub const fn full() -> Self {
        PolicyConfig {
            selective: true,
            aggressive: true,
            adaptive_in: true,
            bg_write: true,
            bg_fraction: DEFAULT_BG_FRACTION,
            baseline: BaselineKind::Clock,
        }
    }

    /// The six representative combinations evaluated in the paper's §4.3
    /// (Fig. 9), in presentation order.
    pub fn paper_combinations() -> Vec<PolicyConfig> {
        vec![
            PolicyConfig::original(),
            PolicyConfig::ai(),
            PolicyConfig::so(),
            PolicyConfig::so_ao(),
            PolicyConfig::so_ao_bg(),
            PolicyConfig::full(),
        ]
    }

    /// Whether any adaptive mechanism is active.
    pub fn is_adaptive(&self) -> bool {
        self.selective || self.aggressive || self.adaptive_in || self.bg_write
    }

    /// Short label matching the paper's figures (`orig`, `so/ao/ai/bg`, …).
    pub fn label(&self) -> String {
        if !self.is_adaptive() {
            return "orig".to_string();
        }
        let mut parts = Vec::new();
        if self.selective {
            parts.push("so");
        }
        if self.aggressive {
            parts.push("ao");
        }
        if self.adaptive_in {
            parts.push("ai");
        }
        if self.bg_write {
            parts.push("bg");
        }
        parts.join("/")
    }
}

impl fmt::Display for PolicyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error from parsing a policy label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError(pub String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy token '{}' (expected orig|lru or a /-joined subset of so,ao,ai,bg)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyConfig {
    type Err = ParsePolicyError;

    /// Parse labels like `orig`, `so`, `so/ao/ai/bg` (order-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().to_ascii_lowercase();
        if s.is_empty() || s == "orig" || s == "original" || s == "lru" {
            return Ok(PolicyConfig::original());
        }
        let mut cfg = PolicyConfig::original();
        for tok in s.split(['/', '+', ',']) {
            match tok.trim() {
                "so" => cfg.selective = true,
                "ao" => cfg.aggressive = true,
                "ai" => cfg.adaptive_in = true,
                "bg" => cfg.bg_write = true,
                other => return Err(ParsePolicyError(other.to_string())),
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyConfig::original().label(), "orig");
        assert_eq!(PolicyConfig::ai().label(), "ai");
        assert_eq!(PolicyConfig::so().label(), "so");
        assert_eq!(PolicyConfig::so_ao().label(), "so/ao");
        assert_eq!(PolicyConfig::so_ao_bg().label(), "so/ao/bg");
        assert_eq!(PolicyConfig::full().label(), "so/ao/ai/bg");
    }

    #[test]
    fn parse_roundtrip() {
        for cfg in PolicyConfig::paper_combinations() {
            let parsed: PolicyConfig = cfg.label().parse().unwrap();
            assert_eq!(parsed, cfg, "roundtrip of {}", cfg.label());
        }
    }

    #[test]
    fn parse_aliases_and_order() {
        assert_eq!(
            "lru".parse::<PolicyConfig>().unwrap(),
            PolicyConfig::original()
        );
        assert_eq!(
            "bg/ai/ao/so".parse::<PolicyConfig>().unwrap(),
            PolicyConfig::full()
        );
        assert_eq!(
            "so+ao".parse::<PolicyConfig>().unwrap(),
            PolicyConfig::so_ao()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("so/xx".parse::<PolicyConfig>().is_err());
        assert!("fast".parse::<PolicyConfig>().is_err());
    }

    #[test]
    fn six_paper_combos() {
        let combos = PolicyConfig::paper_combinations();
        assert_eq!(combos.len(), 6);
        assert!(!combos[0].is_adaptive());
        assert!(combos[1..].iter().all(|c| c.is_adaptive()));
    }

    #[test]
    fn default_bg_fraction_is_ten_percent() {
        assert!((PolicyConfig::full().bg_fraction - 0.10).abs() < 1e-12);
    }
}
