//! Online windowed gauge aggregation: O(windows) memory, mergeable.
//!
//! [`crate::SeriesSet`] keeps every sample — O(events) memory, fine for
//! figure-sized runs, fatal for the open-system streams the ROADMAP
//! targets. [`WindowedSeriesSet`] folds the same gauge events into
//! fixed-width time windows holding only `count`/`min`/`max`/`sum` plus a
//! log₂ sketch ([`LatencyHistogram`]) for percentile queries, so a
//! 10⁶-event run costs O(windows), not O(events). Every aggregate is
//! associative, so per-shard window sets merge into exactly the set a
//! serial run would have produced — the property the fan-out tests pin.

use agp_obs::{LatencyHistogram, ObsEvent, Observer};
use agp_sim::SimTime;
use std::collections::BTreeMap;

/// Aggregates for one time window of one gauge.
#[derive(Clone, Debug)]
pub struct WindowStats {
    /// Window start, µs of sim time (inclusive; the window covers
    /// `[start_us, start_us + window_us)`).
    pub start_us: u64,
    /// Samples folded into this window.
    pub count: u64,
    /// Smallest sampled value.
    pub min: u64,
    /// Largest sampled value.
    pub max: u64,
    /// Sum of sampled values (saturating).
    pub sum: u64,
    /// Log₂ sketch of the sampled values, for percentile estimates that
    /// stay mergeable across shards.
    pub sketch: LatencyHistogram,
}

impl WindowStats {
    fn new(start_us: u64) -> Self {
        WindowStats {
            start_us,
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
            sketch: LatencyHistogram::new(),
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum = self.sum.saturating_add(value);
        self.sketch.record(value);
    }

    /// Mean sampled value (integer division; 0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold `other`'s aggregates into `self` (same window start).
    fn absorb(&mut self, other: &WindowStats) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
        self.sketch.merge(&other.sketch);
    }
}

/// One gauge's windows in time order (sparse: windows that saw no
/// samples are absent).
#[derive(Clone, Debug, Default)]
pub struct WindowedSeries {
    windows: BTreeMap<u64, WindowStats>,
}

impl WindowedSeries {
    /// The windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowStats> {
        self.windows.values()
    }

    /// Number of non-empty windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The window covering `start_us`, if it saw samples.
    pub fn window_at(&self, start_us: u64) -> Option<&WindowStats> {
        self.windows.get(&start_us)
    }

    /// Total samples across all windows.
    pub fn total_count(&self) -> u64 {
        self.windows.values().map(|w| w.count).sum()
    }

    fn record(&mut self, start_us: u64, value: u64) {
        self.windows
            .entry(start_us)
            .or_insert_with(|| WindowStats::new(start_us))
            .record(value);
    }

    fn merge(&mut self, other: &WindowedSeries) {
        for (&start, stats) in &other.windows {
            self.windows
                .entry(start)
                .or_insert_with(|| WindowStats::new(start))
                .absorb(stats);
        }
    }
}

/// An observer folding gauge events into per-gauge time windows.
///
/// Series naming matches [`crate::SeriesSet`] (`node{n}.{gauge}`,
/// `node{n}.pid{p}.{gauge}`), so dashboards can swap the unbounded set
/// for this one without renaming anything. Windows are keyed by
/// `t / window_us`, and all aggregation is online: no sample is retained
/// past its fold.
#[derive(Clone, Debug)]
pub struct WindowedSeriesSet {
    window_us: u64,
    series: BTreeMap<String, WindowedSeries>,
}

impl WindowedSeriesSet {
    /// An empty set with `window_us`-wide windows (0 behaves as 1).
    pub fn new(window_us: u64) -> Self {
        WindowedSeriesSet {
            window_us: window_us.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The window width, µs.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Series names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The series named `name`, if any samples arrived for it.
    pub fn get(&self, name: &str) -> Option<&WindowedSeries> {
        self.series.get(name)
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no gauge events arrived.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Iterate `(name, series)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &WindowedSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold `other` into `self`. Aligned windows combine aggregate-wise
    /// (counts and sums add, min/max extremize, sketches merge), so the
    /// operation is associative and commutative; name and window order
    /// come from `BTreeMap`s and never depend on merge order. Errors when
    /// the window widths differ — windows of different widths do not
    /// align, and silently resampling would corrupt the aggregates.
    pub fn merge(&mut self, other: &WindowedSeriesSet) -> Result<(), String> {
        if self.window_us != other.window_us {
            return Err(format!(
                "window width mismatch: {}us vs {}us",
                self.window_us, other.window_us
            ));
        }
        for (name, series) in &other.series {
            self.series.entry(name.clone()).or_default().merge(series);
        }
        Ok(())
    }

    fn push(&mut self, name: String, t_us: u64, value: u64) {
        let start = t_us / self.window_us * self.window_us;
        self.series.entry(name).or_default().record(start, value);
    }
}

impl Observer for WindowedSeriesSet {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        let t = at.as_us();
        match *ev {
            ObsEvent::NodeGauge {
                free_frames,
                dirty_pages,
                disk_backlog_us,
                disk_busy_us,
                bg_cleaned,
            } => {
                for (gauge, value) in [
                    ("free_frames", free_frames),
                    ("dirty_pages", dirty_pages),
                    ("disk_backlog_us", disk_backlog_us),
                    ("disk_busy_us", disk_busy_us),
                    ("bg_cleaned", bg_cleaned),
                ] {
                    self.push(format!("node{src}.{gauge}"), t, value);
                }
            }
            ObsEvent::ProcGauge {
                pid,
                resident,
                dirty,
            } => {
                self.push(format!("node{src}.pid{pid}.resident"), t, resident);
                self.push(format!("node{src}.pid{pid}.dirty"), t, dirty);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge(free: u64) -> ObsEvent {
        ObsEvent::NodeGauge {
            free_frames: free,
            dirty_pages: 0,
            disk_backlog_us: 0,
            disk_busy_us: 0,
            bg_cleaned: 0,
        }
    }

    #[test]
    fn samples_fold_into_aligned_windows() {
        let mut w = WindowedSeriesSet::new(100);
        for (t, v) in [(0, 10), (50, 30), (99, 20), (100, 5), (250, 7)] {
            w.on_event(SimTime::from_us(t), 0, &gauge(v));
        }
        let s = w.get("node0.free_frames").unwrap();
        assert_eq!(s.len(), 3, "windows at 0, 100, 200");
        let w0 = s.window_at(0).unwrap();
        assert_eq!((w0.count, w0.min, w0.max, w0.sum), (3, 10, 30, 60));
        assert_eq!(w0.mean(), 20);
        assert_eq!(w0.sketch.count(), 3);
        assert_eq!(s.window_at(100).unwrap().count, 1);
        assert_eq!(s.window_at(200).unwrap().max, 7);
        assert_eq!(s.total_count(), 5);
    }

    #[test]
    fn memory_is_windows_not_events() {
        // A million samples into a handful of windows: the structure
        // holds exactly the occupied windows, nothing per-event.
        let mut w = WindowedSeriesSet::new(1_000_000);
        for t in 0..1_000_000u64 {
            w.on_event(SimTime::from_us(t * 5), 0, &gauge(t % 512));
        }
        let s = w.get("node0.free_frames").unwrap();
        assert_eq!(s.len(), 5, "5s of samples / 1s windows");
        assert_eq!(s.total_count(), 1_000_000);
        let p50 = s.window_at(0).unwrap().sketch.p50_us();
        assert!(p50 > 0 && p50 <= 512, "sketch answers percentiles: {p50}");
    }

    #[test]
    fn shard_merge_equals_serial_fold() {
        let sample = |t: u64| gauge(t % 37);
        let mut serial = WindowedSeriesSet::new(64);
        let mut shards = vec![WindowedSeriesSet::new(64); 3];
        for t in 0..600u64 {
            serial.on_event(SimTime::from_us(t), (t % 2) as u32, &sample(t));
            shards[(t % 3) as usize].on_event(SimTime::from_us(t), (t % 2) as u32, &sample(t));
        }
        // (s0 ⊕ s1) ⊕ s2 and s0 ⊕ (s1 ⊕ s2) must both equal serial.
        let mut left = WindowedSeriesSet::new(64);
        for s in &shards {
            left.merge(s).unwrap();
        }
        let mut bc = WindowedSeriesSet::new(64);
        bc.merge(&shards[1]).unwrap();
        bc.merge(&shards[2]).unwrap();
        let mut right = WindowedSeriesSet::new(64);
        right.merge(&shards[0]).unwrap();
        right.merge(&bc).unwrap();
        for merged in [&left, &right] {
            assert_eq!(merged.len(), serial.len());
            for (name, s) in serial.iter() {
                let m = merged.get(name).unwrap();
                assert_eq!(m.len(), s.len(), "{name}: window count");
                for (a, b) in m.windows().zip(s.windows()) {
                    assert_eq!(a.start_us, b.start_us);
                    assert_eq!(a.count, b.count, "{name}@{}", a.start_us);
                    assert_eq!((a.min, a.max, a.sum), (b.min, b.max, b.sum));
                    assert_eq!(a.sketch.rows(), b.sketch.rows());
                }
            }
        }
    }

    #[test]
    fn mismatched_window_widths_refuse_to_merge() {
        let mut a = WindowedSeriesSet::new(100);
        let b = WindowedSeriesSet::new(200);
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("100us vs 200us"), "{err}");
    }

    #[test]
    fn zero_width_window_behaves_as_one() {
        let mut w = WindowedSeriesSet::new(0);
        assert_eq!(w.window_us(), 1);
        w.on_event(SimTime::from_us(7), 0, &gauge(1));
        assert_eq!(
            w.get("node0.free_frames")
                .unwrap()
                .window_at(7)
                .unwrap()
                .count,
            1
        );
    }
}
