//! Chrome Trace Event / Perfetto JSON exporter.
//!
//! ## Track layout
//!
//! | Perfetto pid | track | content |
//! |--------------|-------|---------|
//! | 0 "cluster" | tid 1 "switches" | one span per gang switch, with `page_out` / `page_in` child spans tiling it |
//! | 0 "cluster" | tid 2 "barriers" | one span per barrier release (`dur` = network lag, args carry the skew) |
//! | 0 "cluster" | tid 3 "faults" | one span per fault-service stall (`dur` = the stall) — fault storms read as dense rows |
//! | n+1 "node n" | tid 1 "disk" | one span per disk request, placed at service start (`ts` = submit + queue wait) |
//! | n+1 "node n" | tid 2 "paging" | instants for reclaim / evict batches / aggressive page-out / replay / bg-writer bursts |
//! | n+1 "node n" | counters | `mem` (free/dirty frames), `disk` (backlog/cumulative busy), `bg` (pages cleaned), `pid{p}` (resident/dirty) |
//!
//! Timestamps are sim-time microseconds — exactly the Trace Event
//! format's unit. All values are integers and every object is rendered
//! with a fixed field order, so same-seed runs export byte-identical
//! files. Per-page events (`PageFault`, `Evict`, `ReadaheadHit`,
//! `MajorFault`) are deliberately dropped: they dominate the stream's
//! cardinality while the aggregate rows above already show the storms.
//!
//! Metadata (`ph:"M"` process/thread names) is emitted lazily on first
//! use of a track; since the event stream is deterministic, so is the
//! metadata placement.

use agp_obs::{ObsEvent, Observer, SwitchPhaseKind, SRC_CLUSTER};
use agp_sim::SimTime;
use std::collections::BTreeSet;
use std::fmt::Write as _;

const PID_CLUSTER: u32 = 0;
const TID_SWITCHES: u32 = 1;
const TID_BARRIERS: u32 = 2;
const TID_FAULTS: u32 = 3;
const TID_DISK: u32 = 1;
const TID_PAGING: u32 = 2;
const TID_CRITICAL: u32 = 4;
const TID_CHAOS: u32 = 5;

/// Perfetto pid for the host-performance counter tracks ([`PerfettoTrace::
/// host_perf_track`]). High enough that no node pid (`src + 1`) collides.
const PID_HOST_PERF: u32 = 9_999;

/// An observer sink rendering the stream as Trace Event JSON; call
/// [`PerfettoTrace::finish`] after the run for the document.
#[derive(Clone, Debug, Default)]
pub struct PerfettoTrace {
    events: Vec<String>,
    named_procs: BTreeSet<u32>,
    named_threads: BTreeSet<(u32, u32)>,
    /// Phases of the switch whose `SwitchDone` has not arrived yet, in
    /// stream order.
    pending_phases: Vec<(SwitchPhaseKind, u64)>,
    pending_switch: Option<u64>,
}

impl PerfettoTrace {
    /// An empty exporter.
    pub fn new() -> Self {
        PerfettoTrace::default()
    }

    /// Trace events rendered so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been rendered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the complete JSON document (one event per line inside
    /// `traceEvents`, so traces diff line by line).
    pub fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    fn pid_of(src: u32) -> u32 {
        if src == SRC_CLUSTER {
            PID_CLUSTER
        } else {
            src + 1
        }
    }

    fn ensure_process(&mut self, pid: u32) {
        if !self.named_procs.insert(pid) {
            return;
        }
        let name = if pid == PID_CLUSTER {
            "cluster".to_string()
        } else {
            format!("node {}", pid - 1)
        };
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    fn ensure_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.ensure_process(pid);
        if !self.named_threads.insert((pid, tid)) {
            return;
        }
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    /// A complete (`ph:"X"`) span. `args` names must be JSON-safe ASCII.
    fn span(&mut self, pid: u32, tid: u32, ts: u64, dur: u64, name: &str, args: &[(&str, u64)]) {
        let mut e = format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid}"
        );
        push_args(&mut e, args);
        e.push('}');
        self.events.push(e);
    }

    /// A thread-scoped instant (`ph:"i"`).
    fn instant(&mut self, pid: u32, tid: u32, ts: u64, name: &str, args: &[(&str, u64)]) {
        let mut e = format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"s\":\"t\""
        );
        push_args(&mut e, args);
        e.push('}');
        self.events.push(e);
    }

    /// Add one segment to the cluster's "critical path" highlight track
    /// (tid 4). The explain layer calls this after the run with each
    /// cause-labelled segment of a switch's critical path, so the
    /// dominant chain reads as a contiguous row above the switch spans.
    /// Zero-duration segments are dropped.
    pub fn highlight(&mut self, ts: u64, dur_us: u64, name: &str) {
        if dur_us == 0 {
            return;
        }
        self.ensure_thread(PID_CLUSTER, TID_CRITICAL, "critical path");
        self.span(PID_CLUSTER, TID_CRITICAL, ts, dur_us, name, &[]);
    }

    /// Merge an `agp-perf` host-profile into the trace as a dedicated
    /// "host perf" process: one counter track per instrumented span
    /// carrying its exclusive (self) host time in microseconds, sampled
    /// at the start and end of the sim-time axis so each renders as a
    /// readable bar alongside the sim tracks. Purely additive — traces
    /// exported without a profile are unchanged byte for byte.
    ///
    /// The time *axis* stays sim-µs; only the counter values are host
    /// time, so this reads as "where the simulator itself spent its
    /// wall clock while producing everything above".
    pub fn host_perf_track(&mut self, report: &agp_perf::PerfReport, end_ts_us: u64) {
        if report.spans.is_empty() {
            return;
        }
        if self.named_procs.insert(PID_HOST_PERF) {
            self.events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_HOST_PERF},\"tid\":0,\
                 \"args\":{{\"name\":\"host perf\"}}}}"
            ));
        }
        for agg in &report.spans {
            let name = format!("host {}", agg.span.name());
            let self_us = agg.excl_ns / 1_000;
            self.counter(PID_HOST_PERF, 0, &name, &[("self_us", self_us)]);
            self.counter(
                PID_HOST_PERF,
                end_ts_us.max(1),
                &name,
                &[("self_us", self_us)],
            );
        }
    }

    /// A counter sample (`ph:"C"`); multiple args render as stacked
    /// series on one counter track.
    fn counter(&mut self, pid: u32, ts: u64, name: &str, args: &[(&str, u64)]) {
        self.ensure_process(pid);
        let mut e = format!("{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid}");
        push_args(&mut e, args);
        e.push('}');
        self.events.push(e);
    }
}

fn push_args(e: &mut String, args: &[(&str, u64)]) {
    e.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            e.push(',');
        }
        // Keys are compile-time ASCII identifiers; no escaping needed.
        let _ = write!(e, "\"{k}\":{v}");
    }
    e.push('}');
}

fn phase_name(p: SwitchPhaseKind) -> &'static str {
    match p {
        SwitchPhaseKind::Stop => "stop",
        SwitchPhaseKind::PageOut => "page_out",
        SwitchPhaseKind::PageIn => "page_in",
        SwitchPhaseKind::Cont => "cont",
    }
}

impl Observer for PerfettoTrace {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        let ts = at.as_us();
        match *ev {
            ObsEvent::SwitchPhase {
                switch,
                phase,
                dur_us,
            } => {
                if self.pending_switch != Some(switch) {
                    // A done-less predecessor would be a stream bug;
                    // rendering fresh is the graceful recovery.
                    self.pending_phases.clear();
                    self.pending_switch = Some(switch);
                }
                self.pending_phases.push((phase, dur_us));
            }
            ObsEvent::SwitchDone { switch, total_us } => {
                self.ensure_thread(PID_CLUSTER, TID_SWITCHES, "switches");
                let name = format!("switch {switch}");
                self.span(PID_CLUSTER, TID_SWITCHES, ts, total_us, &name, &[]);
                if self.pending_switch == Some(switch) {
                    let mut offset = 0u64;
                    let phases = std::mem::take(&mut self.pending_phases);
                    for (phase, dur_us) in phases {
                        if dur_us > 0 {
                            self.span(
                                PID_CLUSTER,
                                TID_SWITCHES,
                                ts.saturating_add(offset),
                                dur_us,
                                phase_name(phase),
                                &[],
                            );
                        }
                        offset += dur_us;
                    }
                }
                self.pending_switch = None;
            }
            ObsEvent::BarrierWait {
                ranks,
                skew_us,
                lag_us,
            } => {
                self.ensure_thread(PID_CLUSTER, TID_BARRIERS, "barriers");
                let name = format!("barrier job{src}");
                self.span(
                    PID_CLUSTER,
                    TID_BARRIERS,
                    ts,
                    lag_us,
                    &name,
                    &[("ranks", ranks as u64), ("skew_us", skew_us)],
                );
            }
            ObsEvent::FaultService { pid, page, wait_us } => {
                self.ensure_thread(PID_CLUSTER, TID_FAULTS, "faults");
                let name = format!("fault pid{pid}");
                self.span(
                    PID_CLUSTER,
                    TID_FAULTS,
                    ts,
                    wait_us,
                    &name,
                    &[("page", page as u64)],
                );
            }
            ObsEvent::DiskRequest {
                write,
                extents,
                pages,
                wait_us,
                seek_us,
                service_us,
            } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_DISK, "disk");
                self.span(
                    pid,
                    TID_DISK,
                    ts.saturating_add(wait_us),
                    service_us,
                    if write { "write" } else { "read" },
                    &[
                        ("pages", pages),
                        ("extents", extents as u64),
                        ("wait_us", wait_us),
                        ("seek_us", seek_us),
                    ],
                );
            }
            ObsEvent::Reclaim {
                target,
                freed,
                write_pages,
            } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_PAGING, "paging");
                self.instant(
                    pid,
                    TID_PAGING,
                    ts,
                    "reclaim",
                    &[
                        ("target", target),
                        ("freed", freed),
                        ("write_pages", write_pages),
                    ],
                );
            }
            ObsEvent::EvictBatch {
                pid: vic,
                pages,
                write_pages,
            } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_PAGING, "paging");
                let name = format!("evict_batch pid{vic}");
                self.instant(
                    pid,
                    TID_PAGING,
                    ts,
                    &name,
                    &[("pages", pages as u64), ("write_pages", write_pages as u64)],
                );
            }
            ObsEvent::AggressiveOut { pid: out, pages } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_PAGING, "paging");
                let name = format!("aggressive_out pid{out}");
                self.instant(pid, TID_PAGING, ts, &name, &[("pages", pages)]);
            }
            ObsEvent::Replay {
                pid: inn,
                pages,
                skipped,
            } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_PAGING, "paging");
                let name = format!("replay pid{inn}");
                self.instant(
                    pid,
                    TID_PAGING,
                    ts,
                    &name,
                    &[("pages", pages), ("skipped", skipped)],
                );
            }
            ObsEvent::BgTick {
                pid: cleaned,
                pages,
            } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_PAGING, "paging");
                let name = format!("bg pid{cleaned}");
                self.instant(pid, TID_PAGING, ts, &name, &[("pages", pages)]);
            }
            ObsEvent::NodeGauge {
                free_frames,
                dirty_pages,
                disk_backlog_us,
                disk_busy_us,
                bg_cleaned,
            } => {
                let pid = Self::pid_of(src);
                self.counter(
                    pid,
                    ts,
                    "mem",
                    &[("free_frames", free_frames), ("dirty_pages", dirty_pages)],
                );
                self.counter(
                    pid,
                    ts,
                    "disk",
                    &[("backlog_us", disk_backlog_us), ("busy_us", disk_busy_us)],
                );
                self.counter(pid, ts, "bg", &[("cleaned", bg_cleaned)]);
            }
            ObsEvent::ProcGauge {
                pid: p,
                resident,
                dirty,
            } => {
                let pid = Self::pid_of(src);
                let name = format!("pid{p}");
                self.counter(pid, ts, &name, &[("resident", resident), ("dirty", dirty)]);
            }
            // Chaos events: one "chaos" row per scope so injected
            // faults and recovery actions line up against the switch
            // and disk tracks they perturb.
            ObsEvent::DiskError {
                write,
                pages,
                service_us,
            } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(
                    pid,
                    TID_CHAOS,
                    ts,
                    if write {
                        "disk_error write"
                    } else {
                        "disk_error read"
                    },
                    &[("pages", pages), ("service_us", service_us)],
                );
            }
            ObsEvent::DiskSlowdown { penalty_us } => {
                let pid = Self::pid_of(src);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(
                    pid,
                    TID_CHAOS,
                    ts,
                    "disk_slowdown",
                    &[("penalty_us", penalty_us)],
                );
            }
            ObsEvent::IoRetry {
                node,
                attempt,
                backoff_us,
            } => {
                let pid = Self::pid_of(node);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(
                    pid,
                    TID_CHAOS,
                    ts,
                    "io_retry",
                    &[("attempt", attempt as u64), ("backoff_us", backoff_us)],
                );
            }
            ObsEvent::NodeCrash {
                node,
                jobs_suspended,
            } => {
                let pid = Self::pid_of(node);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(
                    pid,
                    TID_CHAOS,
                    ts,
                    "node_crash",
                    &[("jobs_suspended", jobs_suspended as u64)],
                );
            }
            ObsEvent::NodeRestart {
                node,
                jobs_requeued,
            } => {
                let pid = Self::pid_of(node);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(
                    pid,
                    TID_CHAOS,
                    ts,
                    "node_restart",
                    &[("jobs_requeued", jobs_requeued as u64)],
                );
            }
            ObsEvent::JobRequeued { job } => {
                self.ensure_thread(PID_CLUSTER, TID_CHAOS, "chaos");
                self.instant(
                    PID_CLUSTER,
                    TID_CHAOS,
                    ts,
                    "job_requeued",
                    &[("job", job as u64)],
                );
            }
            ObsEvent::BarrierTimeout {
                job,
                attempt,
                waited_us,
            } => {
                self.ensure_thread(PID_CLUSTER, TID_CHAOS, "chaos");
                self.instant(
                    PID_CLUSTER,
                    TID_CHAOS,
                    ts,
                    "barrier_timeout",
                    &[
                        ("job", job as u64),
                        ("attempt", attempt as u64),
                        ("waited_us", waited_us),
                    ],
                );
            }
            ObsEvent::MemPressure {
                node,
                target,
                write_pages,
            } => {
                let pid = Self::pid_of(node);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(
                    pid,
                    TID_CHAOS,
                    ts,
                    "mem_pressure",
                    &[("target", target), ("write_pages", write_pages)],
                );
            }
            ObsEvent::AiDegraded { node, errors } => {
                let pid = Self::pid_of(node);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(pid, TID_CHAOS, ts, "ai_degraded", &[("errors", errors)]);
            }
            ObsEvent::IoExhausted { node, attempts } => {
                let pid = Self::pid_of(node);
                self.ensure_thread(pid, TID_CHAOS, "chaos");
                self.instant(
                    pid,
                    TID_CHAOS,
                    ts,
                    "io_exhausted",
                    &[("attempts", attempts as u64)],
                );
            }
            ObsEvent::BarrierExhausted { job, attempts } => {
                self.ensure_thread(PID_CLUSTER, TID_CHAOS, "chaos");
                self.instant(
                    PID_CLUSTER,
                    TID_CHAOS,
                    ts,
                    "barrier_exhausted",
                    &[("job", job as u64), ("attempts", attempts as u64)],
                );
            }
            ObsEvent::WatchdogTrip { value, limit, .. } => {
                self.ensure_thread(PID_CLUSTER, TID_CHAOS, "chaos");
                self.instant(
                    PID_CLUSTER,
                    TID_CHAOS,
                    ts,
                    "watchdog_trip",
                    &[("value", value), ("limit", limit)],
                );
            }
            // Per-page noise: aggregate rows above already show the
            // storms these belong to.
            ObsEvent::PageFault { .. }
            | ObsEvent::MajorFault { .. }
            | ObsEvent::ReadaheadHit { .. }
            | ObsEvent::ReplayPage { .. }
            | ObsEvent::Evict { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(tr: &mut PerfettoTrace, at: u64, src: u32, ev: ObsEvent) {
        tr.on_event(SimTime::from_us(at), src, &ev);
    }

    fn switch_stream(tr: &mut PerfettoTrace) {
        for (phase, dur) in [
            (SwitchPhaseKind::Stop, 0),
            (SwitchPhaseKind::PageOut, 300),
            (SwitchPhaseKind::PageIn, 700),
            (SwitchPhaseKind::Cont, 0),
        ] {
            feed(
                tr,
                1_000,
                SRC_CLUSTER,
                ObsEvent::SwitchPhase {
                    switch: 1,
                    phase,
                    dur_us: dur,
                },
            );
        }
        feed(
            tr,
            1_000,
            SRC_CLUSTER,
            ObsEvent::SwitchDone {
                switch: 1,
                total_us: 1_000,
            },
        );
    }

    #[test]
    fn switch_phases_nest_inside_the_switch_span() {
        let mut tr = PerfettoTrace::new();
        switch_stream(&mut tr);
        let out = tr.finish();
        assert!(out.contains("\"name\":\"switch 1\",\"ph\":\"X\",\"ts\":1000,\"dur\":1000"));
        assert!(out.contains("\"name\":\"page_out\",\"ph\":\"X\",\"ts\":1000,\"dur\":300"));
        assert!(out.contains("\"name\":\"page_in\",\"ph\":\"X\",\"ts\":1300,\"dur\":700"));
        // Zero-duration stop/cont phases are dropped.
        assert!(!out.contains("\"name\":\"stop\""));
        assert!(!out.contains("\"name\":\"cont\""));
    }

    #[test]
    fn disk_spans_start_at_service_not_submit() {
        let mut tr = PerfettoTrace::new();
        feed(
            &mut tr,
            500,
            2,
            ObsEvent::DiskRequest {
                write: true,
                extents: 3,
                pages: 64,
                wait_us: 200,
                seek_us: 250,
                service_us: 900,
            },
        );
        let out = tr.finish();
        assert!(out.contains(
            "\"name\":\"write\",\"ph\":\"X\",\"ts\":700,\"dur\":900,\"pid\":3,\"tid\":1"
        ));
        assert!(
            out.contains("\"args\":{\"pages\":64,\"extents\":3,\"wait_us\":200,\"seek_us\":250}")
        );
        assert!(out.contains("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,\"args\":{\"name\":\"node 2\"}}"));
    }

    #[test]
    fn gauges_render_as_counters() {
        let mut tr = PerfettoTrace::new();
        feed(
            &mut tr,
            77,
            0,
            ObsEvent::NodeGauge {
                free_frames: 120,
                dirty_pages: 33,
                disk_backlog_us: 4_500,
                disk_busy_us: 987_654,
                bg_cleaned: 256,
            },
        );
        feed(
            &mut tr,
            77,
            0,
            ObsEvent::ProcGauge {
                pid: 9,
                resident: 1_000,
                dirty: 10,
            },
        );
        let out = tr.finish();
        assert!(out.contains(
            "{\"name\":\"mem\",\"ph\":\"C\",\"ts\":77,\"pid\":1,\"args\":{\"free_frames\":120,\"dirty_pages\":33}}"
        ));
        assert!(out.contains(
            "{\"name\":\"disk\",\"ph\":\"C\",\"ts\":77,\"pid\":1,\"args\":{\"backlog_us\":4500,\"busy_us\":987654}}"
        ));
        assert!(out.contains(
            "{\"name\":\"pid9\",\"ph\":\"C\",\"ts\":77,\"pid\":1,\"args\":{\"resident\":1000,\"dirty\":10}}"
        ));
    }

    #[test]
    fn per_page_events_are_dropped() {
        let mut tr = PerfettoTrace::new();
        feed(
            &mut tr,
            1,
            0,
            ObsEvent::PageFault {
                pid: 1,
                page: 2,
                major: true,
            },
        );
        feed(&mut tr, 1, 0, ObsEvent::ReadaheadHit { pid: 1, page: 3 });
        feed(&mut tr, 1, 0, ObsEvent::ReplayPage { pid: 1, page: 4 });
        assert!(tr.is_empty());
    }

    #[test]
    fn highlight_renders_on_the_critical_path_track() {
        let mut tr = PerfettoTrace::new();
        tr.highlight(1_000, 0, "pagein_seek"); // dropped: zero duration
        tr.highlight(1_000, 400, "pageout_transfer");
        tr.highlight(1_400, 600, "pagein_queue_wait");
        let out = tr.finish();
        assert!(out.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":4,\"args\":{\"name\":\"critical path\"}}"
        ));
        assert!(out.contains(
            "\"name\":\"pageout_transfer\",\"ph\":\"X\",\"ts\":1000,\"dur\":400,\"pid\":0,\"tid\":4"
        ));
        assert!(!out.contains("pagein_seek"));
    }

    #[test]
    fn host_perf_track_renders_counters_under_its_own_process() {
        let mut rec = agp_perf::Recorder::new();
        rec.enter(agp_perf::Span::Run, 0);
        rec.enter(agp_perf::Span::SimDispatch, 100);
        rec.exit(400);
        rec.exit(1_000);
        let rep = agp_perf::PerfReport::from_recorder(&rec);
        let mut tr = PerfettoTrace::new();
        tr.host_perf_track(&rep, 5_000);
        let out = tr.finish();
        assert!(out.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":9999,\"tid\":0,\"args\":{\"name\":\"host perf\"}}"
        ));
        // sim.run self time = 1000 - 300 (dispatch child) = 700 ns -> 0 µs
        // after integer truncation; dispatch self = 300 ns -> 0 µs. Values
        // are sampled at ts 0 and at the end of the sim axis.
        assert!(out
            .contains("{\"name\":\"host sim.run\",\"ph\":\"C\",\"ts\":0,\"pid\":9999,\"args\":{\"self_us\":0}}"));
        assert!(out
            .contains("{\"name\":\"host sim.dispatch\",\"ph\":\"C\",\"ts\":5000,\"pid\":9999,\"args\":{\"self_us\":0}}"));
        // No "node 9998" misnaming from the lazy process-metadata path.
        assert!(!out.contains("node 9998"));

        // An empty report is a strict no-op.
        let mut empty = PerfettoTrace::new();
        empty.host_perf_track(
            &agp_perf::PerfReport::from_recorder(&agp_perf::Recorder::new()),
            5_000,
        );
        assert!(empty.is_empty());
    }

    #[test]
    fn rendering_is_deterministic() {
        let render = || {
            let mut tr = PerfettoTrace::new();
            switch_stream(&mut tr);
            feed(
                &mut tr,
                2_000,
                0,
                ObsEvent::Replay {
                    pid: 4,
                    pages: 100,
                    skipped: 2,
                },
            );
            tr.finish()
        };
        let a = render();
        assert_eq!(a, render());
        assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(a.ends_with("\n]}\n"));
    }
}
