//! # agp-telemetry — time series and trace exporters over the observer seam
//!
//! Two sinks that plug into [`agp_obs::ObsLink`]:
//!
//! * [`SeriesSet`] — folds the simulator's gauge events
//!   ([`agp_obs::ObsEvent::NodeGauge`] / [`ObsEvent::ProcGauge`]) into
//!   named, compact time series (`node0.free_frames`,
//!   `node0.pid3.resident`, …) for programmatic analysis;
//! * [`WindowedSeriesSet`] — the bounded-memory variant: the same gauge
//!   stream folded online into fixed-width windows
//!   (count/min/max/sum + a mergeable log₂ percentile sketch), O(windows)
//!   memory instead of O(events), with an associative `merge()` for
//!   shard fan-out;
//! * [`PerfettoTrace`] — renders the full event stream as Chrome Trace
//!   Event JSON: gang switches and their page-out/page-in phases as
//!   nested spans, disk transfers and fault stalls as duration spans,
//!   reclaim/replay/background-writer activity as instants, and gauges
//!   as counter tracks. The output loads directly in `ui.perfetto.dev`
//!   (or `chrome://tracing`).
//!
//! Both sinks follow the repo's determinism discipline: no hash
//! containers, no wall-clock reads, and hand-rolled integer-only JSON, so
//! two same-seed runs produce **byte-identical** exports.
//!
//! Sampling cadence is owned by the simulator
//! (`ClusterConfig::sample_every`); these sinks only fold what the stream
//! delivers.
//!
//! [`ObsEvent::ProcGauge`]: agp_obs::ObsEvent::ProcGauge

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod perfetto;
mod series;
mod window;

pub use perfetto::PerfettoTrace;
pub use series::{SeriesPoint, SeriesSet, TimeSeries};
pub use window::{WindowStats, WindowedSeries, WindowedSeriesSet};
