//! Compact named time series folded from gauge events.

use agp_obs::{ObsEvent, Observer};
use agp_sim::SimTime;
use std::collections::BTreeMap;

/// One sampled point: sim time (µs) and gauge value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sample instant, µs of sim time.
    pub t_us: u64,
    /// Gauge value at that instant.
    pub value: u64,
}

/// One gauge's samples in time order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeSeries {
    points: Vec<SeriesPoint>,
}

impl TimeSeries {
    /// The sampled points, oldest first.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<SeriesPoint> {
        self.points.last().copied()
    }

    /// Smallest sampled value.
    pub fn min(&self) -> Option<u64> {
        self.points.iter().map(|p| p.value).min()
    }

    /// Largest sampled value.
    pub fn max(&self) -> Option<u64> {
        self.points.iter().map(|p| p.value).max()
    }

    /// Mean sampled value (integer division; `None` when empty).
    pub fn mean(&self) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let sum: u64 = self
            .points
            .iter()
            .fold(0u64, |acc, p| acc.saturating_add(p.value));
        Some(sum / self.points.len() as u64)
    }

    /// Fold `other` into `self`, interleaving points by time with a
    /// stable merge: on equal `t_us`, `self`'s points sort before
    /// `other`'s. Because each input is time-ordered and ties break
    /// left-before-right, the merge is associative and order-pinned —
    /// folding shards in a fixed shard order yields the same point
    /// sequence every time.
    pub fn merge(&mut self, other: &TimeSeries) {
        if other.points.is_empty() {
            return;
        }
        if self
            .points
            .last()
            .is_none_or(|l| l.t_us <= other.points[0].t_us)
        {
            // Fast path: disjoint or abutting time ranges append directly.
            self.points.extend_from_slice(&other.points);
            return;
        }
        let mut merged = Vec::with_capacity(self.points.len() + other.points.len());
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() && j < other.points.len() {
            if self.points[i].t_us <= other.points[j].t_us {
                merged.push(self.points[i]);
                i += 1;
            } else {
                merged.push(other.points[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.points[i..]);
        merged.extend_from_slice(&other.points[j..]);
        self.points = merged;
    }

    /// Successive differences, for cumulative gauges (`disk_busy_us`,
    /// `bg_cleaned`): point *i* holds `value[i] − value[i−1]` at
    /// `t_us[i]`, saturating at zero. One point shorter than the source.
    pub fn deltas(&self) -> Vec<SeriesPoint> {
        self.points
            .windows(2)
            .map(|w| SeriesPoint {
                t_us: w[1].t_us,
                value: w[1].value.saturating_sub(w[0].value),
            })
            .collect()
    }
}

/// An observer sink folding gauge events into named series.
///
/// Names are `node{n}.{gauge}` for node gauges (`free_frames`,
/// `dirty_pages`, `disk_backlog_us`, `disk_busy_us`, `bg_cleaned`) and
/// `node{n}.pid{p}.{gauge}` for per-process gauges (`resident`, `dirty`),
/// where `n` is the event's source tag. Non-gauge events are ignored, so
/// the sink can share a fanout with heavier exporters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeriesSet {
    series: BTreeMap<String, TimeSeries>,
}

impl SeriesSet {
    /// An empty set.
    pub fn new() -> Self {
        SeriesSet::default()
    }

    /// Series names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The series named `name`, if any samples arrived for it.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no gauge events arrived.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Iterate `(name, series)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold `other` into `self`: series with the same name merge via
    /// [`TimeSeries::merge`], unseen names are adopted whole. The name
    /// map is a `BTreeMap`, so iteration order never depends on merge
    /// order; per-series point order is pinned by the stable time merge.
    pub fn merge(&mut self, other: &SeriesSet) {
        for (name, series) in &other.series {
            self.series.entry(name.clone()).or_default().merge(series);
        }
    }

    fn push(&mut self, name: String, t_us: u64, value: u64) {
        self.series
            .entry(name)
            .or_default()
            .points
            .push(SeriesPoint { t_us, value });
    }
}

impl Observer for SeriesSet {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        let t = at.as_us();
        // Mirror accepted telemetry samples into the armed flight
        // recorder's bounded sample ring (a no-op when disarmed), so an
        // incident dump carries the most recent gauge readings alongside
        // the raw event window.
        if matches!(ev, ObsEvent::NodeGauge { .. } | ObsEvent::ProcGauge { .. })
            && agp_obs::flight::armed()
        {
            agp_obs::flight::mirror_sample(&ev.to_json_line(at, src));
        }
        match *ev {
            ObsEvent::NodeGauge {
                free_frames,
                dirty_pages,
                disk_backlog_us,
                disk_busy_us,
                bg_cleaned,
            } => {
                for (gauge, value) in [
                    ("free_frames", free_frames),
                    ("dirty_pages", dirty_pages),
                    ("disk_backlog_us", disk_backlog_us),
                    ("disk_busy_us", disk_busy_us),
                    ("bg_cleaned", bg_cleaned),
                ] {
                    self.push(format!("node{src}.{gauge}"), t, value);
                }
            }
            ObsEvent::ProcGauge {
                pid,
                resident,
                dirty,
            } => {
                self.push(format!("node{src}.pid{pid}.resident"), t, resident);
                self.push(format!("node{src}.pid{pid}.dirty"), t, dirty);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_gauge(free: u64, busy: u64) -> ObsEvent {
        ObsEvent::NodeGauge {
            free_frames: free,
            dirty_pages: 2,
            disk_backlog_us: 0,
            disk_busy_us: busy,
            bg_cleaned: 0,
        }
    }

    #[test]
    fn gauges_fold_into_named_series() {
        let mut s = SeriesSet::new();
        s.on_event(SimTime::from_us(10), 0, &node_gauge(100, 5));
        s.on_event(SimTime::from_us(20), 0, &node_gauge(90, 9));
        s.on_event(
            SimTime::from_us(20),
            0,
            &ObsEvent::ProcGauge {
                pid: 3,
                resident: 64,
                dirty: 8,
            },
        );
        // 5 node gauges + 2 proc gauges.
        assert_eq!(s.len(), 7);
        let free = s.get("node0.free_frames").unwrap();
        assert_eq!(free.len(), 2);
        assert_eq!(free.min(), Some(90));
        assert_eq!(free.max(), Some(100));
        assert_eq!(free.mean(), Some(95));
        assert_eq!(
            free.last(),
            Some(SeriesPoint {
                t_us: 20,
                value: 90
            })
        );
        assert_eq!(s.get("node0.pid3.resident").unwrap().len(), 1);
        assert_eq!(s.get("node0.pid3.dirty").unwrap().len(), 1);
        assert!(s.get("node1.free_frames").is_none());
    }

    #[test]
    fn non_gauge_events_are_ignored() {
        let mut s = SeriesSet::new();
        s.on_event(
            SimTime::ZERO,
            0,
            &ObsEvent::ReadaheadHit { pid: 1, page: 2 },
        );
        assert!(s.is_empty());
    }

    #[test]
    fn deltas_unroll_cumulative_gauges() {
        let mut s = SeriesSet::new();
        for (t, busy) in [(10, 100), (20, 250), (30, 250), (40, 400)] {
            s.on_event(SimTime::from_us(t), 1, &node_gauge(0, busy));
        }
        let d = s.get("node1.disk_busy_us").unwrap().deltas();
        assert_eq!(
            d.iter().map(|p| (p.t_us, p.value)).collect::<Vec<_>>(),
            vec![(20, 150), (30, 0), (40, 150)]
        );
        assert!(s.get("node1.bg_cleaned").unwrap().deltas().len() == 3);
    }

    #[test]
    fn merge_interleaves_by_time_and_adopts_new_names() {
        // Shard 0 saw node0 at t=10,30; shard 1 saw node0 at t=20 and a
        // node1 series shard 0 never met.
        let mut a = SeriesSet::new();
        a.on_event(SimTime::from_us(10), 0, &node_gauge(100, 0));
        a.on_event(SimTime::from_us(30), 0, &node_gauge(80, 0));
        let mut b = SeriesSet::new();
        b.on_event(SimTime::from_us(20), 0, &node_gauge(90, 0));
        b.on_event(SimTime::from_us(5), 1, &node_gauge(7, 0));
        a.merge(&b);
        let free = a.get("node0.free_frames").unwrap();
        assert_eq!(
            free.points().iter().map(|p| p.t_us).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(a.get("node1.free_frames").unwrap().len(), 1);
    }

    #[test]
    fn merge_is_associative_and_reproduces_serial_sampling() {
        // One gauge stream round-robined across three shards: any merge
        // grouping in shard order must equal the serially-folded set.
        let sample = |t: u64| node_gauge(1000 - t, t);
        let mut serial = SeriesSet::new();
        let mut shards = vec![SeriesSet::new(); 3];
        for t in 0..30u64 {
            serial.on_event(SimTime::from_us(t), 0, &sample(t));
            shards[(t % 3) as usize].on_event(SimTime::from_us(t), 0, &sample(t));
        }
        let mut left = SeriesSet::new();
        left.merge(&shards[0]);
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        let mut bc = SeriesSet::new();
        bc.merge(&shards[1]);
        bc.merge(&shards[2]);
        let mut right = SeriesSet::new();
        right.merge(&shards[0]);
        right.merge(&bc);
        assert_eq!(left, right, "merge groupings agree");
        assert_eq!(left, serial, "merged shards equal serial sampling");
    }

    #[test]
    fn merge_ties_keep_left_points_first() {
        let mut a = SeriesSet::new();
        a.on_event(SimTime::from_us(10), 0, &node_gauge(1, 0));
        let mut b = SeriesSet::new();
        b.on_event(SimTime::from_us(10), 0, &node_gauge(2, 0));
        a.merge(&b);
        let vals: Vec<u64> = a
            .get("node0.free_frames")
            .unwrap()
            .points()
            .iter()
            .map(|p| p.value)
            .collect();
        assert_eq!(vals, vec![1, 2], "equal stamps keep self before other");
    }

    #[test]
    fn per_node_series_are_distinct() {
        let mut s = SeriesSet::new();
        s.on_event(SimTime::from_us(1), 0, &node_gauge(10, 0));
        s.on_event(SimTime::from_us(1), 1, &node_gauge(20, 0));
        assert_eq!(
            s.get("node0.free_frames").unwrap().last().unwrap().value,
            10
        );
        assert_eq!(
            s.get("node1.free_frames").unwrap().last().unwrap().value,
            20
        );
        let names: Vec<&str> = s.names().collect();
        assert!(names.windows(2).all(|w| w[0] < w[1]), "names are sorted");
    }
}
