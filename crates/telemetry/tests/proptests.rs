//! Property tests for the telemetry merge algebra.
//!
//! The fan-out (`agp run --jobs N`) splits a run's gauge stream across
//! shards and folds the per-shard sinks back together, so both sink
//! types must form the same merge monoid the collectors do: associative,
//! order-pinned, and invariant in the number of shards the stream was
//! cut into. These properties pin that contract for [`SeriesSet`]
//! (every-sample retention, stable time-interleaving merge) and
//! [`WindowedSeriesSet`] (O(windows) online aggregates).

use agp_obs::{ObsEvent, Observer};
use agp_sim::SimTime;
use agp_telemetry::{SeriesSet, WindowedSeriesSet};
use proptest::prelude::*;

/// One sampled gauge event: (sim µs, source node, gauge payload).
#[derive(Clone, Debug)]
struct Sample {
    t_us: u64,
    src: u32,
    value: u64,
    proc_gauge: bool,
}

impl Sample {
    fn event(&self) -> ObsEvent {
        if self.proc_gauge {
            ObsEvent::ProcGauge {
                pid: (self.value % 4) as u32,
                resident: self.value,
                dirty: self.value / 2,
            }
        } else {
            ObsEvent::NodeGauge {
                free_frames: self.value,
                dirty_pages: self.value % 7,
                disk_backlog_us: self.value.saturating_mul(3),
                disk_busy_us: self.value / 3,
                bg_cleaned: self.value % 11,
            }
        }
    }
}

fn sample() -> impl Strategy<Value = Sample> {
    (0u64..5_000, 0u32..3, any::<u64>(), any::<bool>()).prop_map(
        |(t_us, src, value, proc_gauge)| Sample {
            t_us,
            src,
            value,
            proc_gauge,
        },
    )
}

/// A time-ordered stream, the shape every sink sees in a real run.
fn stream() -> impl Strategy<Value = Vec<Sample>> {
    proptest::collection::vec(sample(), 0..120).prop_map(|mut v| {
        v.sort_by_key(|s| s.t_us);
        v
    })
}

fn feed_series(samples: &[Sample]) -> SeriesSet {
    let mut s = SeriesSet::new();
    for e in samples {
        s.on_event(SimTime::from_us(e.t_us), e.src, &e.event());
    }
    s
}

fn feed_windows(samples: &[Sample], window_us: u64) -> WindowedSeriesSet {
    let mut w = WindowedSeriesSet::new(window_us);
    for e in samples {
        w.on_event(SimTime::from_us(e.t_us), e.src, &e.event());
    }
    w
}

proptest! {
    /// Cutting a time-ordered stream into 2 or 8 contiguous shards and
    /// folding the shard sinks in shard order reproduces the serial
    /// `SeriesSet` exactly — point-for-point, including equal-timestamp
    /// ties, which the stable merge resolves left-before-right.
    #[test]
    fn series_set_merge_is_shard_count_invariant(samples in stream()) {
        let serial = feed_series(&samples);
        for shards in [2usize, 8] {
            let chunk = samples.len().div_ceil(shards).max(1);
            let mut merged = SeriesSet::new();
            for part in samples.chunks(chunk) {
                merged.merge(&feed_series(part));
            }
            prop_assert_eq!(&merged, &serial, "shards={}", shards);
        }
    }

    /// `SeriesSet::merge` is associative: `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)`.
    #[test]
    fn series_set_merge_is_associative(
        a in stream(), b in stream(), c in stream(),
    ) {
        let (sa, sb, sc) = (feed_series(&a), feed_series(&b), feed_series(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Windowed aggregates are commutative as well as associative, so
    /// the sharded fold matches serial for any shard count and any
    /// window width — no boundary alignment required.
    #[test]
    fn windowed_merge_is_shard_count_invariant(
        samples in stream(),
        window_us in 1u64..2_000,
    ) {
        let serial = feed_windows(&samples, window_us);
        for shards in [2usize, 8] {
            let chunk = samples.len().div_ceil(shards).max(1);
            let mut merged = WindowedSeriesSet::new(window_us);
            for part in samples.chunks(chunk) {
                merged.merge(&feed_windows(part, window_us)).unwrap();
            }
            prop_assert_eq!(
                format!("{merged:?}"),
                format!("{serial:?}"),
                "shards={}", shards
            );
        }
    }

    /// `WindowedSeriesSet::merge` is associative, and merging across
    /// mismatched window widths always errors instead of resampling.
    #[test]
    fn windowed_merge_is_associative_and_width_checked(
        a in stream(), b in stream(), c in stream(),
        window_us in 1u64..2_000,
    ) {
        let (wa, wb, wc) = (
            feed_windows(&a, window_us),
            feed_windows(&b, window_us),
            feed_windows(&c, window_us),
        );
        let mut left = wa.clone();
        left.merge(&wb).unwrap();
        left.merge(&wc).unwrap();
        let mut bc = wb;
        bc.merge(&wc).unwrap();
        let mut right = wa.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(format!("{left:?}"), format!("{right:?}"));

        let mut other_width = WindowedSeriesSet::new(window_us + 1);
        prop_assert!(other_width.merge(&wa).is_err());
    }
}
