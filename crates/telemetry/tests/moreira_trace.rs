//! End-to-end trace export over a real experiment run: same seed ⇒
//! byte-identical Perfetto output, with structurally valid nesting.

use agp_experiments::{profile_config, Scale};
use agp_metrics::Json;
use agp_obs::{shared, ObsLink};
use agp_sim::SimDur;
use agp_telemetry::{PerfettoTrace, SeriesSet};

fn export_moreira() -> String {
    let mut cfg =
        profile_config("moreira", Scale::Quick).expect("moreira is a registered experiment");
    cfg.sample_every = Some(SimDur::from_ms(500));
    let sink = shared(PerfettoTrace::new());
    let result = agp_cluster::run_observed(cfg, &ObsLink::to(sink.clone()))
        .expect("moreira quick run succeeds");
    assert!(result.makespan.as_us() > 0);
    let trace = match sink.lock() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    };
    trace.finish()
}

#[test]
fn same_seed_runs_export_byte_identical_traces() {
    let a = export_moreira();
    assert_eq!(a, export_moreira());
    assert!(a.len() > 1_000, "a real run renders a non-trivial trace");
}

#[test]
fn moreira_trace_is_structurally_valid() {
    let doc = Json::parse(&export_moreira()).expect("exported trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");

    let str_of = |e: &Json, k: &str| e.get(k).and_then(Json::as_str).unwrap_or("").to_string();
    let num_of = |e: &Json, k: &str| e.get(k).and_then(Json::as_f64);

    let mut switch_spans = Vec::new();
    let mut phase_spans = Vec::new();
    for e in events {
        let ph = str_of(e, "ph");
        assert!(
            matches!(ph.as_str(), "X" | "i" | "C" | "M"),
            "unexpected ph {ph:?}"
        );
        match ph.as_str() {
            "X" => {
                let ts = num_of(e, "ts").expect("span has ts");
                let dur = num_of(e, "dur").expect("span has dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                let name = str_of(e, "name");
                if name.starts_with("switch ") {
                    switch_spans.push((ts, dur));
                } else if matches!(name.as_str(), "stop" | "page_out" | "page_in" | "cont") {
                    phase_spans.push((ts, dur));
                }
            }
            "i" => assert_eq!(str_of(e, "s"), "t", "instants are thread-scoped"),
            "C" => {
                let args = e
                    .get("args")
                    .and_then(Json::as_object)
                    .expect("counter args");
                assert!(!args.is_empty());
            }
            _ => {}
        }
    }

    // A gang run has at least the placement switch, and every rendered
    // phase nests inside some switch span.
    assert!(!switch_spans.is_empty(), "no switch spans in trace");
    assert!(!phase_spans.is_empty(), "no switch-phase child spans");
    for &(ts, dur) in &phase_spans {
        assert!(
            switch_spans
                .iter()
                .any(|&(pts, pdur)| ts >= pts && ts + dur <= pts + pdur),
            "phase span at ts={ts} escapes every switch span"
        );
    }

    // The sampler ran: both mem counters and per-process counters exist.
    let counter_names: Vec<String> = events
        .iter()
        .filter(|e| str_of(e, "ph") == "C")
        .map(|e| str_of(e, "name"))
        .collect();
    assert!(counter_names.iter().any(|n| n == "mem"));
    assert!(counter_names.iter().any(|n| n.starts_with("pid")));
}

#[test]
fn series_set_folds_the_same_run() {
    let mut cfg =
        profile_config("moreira", Scale::Quick).expect("moreira is a registered experiment");
    cfg.sample_every = Some(SimDur::from_ms(500));
    let sink = shared(SeriesSet::new());
    agp_cluster::run_observed(cfg, &ObsLink::to(sink.clone())).expect("run succeeds");
    let set = match sink.lock() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    };
    let free = set.get("node0.free_frames").expect("node gauge series");
    assert!(free.len() > 1, "sampler fired repeatedly");
    assert!(free.min().is_some() && free.max().is_some());
    // Cumulative disk-busy gauge never decreases.
    let busy = set.get("node0.disk_busy_us").expect("disk gauge series");
    assert!(busy.deltas().iter().all(|p| p.value < u64::MAX));
    let pts = busy.points();
    assert!(pts.windows(2).all(|w| w[0].value <= w[1].value));
}
