//! Golden-file and structural tests for the Perfetto exporter.
//!
//! The synthetic-stream golden pins the exact bytes the exporter emits
//! for every event kind it renders. To re-bless after an intentional
//! format change:
//!
//! ```text
//! AGP_BLESS=1 cargo test -p agp-telemetry --test perfetto_golden
//! ```

use agp_metrics::Json;
use agp_obs::{ObsEvent, Observer, SwitchPhaseKind, SRC_CLUSTER};
use agp_sim::SimTime;
use agp_telemetry::PerfettoTrace;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/synthetic_trace.json"
);

/// A fixed stream touching every rendered event kind (and the dropped
/// per-page ones), in a realistic order.
fn synthetic_stream() -> Vec<(u64, u32, ObsEvent)> {
    let mut s = Vec::new();
    // Initial placement: switch 1 with all four phases non-trivial.
    for (phase, dur) in [
        (SwitchPhaseKind::Stop, 50),
        (SwitchPhaseKind::PageOut, 300),
        (SwitchPhaseKind::PageIn, 700),
        (SwitchPhaseKind::Cont, 25),
    ] {
        s.push((
            1_000,
            SRC_CLUSTER,
            ObsEvent::SwitchPhase {
                switch: 1,
                phase,
                dur_us: dur,
            },
        ));
    }
    s.push((
        1_000,
        SRC_CLUSTER,
        ObsEvent::SwitchDone {
            switch: 1,
            total_us: 1_075,
        },
    ));
    // Node 0 pages the incoming job in.
    s.push((
        1_050,
        0,
        ObsEvent::DiskRequest {
            write: false,
            extents: 2,
            pages: 32,
            wait_us: 0,
            seek_us: 2_400,
            service_us: 4_000,
        },
    ));
    // Per-page replay detail (dropped) ahead of its summary.
    s.push((1_060, 0, ObsEvent::ReplayPage { pid: 1, page: 40 }));
    s.push((
        1_060,
        0,
        ObsEvent::Replay {
            pid: 1,
            pages: 32,
            skipped: 3,
        },
    ));
    // Per-page noise that must not appear in the trace.
    s.push((
        1_100,
        0,
        ObsEvent::PageFault {
            pid: 1,
            page: 7,
            major: true,
        },
    ));
    s.push((
        1_100,
        0,
        ObsEvent::MajorFault {
            pid: 1,
            page: 7,
            readahead: 4,
            write_pages: 0,
            read_pages: 5,
        },
    ));
    s.push((1_100, 0, ObsEvent::ReadaheadHit { pid: 1, page: 8 }));
    s.push((
        1_200,
        0,
        ObsEvent::Evict {
            pid: 2,
            page: 9,
            false_eviction: false,
            recorded: true,
        },
    ));
    // A fault stall and the reclaim it triggered.
    s.push((
        1_100,
        SRC_CLUSTER,
        ObsEvent::FaultService {
            pid: 1,
            page: 7,
            wait_us: 4_200,
        },
    ));
    s.push((
        1_150,
        0,
        ObsEvent::Reclaim {
            target: 64,
            freed: 60,
            write_pages: 12,
        },
    ));
    s.push((
        1_150,
        0,
        ObsEvent::EvictBatch {
            pid: 2,
            pages: 60,
            write_pages: 12,
        },
    ));
    s.push((
        1_200,
        0,
        ObsEvent::DiskRequest {
            write: true,
            extents: 1,
            pages: 12,
            wait_us: 4_000,
            seek_us: 700,
            service_us: 1_500,
        },
    ));
    // Node 1 runs the background writer and an aggressive page-out.
    s.push((2_000, 1, ObsEvent::BgTick { pid: 3, pages: 8 }));
    s.push((2_100, 1, ObsEvent::AggressiveOut { pid: 3, pages: 40 }));
    // A barrier release for job 0.
    s.push((
        2_500,
        0,
        ObsEvent::BarrierWait {
            ranks: 4,
            skew_us: 120,
            lag_us: 30,
        },
    ));
    // One telemetry sample on each node.
    for (t, node) in [(3_000u64, 0u32), (3_000, 1)] {
        s.push((
            t,
            node,
            ObsEvent::NodeGauge {
                free_frames: 100 + node as u64,
                dirty_pages: 20,
                disk_backlog_us: 500,
                disk_busy_us: 9_000,
                bg_cleaned: 8,
            },
        ));
        s.push((
            t,
            node,
            ObsEvent::ProcGauge {
                pid: 1 + node,
                resident: 256,
                dirty: 16,
            },
        ));
    }
    s
}

fn render_synthetic() -> String {
    let mut tr = PerfettoTrace::new();
    for (t, src, ev) in synthetic_stream() {
        tr.on_event(SimTime::from_us(t), src, &ev);
    }
    tr.finish()
}

#[test]
fn synthetic_stream_matches_the_committed_golden() {
    let got = render_synthetic();
    if std::env::var_os("AGP_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = include_str!("goldens/synthetic_trace.json");
    assert_eq!(
        got, want,
        "Perfetto render drifted from tests/goldens/synthetic_trace.json; \
         re-bless with AGP_BLESS=1 if the change is intentional"
    );
}

#[test]
fn golden_is_valid_json_with_nested_switch_phases() {
    let doc = Json::parse(&render_synthetic()).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let field = |e: &Json, k: &str| -> f64 { e.get(k).and_then(Json::as_f64).unwrap_or(-1.0) };
    let name = |e: &Json| -> String {
        e.get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    };

    // Every phase span lies inside its parent switch span, on the same
    // track, and the phases tile the parent's duration exactly.
    let spans: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    let parent = spans
        .iter()
        .find(|e| name(e) == "switch 1")
        .expect("switch parent span");
    let (p_ts, p_dur) = (field(parent, "ts"), field(parent, "dur"));
    let phase_names = ["stop", "page_out", "page_in", "cont"];
    let phases: Vec<&&Json> = spans
        .iter()
        .filter(|e| phase_names.contains(&name(e).as_str()))
        .collect();
    assert_eq!(phases.len(), 4);
    let mut tiled = 0.0;
    for ph in &phases {
        let (ts, dur) = (field(ph, "ts"), field(ph, "dur"));
        assert!(
            ts >= p_ts && ts + dur <= p_ts + p_dur,
            "phase escapes parent"
        );
        assert_eq!(field(ph, "pid"), field(parent, "pid"));
        assert_eq!(field(ph, "tid"), field(parent, "tid"));
        assert_eq!(ts, p_ts + tiled, "phases are contiguous");
        tiled += dur;
    }
    assert_eq!(tiled, p_dur, "phases tile the switch exactly");

    // Counter samples exist for both nodes, and every pid in use has a
    // process_name metadata record.
    let counters: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .collect();
    assert!(counters.iter().any(|e| field(e, "pid") == 1.0));
    assert!(counters.iter().any(|e| field(e, "pid") == 2.0));
    let named: Vec<f64> = events
        .iter()
        .filter(|e| name(e) == "process_name")
        .map(|e| field(e, "pid"))
        .collect();
    for e in events {
        let pid = field(e, "pid");
        assert!(named.contains(&pid), "pid {pid} used before being named");
    }

    // Dropped per-page events never leak through.
    for e in events {
        let n = name(e);
        assert!(!n.contains("page_fault") && !n.contains("readahead"));
    }
}
