//! Property tests for the gang scheduler: matrix placement soundness and
//! rotation fairness under arbitrary job mixes and completions.

use agp_gang::{GangScheduler, JobId, NodeSet, ScheduleMatrix};
use agp_sim::SimDur;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Placement never double-books a node within a row, for any job mix.
    #[test]
    fn matrix_rows_never_overlap(masks in prop::collection::vec(1u64..(1 << 8), 1..40)) {
        let mut m = ScheduleMatrix::new(8);
        for (i, &mask) in masks.iter().enumerate() {
            m.place(JobId(i as u32), NodeSet(mask)).unwrap();
        }
        for row in 0..m.slots() {
            let mut seen = NodeSet::EMPTY;
            for &(_, ns) in m.row_jobs(row) {
                prop_assert!(!seen.intersects(ns), "row {} double-books", row);
                seen = seen.union(ns);
            }
        }
        // Every job is findable exactly once.
        for i in 0..masks.len() {
            prop_assert!(m.find_job(JobId(i as u32)).is_some());
        }
    }

    /// Removing jobs in any order keeps the matrix consistent and ends
    /// empty.
    #[test]
    fn matrix_removal_consistent(
        masks in prop::collection::vec(1u64..(1 << 6), 1..20),
        order_seed in any::<u64>(),
    ) {
        let mut m = ScheduleMatrix::new(6);
        for (i, &mask) in masks.iter().enumerate() {
            m.place(JobId(i as u32), NodeSet(mask)).unwrap();
        }
        // Deterministic pseudo-random removal order.
        let mut ids: Vec<u32> = (0..masks.len() as u32).collect();
        let mut s = order_seed;
        for i in (1..ids.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ids.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for id in ids {
            prop_assert!(m.remove(JobId(id)).is_some());
            prop_assert!(m.find_job(JobId(id)).is_none());
            // No empty rows survive compaction.
            for row in 0..m.slots() {
                prop_assert!(!m.row_jobs(row).is_empty());
            }
        }
        prop_assert_eq!(m.slots(), 0);
    }

    /// Round-robin rotation over full-cluster jobs is fair: after k
    /// full cycles every job has been scheduled exactly k times.
    #[test]
    fn rotation_is_fair(njobs in 2usize..8, cycles in 1usize..5) {
        let mut s = GangScheduler::new(4, SimDur::from_mins(5));
        let all = NodeSet::first_n(4);
        for j in 0..njobs {
            s.add_job(JobId(j as u32), all, None).unwrap();
        }
        let mut counts: HashMap<JobId, usize> = HashMap::new();
        let start = s.start().unwrap();
        *counts.entry(start.inn[0]).or_default() += 1;
        for _ in 0..(njobs * cycles - 1) {
            let plan = s.rotate().unwrap();
            prop_assert_eq!(plan.out.len(), 1);
            prop_assert_eq!(plan.inn.len(), 1);
            *counts.entry(plan.inn[0]).or_default() += 1;
        }
        for j in 0..njobs {
            prop_assert_eq!(counts[&JobId(j as u32)], cycles, "job {} unfair", j);
        }
    }

    /// Finishing jobs in arbitrary order always leaves a consistent
    /// schedule: the active slot only holds live jobs, and the scheduler
    /// empties exactly when the last job finishes.
    #[test]
    fn completion_in_any_order(njobs in 1usize..6, order_seed in any::<u64>()) {
        let mut s = GangScheduler::new(2, SimDur::from_mins(5));
        let all = NodeSet::first_n(2);
        for j in 0..njobs {
            s.add_job(JobId(j as u32), all, None).unwrap();
        }
        s.start().unwrap();
        let mut ids: Vec<u32> = (0..njobs as u32).collect();
        let mut seed = order_seed;
        for i in (1..ids.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ids.swap(i, (seed % (i as u64 + 1)) as usize);
        }
        for (n_done, id) in ids.iter().enumerate() {
            let _ = s.job_finished(JobId(*id));
            let remaining = njobs - n_done - 1;
            prop_assert_eq!(s.is_empty(), remaining == 0);
            let active = s.active_jobs();
            for a in &active {
                prop_assert!(
                    ids[n_done + 1..].contains(&a.0),
                    "active job {a} already finished"
                );
            }
            if remaining > 0 {
                prop_assert!(!active.is_empty(), "cluster idles while jobs remain");
            }
        }
    }
}
