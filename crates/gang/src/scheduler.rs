//! Quantum rotation over the scheduling matrix.
//!
//! The scheduler is time-free: it answers "which jobs stop, which start,
//! and how long is the new slot's quantum" — the simulation layer owns the
//! clock and carries out the paper's STOP → adaptive-paging → CONT switch
//! protocol.

use crate::matrix::{JobId, NodeSet, ScheduleMatrix};
use agp_sim::SimDur;
use std::collections::BTreeMap;

/// The outcome of a rotation: stop everything in `out`, start everything
/// in `inn`, and run the new slot for `quantum`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchPlan {
    /// Jobs being descheduled (empty at the very first activation).
    pub out: Vec<JobId>,
    /// Jobs being scheduled.
    pub inn: Vec<JobId>,
    /// Quantum of the incoming slot.
    pub quantum: SimDur,
}

/// Round-robin gang scheduler over an Ousterhout matrix with per-job
/// quantum overrides (the paper gives SP a 7-minute quantum where the
/// default is 5, §4.2).
#[derive(Clone, Debug)]
pub struct GangScheduler {
    matrix: ScheduleMatrix,
    default_quantum: SimDur,
    quantum_override: BTreeMap<JobId, SimDur>,
    /// Index of the active row, if the schedule has started.
    active_row: Option<usize>,
    /// Bumped on every structural change / rotation; lets the simulation
    /// discard stale quantum-expiry events after an early job completion.
    generation: u64,
}

impl GangScheduler {
    /// A scheduler for `nodes` nodes with the given default quantum.
    pub fn new(nodes: u32, default_quantum: SimDur) -> Self {
        GangScheduler {
            matrix: ScheduleMatrix::new(nodes),
            default_quantum,
            quantum_override: BTreeMap::new(),
            active_row: None,
            generation: 0,
        }
    }

    /// The underlying matrix (read-only).
    pub fn matrix(&self) -> &ScheduleMatrix {
        &self.matrix
    }

    /// Current generation; quantum-expiry events carry the generation they
    /// were scheduled under and are ignored if it has moved on.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Register a job on `nodeset`, optionally with its own quantum.
    pub fn add_job(
        &mut self,
        job: JobId,
        nodeset: NodeSet,
        quantum: Option<SimDur>,
    ) -> Result<usize, String> {
        let row = self.matrix.place(job, nodeset)?;
        if let Some(q) = quantum {
            self.quantum_override.insert(job, q);
        }
        self.generation += 1;
        Ok(row)
    }

    /// Jobs in the currently active slot.
    pub fn active_jobs(&self) -> Vec<JobId> {
        match self.active_row {
            Some(r) if r < self.matrix.slots() => {
                self.matrix.row_jobs(r).iter().map(|&(j, _)| j).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Whether any job remains.
    pub fn is_empty(&self) -> bool {
        self.matrix.slots() == 0
    }

    /// Whether the schedule has an active slot (i.e. [`Self::start`]
    /// has run and jobs remain). A scheduler drained by
    /// [`Self::job_finished`] goes inactive and needs a fresh `start`
    /// after re-admission — the crash-recovery requeue path uses this.
    pub fn is_active(&self) -> bool {
        self.active_row.is_some()
    }

    /// Whether `job` is currently placed in the matrix.
    pub fn has_job(&self, job: JobId) -> bool {
        self.matrix.find_job(job).is_some()
    }

    /// Quantum of row `r`: the longest override among its jobs, or the
    /// default.
    fn row_quantum(&self, r: usize) -> SimDur {
        self.matrix
            .row_jobs(r)
            .iter()
            .filter_map(|(j, _)| self.quantum_override.get(j).copied())
            .fold(self.default_quantum, SimDur::max)
    }

    /// Activate the first slot. Returns `None` if no jobs are registered.
    pub fn start(&mut self) -> Option<SwitchPlan> {
        if self.matrix.slots() == 0 {
            return None;
        }
        self.active_row = Some(0);
        self.generation += 1;
        Some(SwitchPlan {
            out: Vec::new(),
            inn: self.matrix.row_jobs(0).iter().map(|&(j, _)| j).collect(),
            quantum: self.row_quantum(0),
        })
    }

    /// Rotate to the next slot (quantum expiry). Returns `None` when there
    /// is at most one slot — the active job keeps running with no further
    /// switches, exactly like a gang scheduler whose competitor finished.
    pub fn rotate(&mut self) -> Option<SwitchPlan> {
        let slots = self.matrix.slots();
        let cur = self.active_row?;
        if slots <= 1 {
            return None;
        }
        let next = (cur + 1) % slots;
        let out = self.matrix.row_jobs(cur).iter().map(|&(j, _)| j).collect();
        let inn = self.matrix.row_jobs(next).iter().map(|&(j, _)| j).collect();
        self.active_row = Some(next);
        self.generation += 1;
        Some(SwitchPlan {
            out,
            inn,
            quantum: self.row_quantum(next),
        })
    }

    /// Remove a finished job. If it was in the active slot and other slots
    /// remain, returns the switch to perform immediately (the scheduler
    /// does not idle the cluster for the rest of the quantum).
    pub fn job_finished(&mut self, job: JobId) -> Option<SwitchPlan> {
        let (row, _) = self.matrix.find_job(job)?;
        let was_active = self.active_row == Some(row);
        let active_before = self.active_row;
        self.matrix.remove(job);
        self.quantum_override.remove(&job);
        self.generation += 1;

        let slots = self.matrix.slots();
        if slots == 0 {
            self.active_row = None;
            return None;
        }
        // Re-index the active row after compaction.
        if let Some(a) = active_before {
            self.active_row = Some(if row < a { a - 1 } else { a.min(slots - 1) });
        }
        if was_active {
            let next = self.active_row.unwrap_or(0).min(slots - 1);
            // If the freed row still holds co-scheduled jobs, they keep
            // running out the quantum; only switch when the slot emptied.
            if row < slots && !self.matrix.row_jobs(next).is_empty() && was_active {
                let next_row = next % slots;
                self.active_row = Some(next_row);
                return Some(SwitchPlan {
                    out: Vec::new(),
                    inn: self
                        .matrix
                        .row_jobs(next_row)
                        .iter()
                        .map(|&(j, _)| j)
                        .collect(),
                    quantum: self.row_quantum(next_row),
                });
            } else if row >= slots {
                // Active row disappeared entirely; wrap to row 0.
                self.active_row = Some(0);
                return Some(SwitchPlan {
                    out: Vec::new(),
                    inn: self.matrix.row_jobs(0).iter().map(|&(j, _)| j).collect(),
                    quantum: self.row_quantum(0),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_job_sched() -> GangScheduler {
        let mut s = GangScheduler::new(4, SimDur::from_mins(5));
        let all = NodeSet::first_n(4);
        s.add_job(JobId(0), all, None).unwrap();
        s.add_job(JobId(1), all, None).unwrap();
        s
    }

    #[test]
    fn start_activates_first_slot() {
        let mut s = two_job_sched();
        let plan = s.start().unwrap();
        assert!(plan.out.is_empty());
        assert_eq!(plan.inn, vec![JobId(0)]);
        assert_eq!(plan.quantum, SimDur::from_mins(5));
        assert_eq!(s.active_jobs(), vec![JobId(0)]);
    }

    #[test]
    fn rotation_alternates_jobs() {
        let mut s = two_job_sched();
        s.start().unwrap();
        let p1 = s.rotate().unwrap();
        assert_eq!(p1.out, vec![JobId(0)]);
        assert_eq!(p1.inn, vec![JobId(1)]);
        let p2 = s.rotate().unwrap();
        assert_eq!(p2.out, vec![JobId(1)]);
        assert_eq!(p2.inn, vec![JobId(0)]);
    }

    #[test]
    fn quantum_override_applies_to_its_slot() {
        // SP gets 7 minutes (§4.2); its partner keeps the 5-minute default.
        let mut s = GangScheduler::new(4, SimDur::from_mins(5));
        let all = NodeSet::first_n(4);
        s.add_job(JobId(0), all, Some(SimDur::from_mins(7)))
            .unwrap();
        s.add_job(JobId(1), all, None).unwrap();
        assert_eq!(s.start().unwrap().quantum, SimDur::from_mins(7));
        assert_eq!(s.rotate().unwrap().quantum, SimDur::from_mins(5));
        assert_eq!(s.rotate().unwrap().quantum, SimDur::from_mins(7));
    }

    #[test]
    fn single_job_never_rotates() {
        let mut s = GangScheduler::new(2, SimDur::from_mins(5));
        s.add_job(JobId(0), NodeSet::first_n(2), None).unwrap();
        s.start().unwrap();
        assert_eq!(s.rotate(), None);
        assert_eq!(s.active_jobs(), vec![JobId(0)]);
    }

    #[test]
    fn finishing_inactive_job_changes_nothing_now() {
        let mut s = two_job_sched();
        s.start().unwrap(); // job0 active
        assert_eq!(s.job_finished(JobId(1)), None);
        assert_eq!(s.active_jobs(), vec![JobId(0)]);
        assert_eq!(s.rotate(), None, "one slot left");
    }

    #[test]
    fn finishing_active_job_switches_immediately() {
        let mut s = two_job_sched();
        s.start().unwrap(); // job0 active
        let plan = s.job_finished(JobId(0)).unwrap();
        assert!(plan.out.is_empty(), "finished job needs no STOP");
        assert_eq!(plan.inn, vec![JobId(1)]);
        assert_eq!(s.active_jobs(), vec![JobId(1)]);
        assert!(s.rotate().is_none());
    }

    #[test]
    fn finishing_last_job_empties_schedule() {
        let mut s = two_job_sched();
        s.start().unwrap();
        s.job_finished(JobId(1));
        assert_eq!(s.job_finished(JobId(0)), None);
        assert!(s.is_empty());
        assert!(s.active_jobs().is_empty());
    }

    #[test]
    fn requeue_after_drain_restarts_the_schedule() {
        // Crash-recovery shape: both jobs leave the matrix (one crashed,
        // one finished), then the crashed one is re-admitted.
        let mut s = two_job_sched();
        s.start().unwrap();
        assert!(s.is_active());
        assert!(s.has_job(JobId(0)));
        s.job_finished(JobId(1));
        s.job_finished(JobId(0));
        assert!(!s.is_active());
        assert!(!s.has_job(JobId(0)));
        s.add_job(JobId(0), NodeSet::first_n(4), None).unwrap();
        assert!(s.has_job(JobId(0)));
        assert!(!s.is_active(), "re-admission alone does not activate");
        let plan = s.start().unwrap();
        assert_eq!(plan.inn, vec![JobId(0)]);
        assert!(s.is_active());
    }

    #[test]
    fn generation_moves_on_every_change() {
        let mut s = two_job_sched();
        let g0 = s.generation();
        s.start().unwrap();
        let g1 = s.generation();
        assert!(g1 > g0);
        s.rotate().unwrap();
        assert!(s.generation() > g1);
    }

    #[test]
    fn three_jobs_round_robin() {
        let mut s = GangScheduler::new(2, SimDur::from_mins(5));
        let all = NodeSet::first_n(2);
        for j in 0..3 {
            s.add_job(JobId(j), all, None).unwrap();
        }
        s.start().unwrap();
        let seq: Vec<JobId> = (0..6).map(|_| s.rotate().unwrap().inn[0]).collect();
        assert_eq!(
            seq,
            vec![JobId(1), JobId(2), JobId(0), JobId(1), JobId(2), JobId(0)]
        );
    }

    #[test]
    fn middle_job_completion_keeps_rotation_consistent() {
        let mut s = GangScheduler::new(2, SimDur::from_mins(5));
        let all = NodeSet::first_n(2);
        for j in 0..3 {
            s.add_job(JobId(j), all, None).unwrap();
        }
        s.start().unwrap(); // active row 0 (job0)
        s.rotate().unwrap(); // active row 1 (job1)
        s.rotate().unwrap(); // active row 2 (job2)
        assert_eq!(s.job_finished(JobId(0)), None, "inactive job");
        // Active row index must shift down with the compaction.
        assert_eq!(s.active_jobs(), vec![JobId(2)]);
        let p = s.rotate().unwrap();
        assert_eq!(p.inn, vec![JobId(1)]);
    }
}
