//! # agp-gang — the user-level gang scheduler
//!
//! The paper's scheduler (§3.5, Fig. 5) is a user-level process that
//! timeshares the cluster between parallel jobs: it maintains a scheduling
//! table (an Ousterhout matrix — rows are time slots, columns are nodes),
//! and at each quantum boundary sends `SIGSTOP` to every process of the
//! outgoing job and `SIGCONT` to every process of the incoming one,
//! coordinated across all nodes. Between the STOP and the CONT it invokes
//! the kernel's adaptive-paging API.
//!
//! This crate implements the scheduling table and rotation logic,
//! deliberately free of any simulation-time machinery: the cluster layer
//! asks *"what switches now?"* and carries out the signal protocol and the
//! paging calls itself. A batch (run-to-completion) mode provides the
//! paper's `batch` baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod scheduler;

pub use matrix::{JobId, NodeSet, ScheduleMatrix};
pub use scheduler::{GangScheduler, SwitchPlan};
