//! The Ousterhout scheduling matrix: rows are time slots, columns are
//! nodes; a job occupies one row across the set of nodes it runs on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A gang-scheduled job identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A set of cluster nodes (bitmask; supports clusters up to 64 nodes,
/// ample for the paper's 4–16 node experiments).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct NodeSet(pub u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// The first `n` nodes.
    pub fn first_n(n: u32) -> Self {
        assert!(n <= 64, "at most 64 nodes");
        if n == 64 {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << n) - 1)
        }
    }

    /// Set containing exactly `node`.
    pub fn single(node: u32) -> Self {
        assert!(node < 64);
        NodeSet(1 << node)
    }

    /// Union.
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Whether the sets share any node.
    pub fn intersects(self, other: NodeSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `node` is a member.
    pub fn contains(self, node: u32) -> bool {
        node < 64 && self.0 & (1 << node) != 0
    }

    /// Number of nodes in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate member node indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        (0..64u32).filter(move |&i| self.contains(i))
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nodes{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// One row (time slot) of the matrix.
#[derive(Clone, Debug, Default)]
struct Row {
    jobs: Vec<(JobId, NodeSet)>,
    occupied: NodeSet,
}

/// The scheduling table.
///
/// Placement is first-fit: a new job lands in the first row whose occupied
/// node set does not intersect the job's nodes, creating a new row if none
/// fits — the classic Ousterhout construction.
#[derive(Clone, Debug)]
pub struct ScheduleMatrix {
    nodes: u32,
    rows: Vec<Row>,
}

impl ScheduleMatrix {
    /// A matrix over a cluster of `nodes` nodes.
    pub fn new(nodes: u32) -> Self {
        assert!((1..=64).contains(&nodes));
        ScheduleMatrix {
            nodes,
            rows: Vec::new(),
        }
    }

    /// Cluster size.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of rows (time slots).
    pub fn slots(&self) -> usize {
        self.rows.len()
    }

    /// Place `job` on `nodeset`; returns the row index it landed in.
    pub fn place(&mut self, job: JobId, nodeset: NodeSet) -> Result<usize, String> {
        if nodeset.is_empty() {
            return Err(format!("{job}: empty node set"));
        }
        if let Some(n) = nodeset.iter().find(|&n| n >= self.nodes) {
            return Err(format!("{job}: node {n} outside cluster of {}", self.nodes));
        }
        if self.find_job(job).is_some() {
            return Err(format!("{job}: already placed"));
        }
        for (i, row) in self.rows.iter_mut().enumerate() {
            if !row.occupied.intersects(nodeset) {
                row.jobs.push((job, nodeset));
                row.occupied = row.occupied.union(nodeset);
                return Ok(i);
            }
        }
        self.rows.push(Row {
            jobs: vec![(job, nodeset)],
            occupied: nodeset,
        });
        Ok(self.rows.len() - 1)
    }

    /// Locate a job: `(row, nodeset)`.
    pub fn find_job(&self, job: JobId) -> Option<(usize, NodeSet)> {
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(&(_, ns)) = row.jobs.iter().find(|(j, _)| *j == job) {
                return Some((i, ns));
            }
        }
        None
    }

    /// Remove a completed job; empty rows are dropped (the matrix
    /// compacts, like the paper's scheduler reclaiming a slot). Returns
    /// the row it was removed from.
    pub fn remove(&mut self, job: JobId) -> Option<usize> {
        let (row_idx, _) = self.find_job(job)?;
        let row = &mut self.rows[row_idx];
        row.jobs.retain(|(j, _)| *j != job);
        row.occupied = row
            .jobs
            .iter()
            .fold(NodeSet::EMPTY, |acc, (_, ns)| acc.union(*ns));
        if row.jobs.is_empty() {
            self.rows.remove(row_idx);
        }
        Some(row_idx)
    }

    /// Jobs scheduled in row `idx`.
    pub fn row_jobs(&self, idx: usize) -> &[(JobId, NodeSet)] {
        &self.rows[idx].jobs
    }

    /// Fraction of (row × node) cells occupied — the utilization figure
    /// gang-scheduling papers track.
    pub fn utilization(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let occupied: u32 = self.rows.iter().map(|r| r.occupied.len()).sum();
        occupied as f64 / (self.rows.len() as u32 * self.nodes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_basics() {
        let s = NodeSet::first_n(4);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(3) && !s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(NodeSet::single(2).intersects(s));
        assert!(!NodeSet::single(9).intersects(s));
        assert_eq!(NodeSet::first_n(64).len(), 64);
    }

    #[test]
    fn full_cluster_jobs_stack_in_rows() {
        // The paper's setup: every job spans all nodes, one job per slot.
        let mut m = ScheduleMatrix::new(4);
        let all = NodeSet::first_n(4);
        assert_eq!(m.place(JobId(0), all).unwrap(), 0);
        assert_eq!(m.place(JobId(1), all).unwrap(), 1);
        assert_eq!(m.slots(), 2);
        assert!((m.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_jobs_share_a_row() {
        let mut m = ScheduleMatrix::new(4);
        let left = NodeSet::first_n(2);
        let right = NodeSet(0b1100);
        assert_eq!(m.place(JobId(0), left).unwrap(), 0);
        assert_eq!(
            m.place(JobId(1), right).unwrap(),
            0,
            "disjoint -> same slot"
        );
        assert_eq!(m.slots(), 1);
        assert_eq!(m.row_jobs(0).len(), 2);
    }

    #[test]
    fn overlapping_jobs_get_new_rows() {
        let mut m = ScheduleMatrix::new(4);
        assert_eq!(m.place(JobId(0), NodeSet::first_n(3)).unwrap(), 0);
        assert_eq!(m.place(JobId(1), NodeSet::first_n(2)).unwrap(), 1);
    }

    #[test]
    fn remove_compacts_empty_rows() {
        let mut m = ScheduleMatrix::new(2);
        let all = NodeSet::first_n(2);
        m.place(JobId(0), all).unwrap();
        m.place(JobId(1), all).unwrap();
        m.place(JobId(2), all).unwrap();
        assert_eq!(m.remove(JobId(1)), Some(1));
        assert_eq!(m.slots(), 2);
        assert_eq!(m.row_jobs(1)[0].0, JobId(2), "row 2 shifted down");
        assert_eq!(m.remove(JobId(1)), None, "already gone");
    }

    #[test]
    fn placement_errors() {
        let mut m = ScheduleMatrix::new(2);
        assert!(m.place(JobId(0), NodeSet::EMPTY).is_err());
        assert!(m.place(JobId(0), NodeSet::single(5)).is_err());
        m.place(JobId(0), NodeSet::first_n(2)).unwrap();
        assert!(m.place(JobId(0), NodeSet::first_n(2)).is_err(), "duplicate");
    }

    #[test]
    fn backfill_after_compaction() {
        let mut m = ScheduleMatrix::new(2);
        let all = NodeSet::first_n(2);
        m.place(JobId(0), all).unwrap();
        m.place(JobId(1), all).unwrap();
        m.remove(JobId(0));
        // Row 0 was dropped by compaction; job1 now owns row 0, so a new
        // full-cluster job opens row 1 — the matrix never grows beyond the
        // live multiprogramming level.
        assert_eq!(m.slots(), 1);
        assert_eq!(m.place(JobId(2), all).unwrap(), 1);
        assert_eq!(m.find_job(JobId(1)).unwrap().0, 0);
        assert_eq!(m.find_job(JobId(2)).unwrap().0, 1);
    }

    #[test]
    fn utilization_with_holes() {
        let mut m = ScheduleMatrix::new(4);
        m.place(JobId(0), NodeSet::first_n(4)).unwrap();
        m.place(JobId(1), NodeSet::first_n(2)).unwrap();
        assert!((m.utilization() - 0.75).abs() < 1e-12);
    }
}
