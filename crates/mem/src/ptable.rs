//! Per-process page tables: page state, reference/dirty bits, age, and a
//! per-process clock hand for Linux-2.2-style sweeps.

use crate::types::PageNum;
use agp_sim::SimTime;

/// Metadata for a page currently held in a physical frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resident {
    /// Hardware reference bit: set on every touch, cleared by clock sweeps.
    pub referenced: bool,
    /// Set on write touches; a dirty page must reach the swap device before
    /// its frame can be reused without losing data.
    pub dirty: bool,
    /// Instant of the most recent touch — the "age" used by the paper's
    /// selective page-out ("in the order of decreasing age", §3.1).
    pub last_ref: SimTime,
    /// Block of a still-valid swap copy, if one exists. A clean resident
    /// page with a valid copy can be reclaimed with **no** I/O (Linux's
    /// swap cache); a dirty page with `Some(b)` rewrites block `b` in
    /// place, preserving swap contiguity.
    pub swap_copy: Option<u64>,
    /// Working-set epoch of the most recent touch (see `Kernel` WSS
    /// tracking).
    pub epoch: u32,
}

/// State of one virtual page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageState {
    /// Never touched: the first access demand-zeroes a frame, no disk I/O.
    Untouched,
    /// Held in a physical frame.
    Resident(Resident),
    /// Only on the swap device, at the given block.
    Swapped {
        /// Swap block holding the page image.
        block: u64,
    },
}

impl PageState {
    /// Whether the page occupies a frame.
    pub fn is_resident(&self) -> bool {
        matches!(self, PageState::Resident(_))
    }
}

/// One process's page table plus bookkeeping counters.
#[derive(Clone, Debug)]
pub struct PageTable {
    pages: Vec<PageState>,
    resident: usize,
    dirty_resident: usize,
    /// Persistent clock position for sweep-style scans, so repeated sweeps
    /// make progress instead of rescanning the same prefix (mirrors the
    /// kernel keeping `swap_address` per mm in Linux 2.2).
    hand: usize,
}

impl PageTable {
    /// A table of `n` untouched pages.
    pub fn new(n: usize) -> Self {
        PageTable {
            pages: vec![PageState::Untouched; n],
            resident: 0,
            dirty_resident: 0,
            hand: 0,
        }
    }

    /// Address-space size in pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the address space is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of pages currently resident (the process RSS).
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Number of resident pages whose frame content is newer than any swap
    /// copy.
    pub fn dirty_resident(&self) -> usize {
        self.dirty_resident
    }

    /// Current clock-hand position.
    pub fn hand(&self) -> usize {
        self.hand
    }

    /// Advance the clock hand by `steps`, wrapping.
    pub fn advance_hand(&mut self, steps: usize) {
        if !self.pages.is_empty() {
            self.hand = (self.hand + steps) % self.pages.len();
        }
    }

    /// State of page `p`.
    pub fn state(&self, p: PageNum) -> &PageState {
        &self.pages[p.idx()]
    }

    /// Internal accessor that keeps the counters honest; all mutation goes
    /// through [`PageTable::set`].
    pub fn set(&mut self, p: PageNum, new: PageState) {
        let old = &self.pages[p.idx()];
        if old.is_resident() {
            self.resident -= 1;
            if matches!(old, PageState::Resident(r) if r.dirty) {
                self.dirty_resident -= 1;
            }
        }
        if new.is_resident() {
            self.resident += 1;
            if matches!(new, PageState::Resident(r) if r.dirty) {
                self.dirty_resident += 1;
            }
        }
        self.pages[p.idx()] = new;
    }

    /// Mutate a resident page's metadata in place via `f`; panics if the
    /// page is not resident. Keeps the dirty counter consistent.
    pub fn update_resident(&mut self, p: PageNum, f: impl FnOnce(&mut Resident)) {
        let PageState::Resident(mut r) = self.pages[p.idx()] else {
            // agp-lint: allow(panic-site): documented contract — callers match
            panic!("update_resident on non-resident page {p:?}");
        };
        let was_dirty = r.dirty;
        f(&mut r);
        if r.dirty != was_dirty {
            if r.dirty {
                self.dirty_resident += 1;
            } else {
                self.dirty_resident -= 1;
            }
        }
        self.pages[p.idx()] = PageState::Resident(r);
    }

    /// Iterate over `(PageNum, &PageState)` for all pages.
    pub fn iter(&self) -> impl Iterator<Item = (PageNum, &PageState)> {
        self.pages
            .iter()
            .enumerate()
            .map(|(i, s)| (PageNum(i as u32), s))
    }

    /// Iterate over resident pages only.
    pub fn iter_resident(&self) -> impl Iterator<Item = (PageNum, &Resident)> {
        self.pages.iter().enumerate().filter_map(|(i, s)| match s {
            PageState::Resident(r) => Some((PageNum(i as u32), r)),
            _ => None,
        })
    }

    /// Resident pages sorted oldest-first (by `last_ref`, ties by page
    /// number). This is the ordering selective/aggressive page-out uses.
    pub fn resident_oldest_first(&self) -> Vec<PageNum> {
        let mut v: Vec<(SimTime, PageNum)> =
            self.iter_resident().map(|(p, r)| (r.last_ref, p)).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, p)| p).collect()
    }

    /// Clock sweep from the stored hand position: visit up to `max_scan`
    /// pages; referenced resident pages get their bit cleared, and
    /// unreferenced resident pages are collected as eviction candidates
    /// (up to `max_victims`). The hand advances past every visited page.
    pub fn clock_sweep(&mut self, max_scan: usize, max_victims: usize) -> Vec<PageNum> {
        let n = self.pages.len();
        if n == 0 || max_victims == 0 {
            return Vec::new();
        }
        let mut victims = Vec::new();
        let mut scanned = 0;
        while scanned < max_scan.min(n) && victims.len() < max_victims {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            scanned += 1;
            if let PageState::Resident(mut r) = self.pages[i] {
                if r.referenced {
                    r.referenced = false;
                    self.pages[i] = PageState::Resident(r);
                } else {
                    victims.push(PageNum(i as u32));
                }
            }
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resident(t: u64, dirty: bool) -> PageState {
        PageState::Resident(Resident {
            referenced: true,
            dirty,
            last_ref: SimTime::from_us(t),
            swap_copy: None,
            epoch: 0,
        })
    }

    #[test]
    fn counters_follow_transitions() {
        let mut pt = PageTable::new(4);
        assert_eq!(pt.resident(), 0);
        pt.set(PageNum(0), resident(1, false));
        pt.set(PageNum(1), resident(2, true));
        assert_eq!(pt.resident(), 2);
        assert_eq!(pt.dirty_resident(), 1);
        pt.set(PageNum(1), PageState::Swapped { block: 9 });
        assert_eq!(pt.resident(), 1);
        assert_eq!(pt.dirty_resident(), 0);
        pt.set(PageNum(0), PageState::Untouched);
        assert_eq!(pt.resident(), 0);
    }

    #[test]
    fn update_resident_tracks_dirty() {
        let mut pt = PageTable::new(2);
        pt.set(PageNum(0), resident(1, false));
        pt.update_resident(PageNum(0), |r| r.dirty = true);
        assert_eq!(pt.dirty_resident(), 1);
        pt.update_resident(PageNum(0), |r| r.dirty = false);
        assert_eq!(pt.dirty_resident(), 0);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn update_nonresident_panics() {
        let mut pt = PageTable::new(1);
        pt.update_resident(PageNum(0), |_| {});
    }

    #[test]
    fn oldest_first_ordering() {
        let mut pt = PageTable::new(5);
        pt.set(PageNum(0), resident(50, false));
        pt.set(PageNum(2), resident(10, false));
        pt.set(PageNum(4), resident(30, false));
        assert_eq!(
            pt.resident_oldest_first(),
            vec![PageNum(2), PageNum(4), PageNum(0)]
        );
    }

    #[test]
    fn oldest_first_tie_breaks_by_page_number() {
        let mut pt = PageTable::new(3);
        for i in 0..3 {
            pt.set(PageNum(i), resident(7, false));
        }
        assert_eq!(
            pt.resident_oldest_first(),
            vec![PageNum(0), PageNum(1), PageNum(2)]
        );
    }

    #[test]
    fn clock_sweep_second_chance() {
        let mut pt = PageTable::new(3);
        for i in 0..3 {
            pt.set(PageNum(i), resident(1, false));
        }
        // First sweep clears all reference bits, evicts nothing.
        let v1 = pt.clock_sweep(3, 3);
        assert!(v1.is_empty());
        // Second sweep finds all pages unreferenced.
        let v2 = pt.clock_sweep(3, 3);
        assert_eq!(v2.len(), 3);
    }

    #[test]
    fn clock_sweep_respects_victim_cap() {
        let mut pt = PageTable::new(10);
        for i in 0..10 {
            let mut st = resident(1, false);
            if let PageState::Resident(r) = &mut st {
                r.referenced = false;
            }
            pt.set(PageNum(i), st);
        }
        let v = pt.clock_sweep(10, 4);
        assert_eq!(v.len(), 4);
        // Hand advanced past exactly the scanned pages.
        assert_eq!(pt.hand(), 4);
    }

    #[test]
    fn clock_sweep_skips_nonresident() {
        let mut pt = PageTable::new(4);
        pt.set(PageNum(1), PageState::Swapped { block: 3 });
        let mut st = resident(1, false);
        if let PageState::Resident(r) = &mut st {
            r.referenced = false;
        }
        pt.set(PageNum(3), st);
        let v = pt.clock_sweep(4, 4);
        assert_eq!(v, vec![PageNum(3)]);
    }

    #[test]
    fn clock_hand_wraps() {
        let mut pt = PageTable::new(4);
        pt.advance_hand(3);
        assert_eq!(pt.hand(), 3);
        pt.advance_hand(2);
        assert_eq!(pt.hand(), 1);
    }

    #[test]
    fn empty_table_is_safe() {
        let mut pt = PageTable::new(0);
        assert!(pt.is_empty());
        assert!(pt.clock_sweep(10, 10).is_empty());
        pt.advance_hand(5);
        assert_eq!(pt.hand(), 0);
    }
}
