//! Identifier newtypes and kernel tuning parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulated process identifier, unique within a cluster run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A virtual page index within one process's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageNum(pub u32);

impl PageNum {
    /// Index as usize for table access.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Kernel virtual-memory tuning parameters.
///
/// The watermarks reproduce the Linux "watermark style page-out model"
/// (paper §2): reclaim starts when free memory drops below
/// `freepages.min` and continues until it reaches `freepages.high`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VmParams {
    /// Total physical page frames on the node.
    pub total_frames: usize,
    /// Frames wired down and unavailable (the paper's `mlock()` trick used
    /// to shrink usable memory to 350 MB, §4).
    pub wired_frames: usize,
    /// Reclaim trigger: replacement runs when `free < freepages_min`.
    pub freepages_min: usize,
    /// Reclaim target: replacement stops once `free ≥ freepages_high`.
    pub freepages_high: usize,
    /// Swap-in read-ahead window in pages (Linux 2.2 default: 16, §3.3).
    pub readahead: usize,
}

impl VmParams {
    /// Parameters for a node with `total_frames` frames of which
    /// `wired_frames` are locked down, using proportional watermarks
    /// (min = 0.5 %, high = 2 % of usable frames, floors 32/128) and the
    /// Linux 2.2 read-ahead of 16 pages.
    ///
    /// The min–high gap sets the reclaim batch size: page-out bursts of a
    /// couple of thousand pages interleave with the fault-in stream, the
    /// read/write alternation visible in the paper's Fig. 6 first panel.
    pub fn for_frames(total_frames: usize, wired_frames: usize) -> Self {
        let usable = total_frames.saturating_sub(wired_frames).max(1);
        VmParams {
            total_frames,
            wired_frames,
            freepages_min: (usable / 200).max(32),
            freepages_high: (usable / 50).max(128),
            readahead: 16,
        }
    }

    /// Frames actually available for paging.
    pub fn usable_frames(&self) -> usize {
        self.total_frames.saturating_sub(self.wired_frames)
    }
}

/// Errors from the memory subsystem. These indicate configuration problems
/// (e.g. swap smaller than the workload) or simulation bugs, not normal
/// operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The swap device has no free extent large enough.
    SwapFull {
        /// Blocks requested.
        wanted: u64,
        /// Blocks free.
        free: u64,
    },
    /// No free frame was available for a mandatory allocation.
    OutOfFrames,
    /// Operation referenced a process the kernel does not know.
    NoSuchProc(ProcId),
    /// Operation referenced a page outside the process's address space.
    BadPage(ProcId, PageNum),
    /// Operation required a resident page, but the page is not resident.
    NotResident(ProcId, PageNum),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::SwapFull { wanted, free } => {
                write!(f, "swap full: wanted {wanted} blocks, {free} free")
            }
            MemError::OutOfFrames => write!(f, "no free page frames"),
            MemError::NoSuchProc(p) => write!(f, "unknown process {p}"),
            MemError::BadPage(p, pg) => write!(f, "page {pg:?} out of range for {p}"),
            MemError::NotResident(p, pg) => write!(f, "page {pg:?} of {p} is not resident"),
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmparams_watermarks_scale() {
        // 1 GiB node, 350 MiB usable after wiring (the paper's fig. 6 setup).
        let total = agp_sim::units::pages_from_mib(1024);
        let wired = total - agp_sim::units::pages_from_mib(350);
        let p = VmParams::for_frames(total, wired);
        assert_eq!(p.usable_frames(), agp_sim::units::pages_from_mib(350));
        assert!(p.freepages_min < p.freepages_high);
        assert!(p.freepages_high < p.usable_frames() / 10);
        assert_eq!(p.readahead, 16);
    }

    #[test]
    fn vmparams_floors_apply() {
        let p = VmParams::for_frames(1000, 0);
        assert_eq!(p.freepages_min, 32);
        assert_eq!(p.freepages_high, 128);
    }

    #[test]
    fn error_display() {
        let e = MemError::SwapFull {
            wanted: 10,
            free: 3,
        };
        assert!(e.to_string().contains("swap full"));
        assert!(MemError::NoSuchProc(ProcId(4)).to_string().contains("pid4"));
    }
}
