//! The per-node memory-management kernel: frames, page tables, swap, and
//! the mechanism API that paging *policies* (in `agp-core`) are written
//! against.

use crate::ptable::{PageState, PageTable, Resident};
use crate::swap::SwapSpace;
use crate::types::{MemError, PageNum, ProcId, VmParams};
use agp_disk::{extents_from_blocks, Extent};
use agp_obs::{ObsEvent, ObsLink};
use agp_sim::SimTime;
use std::collections::BTreeMap;

/// Result of touching a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The page was resident; bits updated, no fault.
    Hit,
    /// Major fault: the page image must be read from the given swap block.
    NeedsSwapIn {
        /// Swap block holding the page.
        block: u64,
    },
    /// Minor fault: first touch ever; a frame must be zero-filled (no I/O).
    NeedsZeroFill,
}

/// Result of mapping a page into a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapInOutcome {
    /// Page image must be read from this swap block (disk read required).
    Read {
        /// Swap block to read.
        block: u64,
    },
    /// Demand-zero fill; no disk traffic.
    Zeroed,
}

/// What eviction of a single page cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictOutcome {
    /// Clean page with a valid swap copy, or never-written page: frame
    /// reclaimed with no I/O.
    Dropped,
    /// Dirty page: its image must be written to this swap block.
    Write {
        /// Destination swap block.
        block: u64,
    },
}

/// Per-process memory bookkeeping.
#[derive(Clone, Debug)]
pub struct ProcMem {
    /// The page table.
    pub pt: PageTable,
    /// Current working-set epoch (bumped each time the process is granted
    /// a quantum).
    epoch: u32,
    /// Distinct pages referenced in the current epoch.
    wss_current: usize,
    /// Distinct pages referenced in the last completed epoch — the paper's
    /// WSS estimate ("using the page references during the incoming
    /// process' previous time quanta", §3.2).
    wss_last: Option<usize>,
}

impl ProcMem {
    fn new(pages: usize) -> Self {
        ProcMem {
            pt: PageTable::new(pages),
            epoch: 0,
            wss_current: 0,
            wss_last: None,
        }
    }

    /// Resident set size in pages.
    pub fn rss(&self) -> usize {
        self.pt.resident()
    }

    /// Distinct pages referenced so far in the current quantum.
    pub fn wss_current(&self) -> usize {
        self.wss_current
    }

    /// Distinct pages referenced during the previously completed quantum.
    pub fn wss_last(&self) -> Option<usize> {
        self.wss_last
    }
}

/// The simulated per-node kernel memory manager.
///
/// All state transitions preserve the frame-conservation invariant
/// `free + Σ rss == usable`; [`Kernel::check_invariants`] verifies it (and
/// swap/owner-map consistency) and is exercised heavily in tests.
#[derive(Clone, Debug)]
pub struct Kernel {
    params: VmParams,
    free: usize,
    swap: SwapSpace,
    procs: BTreeMap<ProcId, ProcMem>,
    /// Blocks that hold a *valid, current* page image → owning page.
    /// Covers both `Swapped` pages and clean resident pages' `swap_copy`.
    /// Used by read-ahead to chase swap-contiguous neighbors.
    swap_owner: BTreeMap<u64, (ProcId, PageNum)>,
    obs: ObsLink,
}

impl Kernel {
    /// A kernel managing `params.usable_frames()` frames and a swap device
    /// of `swap_blocks` blocks.
    pub fn new(params: VmParams, swap_blocks: u64) -> Self {
        let free = params.usable_frames();
        Kernel {
            params,
            free,
            swap: SwapSpace::new(swap_blocks),
            procs: BTreeMap::new(),
            swap_owner: BTreeMap::new(),
            obs: ObsLink::disabled(),
        }
    }

    /// Attach an observation link (fault and eviction events).
    pub fn set_observer(&mut self, obs: ObsLink) {
        self.obs = obs;
    }

    /// Kernel tuning parameters.
    pub fn params(&self) -> &VmParams {
        &self.params
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> usize {
        self.free
    }

    /// Whether free memory has fallen below `freepages.min` (reclaim must
    /// run before more frames are handed out).
    pub fn below_min(&self) -> bool {
        self.free < self.params.freepages_min
    }

    /// How many frames reclaim should free right now to honor the
    /// watermark model: to `freepages.high` if below `freepages.min`,
    /// otherwise nothing.
    pub fn reclaim_target(&self) -> usize {
        if self.below_min() {
            self.params.freepages_high.saturating_sub(self.free)
        } else {
            0
        }
    }

    /// The swap allocator (metrics / tests).
    pub fn swap(&self) -> &SwapSpace {
        &self.swap
    }

    /// Register a process with an address space of `pages` pages.
    pub fn register_proc(&mut self, pid: ProcId, pages: usize) {
        let prev = self.procs.insert(pid, ProcMem::new(pages));
        debug_assert!(prev.is_none(), "duplicate process registration {pid}");
    }

    /// Remove a process, releasing its frames and swap blocks.
    pub fn unregister_proc(&mut self, pid: ProcId) -> Result<(), MemError> {
        let pm = self.procs.remove(&pid).ok_or(MemError::NoSuchProc(pid))?;
        self.free += pm.pt.resident();
        for (page, st) in pm.pt.iter() {
            let block = match st {
                PageState::Swapped { block } => Some(*block),
                PageState::Resident(r) => r.swap_copy,
                PageState::Untouched => None,
            };
            if let Some(b) = block {
                self.swap.free_block(b);
                self.swap_owner.remove(&b);
            }
            let _ = page;
        }
        Ok(())
    }

    /// Access a process's bookkeeping.
    pub fn proc(&self, pid: ProcId) -> Result<&ProcMem, MemError> {
        self.procs.get(&pid).ok_or(MemError::NoSuchProc(pid))
    }

    fn proc_mut(&mut self, pid: ProcId) -> Result<&mut ProcMem, MemError> {
        self.procs.get_mut(&pid).ok_or(MemError::NoSuchProc(pid))
    }

    /// Iterate over `(pid, rss)` for all registered processes.
    pub fn procs_rss(&self) -> impl Iterator<Item = (ProcId, usize)> + '_ {
        self.procs.iter().map(|(&p, m)| (p, m.rss()))
    }

    /// The process with the largest RSS, excluding `exclude` — the victim
    /// Linux 2.2's `swap_out()` picks ("examines the process that has the
    /// largest memory size", paper §2).
    pub fn largest_rss_proc(&self, exclude: Option<ProcId>) -> Option<ProcId> {
        self.procs
            .iter()
            .filter(|(&p, _)| Some(p) != exclude)
            .max_by_key(|(&p, m)| (m.rss(), std::cmp::Reverse(p)))
            .filter(|(_, m)| m.rss() > 0)
            .map(|(&p, _)| p)
    }

    // ------------------------------------------------------------------
    // Touch / fault / map-in
    // ------------------------------------------------------------------

    /// Touch page `p` of `pid` at `now`. On a hit, updates the reference
    /// bit, age, dirty bit and WSS accounting; on a miss, reports what the
    /// fault handler must do (state is not changed until
    /// [`Kernel::map_in`]).
    pub fn touch(
        &mut self,
        pid: ProcId,
        p: PageNum,
        write: bool,
        now: SimTime,
    ) -> Result<TouchOutcome, MemError> {
        let pm = self.proc_mut(pid)?;
        if p.idx() >= pm.pt.len() {
            return Err(MemError::BadPage(pid, p));
        }
        match *pm.pt.state(p) {
            PageState::Resident(_) => {
                let epoch = pm.epoch;
                let mut fresh_ref = false;
                let mut stale_copy = None;
                pm.pt.update_resident(p, |r| {
                    r.referenced = true;
                    r.last_ref = now;
                    if write {
                        r.dirty = true;
                        // A write makes any swap copy stale; drop it (the
                        // Linux swap cache frees the entry on write), so
                        // the invariant "dirty ⟹ no swap copy" holds.
                        stale_copy = r.swap_copy.take();
                    }
                    if r.epoch != epoch {
                        r.epoch = epoch;
                        fresh_ref = true;
                    }
                });
                if fresh_ref {
                    pm.wss_current += 1;
                }
                if let Some(b) = stale_copy {
                    self.swap_owner.remove(&b);
                    self.swap.free_block(b);
                }
                Ok(TouchOutcome::Hit)
            }
            PageState::Swapped { block } => {
                self.obs.emit(now, || ObsEvent::PageFault {
                    pid: pid.0,
                    page: p.0,
                    major: true,
                });
                Ok(TouchOutcome::NeedsSwapIn { block })
            }
            PageState::Untouched => {
                self.obs.emit(now, || ObsEvent::PageFault {
                    pid: pid.0,
                    page: p.0,
                    major: false,
                });
                Ok(TouchOutcome::NeedsZeroFill)
            }
        }
    }

    /// Touch up to `max` consecutive pages starting at `first`, stopping
    /// at the first non-resident page. Returns `(hits, fault)` where
    /// `hits` is the number of resident pages touched and `fault` is the
    /// outcome for the first non-resident page, if one was reached within
    /// the run.
    ///
    /// Semantically identical to calling [`Kernel::touch`] in a loop; this
    /// batch form does one process lookup per run instead of per page,
    /// which dominates the executor's hot path (a class B LU run touches
    /// ~10⁷ pages).
    pub fn touch_run(
        &mut self,
        pid: ProcId,
        first: PageNum,
        max: usize,
        write: bool,
        now: SimTime,
    ) -> Result<(usize, Option<TouchOutcome>), MemError> {
        let _perf = agp_perf::scope(agp_perf::Span::MemTouch);
        let pm = self.procs.get_mut(&pid).ok_or(MemError::NoSuchProc(pid))?;
        let end = first.idx() + max;
        if max > 0 && end > pm.pt.len() {
            return Err(MemError::BadPage(pid, PageNum((end - 1) as u32)));
        }
        let epoch = pm.epoch;
        let mut hits = 0usize;
        let mut stale_copies: Vec<u64> = Vec::new();
        for i in first.idx()..end {
            let p = PageNum(i as u32);
            match *pm.pt.state(p) {
                PageState::Resident(_) => {
                    let mut fresh_ref = false;
                    pm.pt.update_resident(p, |r| {
                        r.referenced = true;
                        r.last_ref = now;
                        if write {
                            r.dirty = true;
                            if let Some(b) = r.swap_copy.take() {
                                stale_copies.push(b);
                            }
                        }
                        if r.epoch != epoch {
                            r.epoch = epoch;
                            fresh_ref = true;
                        }
                    });
                    if fresh_ref {
                        pm.wss_current += 1;
                    }
                    hits += 1;
                }
                PageState::Swapped { block } => {
                    for b in stale_copies {
                        self.swap_owner.remove(&b);
                        self.swap.free_block(b);
                    }
                    self.obs.emit(now, || ObsEvent::PageFault {
                        pid: pid.0,
                        page: p.0,
                        major: true,
                    });
                    return Ok((hits, Some(TouchOutcome::NeedsSwapIn { block })));
                }
                PageState::Untouched => {
                    for b in stale_copies {
                        self.swap_owner.remove(&b);
                        self.swap.free_block(b);
                    }
                    self.obs.emit(now, || ObsEvent::PageFault {
                        pid: pid.0,
                        page: p.0,
                        major: false,
                    });
                    return Ok((hits, Some(TouchOutcome::NeedsZeroFill)));
                }
            }
        }
        for b in stale_copies {
            self.swap_owner.remove(&b);
            self.swap.free_block(b);
        }
        Ok((hits, None))
    }

    /// Map page `p` of `pid` into a free frame at `now`.
    ///
    /// Consumes one free frame (fails with [`MemError::OutOfFrames`] if
    /// none are available — the caller must reclaim first). The page
    /// becomes resident-referenced-clean; a subsequent [`Kernel::touch`]
    /// sets the dirty bit if the access is a write.
    pub fn map_in(
        &mut self,
        pid: ProcId,
        p: PageNum,
        now: SimTime,
    ) -> Result<MapInOutcome, MemError> {
        if self.free == 0 {
            return Err(MemError::OutOfFrames);
        }
        let pm = self.procs.get_mut(&pid).ok_or(MemError::NoSuchProc(pid))?;
        if p.idx() >= pm.pt.len() {
            return Err(MemError::BadPage(pid, p));
        }
        let epoch = pm.epoch;
        let outcome = match *pm.pt.state(p) {
            PageState::Resident(_) => {
                debug_assert!(false, "map_in of already-resident page {pid}/{p:?}");
                return Ok(MapInOutcome::Zeroed);
            }
            PageState::Swapped { block } => {
                pm.pt.set(
                    p,
                    PageState::Resident(Resident {
                        referenced: true,
                        dirty: false,
                        last_ref: now,
                        swap_copy: Some(block),
                        epoch,
                    }),
                );
                MapInOutcome::Read { block }
            }
            PageState::Untouched => {
                pm.pt.set(
                    p,
                    PageState::Resident(Resident {
                        referenced: true,
                        dirty: false,
                        last_ref: now,
                        swap_copy: None,
                        epoch,
                    }),
                );
                MapInOutcome::Zeroed
            }
        };
        pm.wss_current += 1;
        self.free -= 1;
        Ok(outcome)
    }

    // ------------------------------------------------------------------
    // Eviction
    // ------------------------------------------------------------------

    /// Evict a single resident page, freeing its frame.
    ///
    /// * clean, valid swap copy → page transitions to `Swapped`, no I/O;
    /// * clean, never written → back to `Untouched` (zero pages are
    ///   reproducible), no I/O;
    /// * dirty → allocates a swap block and writes (a dirty page never
    ///   holds a swap copy; writes free the stale copy eagerly).
    pub fn evict(&mut self, pid: ProcId, p: PageNum) -> Result<EvictOutcome, MemError> {
        let outcomes = self.evict_prepared(pid, &[p], &mut Vec::new())?;
        outcomes
            .into_iter()
            .next()
            .ok_or(MemError::NotResident(pid, p))
    }

    /// Evict a batch of pages of one process, allocating swap for all
    /// dirty-without-copy pages **contiguously** (this is what gives block
    /// page-out its sequential layout). Returns the coalesced write
    /// extents; appends the evicted pages to `evicted_log` in eviction
    /// order (consumed by the adaptive page-in recorder).
    ///
    /// Pages in the list that are not resident are skipped (candidate
    /// lists can go stale between selection and eviction).
    pub fn evict_batch(
        &mut self,
        pid: ProcId,
        pages: &[PageNum],
        evicted_log: &mut Vec<PageNum>,
    ) -> Result<Vec<Extent>, MemError> {
        let outcomes = self.evict_prepared(pid, pages, evicted_log)?;
        let mut blocks: Vec<u64> = outcomes
            .iter()
            .filter_map(|o| match o {
                EvictOutcome::Write { block } => Some(*block),
                EvictOutcome::Dropped => None,
            })
            .collect();
        if !outcomes.is_empty() {
            self.obs.emit_clock(|| ObsEvent::EvictBatch {
                pid: pid.0,
                pages: outcomes.len() as u32,
                write_pages: blocks.len() as u32,
            });
        }
        Ok(extents_from_blocks(&mut blocks))
    }

    fn evict_prepared(
        &mut self,
        pid: ProcId,
        pages: &[PageNum],
        evicted_log: &mut Vec<PageNum>,
    ) -> Result<Vec<EvictOutcome>, MemError> {
        // Pass 1: count dirty pages that need fresh swap blocks.
        {
            let pm = self.proc(pid)?;
            for &p in pages {
                if p.idx() >= pm.pt.len() {
                    return Err(MemError::BadPage(pid, p));
                }
            }
        }
        let pm = self.procs.get(&pid).ok_or(MemError::NoSuchProc(pid))?;
        let need_fresh: u64 = pages
            .iter()
            .filter(|&&p| matches!(pm.pt.state(p), PageState::Resident(r) if r.dirty))
            .count() as u64;
        let fresh = self.swap.alloc(need_fresh)?;
        let mut fresh_blocks = fresh.iter().flat_map(|e| e.start..e.end());

        let mut outcomes = Vec::with_capacity(pages.len());
        for &p in pages {
            let pm = self.procs.get_mut(&pid).ok_or(MemError::NoSuchProc(pid))?;
            let PageState::Resident(r) = *pm.pt.state(p) else {
                continue; // stale candidate; skip
            };
            let outcome = if r.dirty {
                debug_assert!(r.swap_copy.is_none(), "dirty page holds a swap copy");
                // Pass 1 counted the dirty pages and alloc() returned exactly that
                // many blocks; nothing mutates the page tables in between.
                // agp-lint: allow(panic-site): pass-1 count matches allocation
                let block = fresh_blocks.next().expect("allocated exactly enough");
                pm.pt.set(p, PageState::Swapped { block });
                self.swap_owner.insert(block, (pid, p));
                EvictOutcome::Write { block }
            } else {
                match r.swap_copy {
                    Some(b) => {
                        pm.pt.set(p, PageState::Swapped { block: b });
                        debug_assert_eq!(self.swap_owner.get(&b), Some(&(pid, p)));
                        EvictOutcome::Dropped
                    }
                    None => {
                        pm.pt.set(p, PageState::Untouched);
                        EvictOutcome::Dropped
                    }
                }
            };
            self.free += 1;
            evicted_log.push(p);
            outcomes.push(outcome);
        }
        // Return any unused fresh blocks (stale candidates were skipped).
        for b in fresh_blocks {
            self.swap.free_block(b);
        }
        Ok(outcomes)
    }

    /// Write a dirty resident page to swap *without* evicting it: the page
    /// stays resident but becomes clean with a valid swap copy. This is
    /// the background-writing primitive (paper §3.4). Batch form: swap for
    /// copy-less pages is allocated contiguously; returns coalesced write
    /// extents. Non-dirty / non-resident pages are skipped.
    pub fn clean_batch(&mut self, pid: ProcId, pages: &[PageNum]) -> Result<Vec<Extent>, MemError> {
        {
            let pm = self.proc(pid)?;
            for &p in pages {
                if p.idx() >= pm.pt.len() {
                    return Err(MemError::BadPage(pid, p));
                }
            }
        }
        let pm = self.procs.get(&pid).ok_or(MemError::NoSuchProc(pid))?;
        let need_fresh: u64 = pages
            .iter()
            .filter(|&&p| matches!(pm.pt.state(p), PageState::Resident(r) if r.dirty))
            .count() as u64;
        let fresh = self.swap.alloc(need_fresh)?;
        let mut fresh_blocks = fresh.iter().flat_map(|e| e.start..e.end());

        let mut blocks = Vec::new();
        for &p in pages {
            let pm = self.procs.get_mut(&pid).ok_or(MemError::NoSuchProc(pid))?;
            let PageState::Resident(r) = *pm.pt.state(p) else {
                continue;
            };
            if !r.dirty {
                continue;
            }
            debug_assert!(r.swap_copy.is_none(), "dirty page holds a swap copy");
            // Pass 1 counted the dirty pages and alloc() returned exactly that
            // many blocks; nothing mutates the page tables in between.
            // agp-lint: allow(panic-site): pass-1 count matches allocation
            let block = fresh_blocks.next().expect("allocated exactly enough");
            pm.pt.update_resident(p, |r| {
                r.dirty = false;
                r.swap_copy = Some(block);
            });
            self.swap_owner.insert(block, (pid, p));
            blocks.push(block);
        }
        for b in fresh_blocks {
            self.swap.free_block(b);
        }
        Ok(extents_from_blocks(&mut blocks))
    }

    // ------------------------------------------------------------------
    // Scan helpers for policies
    // ------------------------------------------------------------------

    /// Clock-sweep `pid`'s page table (clearing reference bits, collecting
    /// unreferenced resident pages). See [`PageTable::clock_sweep`].
    pub fn clock_sweep_proc(
        &mut self,
        pid: ProcId,
        max_scan: usize,
        max_victims: usize,
    ) -> Result<Vec<PageNum>, MemError> {
        Ok(self.proc_mut(pid)?.pt.clock_sweep(max_scan, max_victims))
    }

    /// `pid`'s resident pages ordered oldest-first (selective/aggressive
    /// page-out order).
    pub fn resident_oldest_first(&self, pid: ProcId) -> Result<Vec<PageNum>, MemError> {
        Ok(self.proc(pid)?.pt.resident_oldest_first())
    }

    /// Sweep `pid`'s page table from position `hand`, collecting up to
    /// `max_collect` dirty resident pages while visiting at most
    /// `max_scan` entries. Returns the victims and the new hand position.
    ///
    /// This is the background writer's scan (paper §3.4), shaped like the
    /// kernel's own bdflush: a cheap cyclic cursor rather than a global
    /// age sort, so each tick costs O(scan) regardless of table size.
    pub fn dirty_sweep(
        &self,
        pid: ProcId,
        hand: usize,
        max_scan: usize,
        max_collect: usize,
    ) -> Result<(Vec<PageNum>, usize), MemError> {
        let pm = self.proc(pid)?;
        let n = pm.pt.len();
        if n == 0 || max_collect == 0 {
            return Ok((Vec::new(), 0));
        }
        let mut hand = hand % n;
        let mut out = Vec::new();
        let mut scanned = 0;
        while scanned < max_scan.min(n) && out.len() < max_collect {
            let p = PageNum(hand as u32);
            if matches!(pm.pt.state(p), PageState::Resident(r) if r.dirty) {
                out.push(p);
            }
            hand = (hand + 1) % n;
            scanned += 1;
        }
        Ok((out, hand))
    }

    /// `pid`'s dirty resident pages ordered oldest-first (background
    /// writer scan order).
    pub fn dirty_oldest_first(&self, pid: ProcId, max: usize) -> Result<Vec<PageNum>, MemError> {
        let pm = self.proc(pid)?;
        let mut v: Vec<(SimTime, PageNum)> = pm
            .pt
            .iter_resident()
            .filter(|(_, r)| r.dirty)
            .map(|(p, r)| (r.last_ref, p))
            .collect();
        v.sort_unstable();
        v.truncate(max);
        Ok(v.into_iter().map(|(_, p)| p).collect())
    }

    /// Current swap block of a page if it is swapped out.
    pub fn swap_block_of(&self, pid: ProcId, p: PageNum) -> Option<u64> {
        match self.procs.get(&pid)?.pt.state(p) {
            PageState::Swapped { block } => Some(*block),
            _ => None,
        }
    }

    /// Follow the swap-block chain after `block`: pages (of the same
    /// process) stored at `block+1, block+2, …` that are currently swapped
    /// out, up to `limit` entries. This is the read-ahead neighbor lookup.
    pub fn swap_chain_after(&self, pid: ProcId, block: u64, limit: usize) -> Vec<(PageNum, u64)> {
        let mut out = Vec::new();
        let mut b = block + 1;
        while out.len() < limit {
            match self.swap_owner.get(&b) {
                Some(&(owner, page)) if owner == pid => {
                    // Only chase pages that actually need reading (swapped
                    // out); resident swap copies are already in memory.
                    if matches!(self.procs[&pid].pt.state(page), PageState::Swapped { .. }) {
                        out.push((page, b));
                    } else {
                        break;
                    }
                }
                _ => break,
            }
            b += 1;
        }
        out
    }

    // ------------------------------------------------------------------
    // Working-set tracking
    // ------------------------------------------------------------------

    /// Note that `pid` has been granted a new quantum: close the previous
    /// reference epoch and start a fresh one.
    pub fn quantum_started(&mut self, pid: ProcId) -> Result<(), MemError> {
        let pm = self.proc_mut(pid)?;
        if pm.epoch > 0 || pm.wss_current > 0 {
            pm.wss_last = Some(pm.wss_current);
        }
        pm.epoch = pm.epoch.wrapping_add(1);
        pm.wss_current = 0;
        Ok(())
    }

    /// Working-set estimate for `pid` in pages: the reference count from
    /// its previous quantum, falling back to its current RSS + swapped
    /// footprint capped at usable memory when no history exists.
    pub fn wss_estimate(&self, pid: ProcId) -> Result<usize, MemError> {
        let pm = self.proc(pid)?;
        let est = match pm.wss_last {
            Some(w) if w > 0 => w,
            _ => {
                // No completed quantum yet: assume it will want everything
                // it has ever touched.
                pm.pt
                    .iter()
                    .filter(|(_, s)| !matches!(s, PageState::Untouched))
                    .count()
                    .max(pm.rss())
            }
        };
        Ok(est.min(self.params.usable_frames()))
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Verify frame conservation, counter consistency, and swap-owner map
    /// coherence. Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let rss_sum: usize = self.procs.values().map(|m| m.pt.resident()).sum();
        let usable = self.params.usable_frames();
        if self.free + rss_sum != usable {
            return Err(format!(
                "frame conservation violated: free {} + rss {} != usable {}",
                self.free, rss_sum, usable
            ));
        }
        let mut owned_blocks = 0u64;
        for (&pid, pm) in &self.procs {
            let mut dirty = 0;
            for (p, st) in pm.pt.iter() {
                match st {
                    PageState::Resident(r) => {
                        if r.dirty {
                            dirty += 1;
                            if r.swap_copy.is_some() {
                                return Err(format!("dirty page {pid}/{p:?} holds a swap copy"));
                            }
                        }
                        if let Some(b) = r.swap_copy {
                            // Clean copies must be registered for read-ahead.
                            if self.swap_owner.get(&b) != Some(&(pid, p)) {
                                return Err(format!(
                                    "swap copy {b} of {pid}/{p:?} missing from owner map"
                                ));
                            }
                            owned_blocks += 1;
                        }
                    }
                    PageState::Swapped { block } => {
                        if self.swap_owner.get(block) != Some(&(pid, p)) {
                            return Err(format!(
                                "swapped page {pid}/{p:?} block {block} not in owner map"
                            ));
                        }
                        owned_blocks += 1;
                    }
                    PageState::Untouched => {}
                }
            }
            if dirty != pm.pt.dirty_resident() {
                return Err(format!(
                    "{pid} dirty counter {} != actual {dirty}",
                    pm.pt.dirty_resident()
                ));
            }
        }
        if owned_blocks != self.swap.used_blocks() {
            return Err(format!(
                "swap leak: pages reference {owned_blocks} blocks but allocator has {} in use",
                self.swap.used_blocks()
            ));
        }
        // Reverse direction: every owner-map entry must point at a page that
        // actually references the block, so stale entries cannot linger and
        // feed read-ahead garbage. (The forward pass counted every
        // referencing page, so equal sizes + forward coverage = bijection.)
        if self.swap_owner.len() as u64 != owned_blocks {
            return Err(format!(
                "owner map has {} entries but pages reference {owned_blocks} blocks",
                self.swap_owner.len()
            ));
        }
        for (&block, &(pid, p)) in &self.swap_owner {
            let references = self.procs.get(&pid).is_some_and(|pm| {
                p.idx() < pm.pt.len()
                    && match *pm.pt.state(p) {
                        PageState::Swapped { block: b } => b == block,
                        PageState::Resident(r) => r.swap_copy == Some(block),
                        PageState::Untouched => false,
                    }
            });
            if !references {
                return Err(format!(
                    "stale owner-map entry: block {block} -> {pid}/{p:?} which does not \
                     reference it"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime(1_000);

    fn kernel(frames: usize) -> Kernel {
        let params = VmParams {
            total_frames: frames,
            wired_frames: 0,
            freepages_min: 4,
            freepages_high: 8,
            readahead: 16,
        };
        Kernel::new(params, 4096)
    }

    #[test]
    fn demand_zero_lifecycle() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 10);
        assert_eq!(
            k.touch(ProcId(1), PageNum(0), false, T).unwrap(),
            TouchOutcome::NeedsZeroFill
        );
        assert_eq!(
            k.map_in(ProcId(1), PageNum(0), T).unwrap(),
            MapInOutcome::Zeroed
        );
        assert_eq!(k.free_frames(), 63);
        assert_eq!(
            k.touch(ProcId(1), PageNum(0), false, T).unwrap(),
            TouchOutcome::Hit
        );
        k.check_invariants().unwrap();
    }

    #[test]
    fn clean_never_written_page_drops_to_untouched() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 4);
        k.map_in(ProcId(1), PageNum(2), T).unwrap();
        let out = k.evict(ProcId(1), PageNum(2)).unwrap();
        assert_eq!(out, EvictOutcome::Dropped);
        assert_eq!(
            *k.proc(ProcId(1)).unwrap().pt.state(PageNum(2)),
            PageState::Untouched
        );
        assert_eq!(k.free_frames(), 64);
        assert_eq!(k.swap().used_blocks(), 0);
        k.check_invariants().unwrap();
    }

    #[test]
    fn dirty_page_roundtrips_through_swap() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 4);
        k.map_in(ProcId(1), PageNum(0), T).unwrap();
        k.touch(ProcId(1), PageNum(0), true, T).unwrap();
        let EvictOutcome::Write { block } = k.evict(ProcId(1), PageNum(0)).unwrap() else {
            panic!("dirty page must be written");
        };
        assert_eq!(k.swap().used_blocks(), 1);
        // Fault it back.
        assert_eq!(
            k.touch(ProcId(1), PageNum(0), false, T).unwrap(),
            TouchOutcome::NeedsSwapIn { block }
        );
        assert_eq!(
            k.map_in(ProcId(1), PageNum(0), T).unwrap(),
            MapInOutcome::Read { block }
        );
        // Now resident, clean, with a valid copy: a second eviction is free.
        assert_eq!(
            k.evict(ProcId(1), PageNum(0)).unwrap(),
            EvictOutcome::Dropped
        );
        k.check_invariants().unwrap();
    }

    #[test]
    fn redirty_frees_stale_copy_and_rewrites() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 4);
        k.map_in(ProcId(1), PageNum(0), T).unwrap();
        k.touch(ProcId(1), PageNum(0), true, T).unwrap();
        let EvictOutcome::Write { .. } = k.evict(ProcId(1), PageNum(0)).unwrap() else {
            panic!()
        };
        k.map_in(ProcId(1), PageNum(0), T).unwrap();
        assert_eq!(k.swap().used_blocks(), 1, "swap copy retained while clean");
        k.touch(ProcId(1), PageNum(0), true, T).unwrap(); // re-dirty
        assert_eq!(
            k.swap().used_blocks(),
            0,
            "write frees the stale swap copy (swap-cache semantics)"
        );
        let EvictOutcome::Write { .. } = k.evict(ProcId(1), PageNum(0)).unwrap() else {
            panic!("re-dirtied page must be written")
        };
        assert_eq!(k.swap().used_blocks(), 1);
        k.check_invariants().unwrap();
    }

    #[test]
    fn write_touch_invalidates_readahead_chain() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 4);
        // Build two swapped pages at contiguous blocks.
        for p in 0..2 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
            k.touch(ProcId(1), PageNum(p), true, T).unwrap();
        }
        let mut log = Vec::new();
        let ext = k
            .evict_batch(ProcId(1), &[PageNum(0), PageNum(1)], &mut log)
            .unwrap();
        assert_eq!(ext.len(), 1, "batch eviction is contiguous");
        let b0 = ext[0].start;
        // Chain from block b0 finds page 1 at b0+1.
        assert_eq!(
            k.swap_chain_after(ProcId(1), b0, 16),
            vec![(PageNum(1), b0 + 1)]
        );
        // Fault page 1 back in and dirty it: its copy is stale, chain is cut.
        k.map_in(ProcId(1), PageNum(1), T).unwrap();
        k.touch(ProcId(1), PageNum(1), true, T).unwrap();
        assert!(k.swap_chain_after(ProcId(1), b0, 16).is_empty());
        k.check_invariants().unwrap();
    }

    #[test]
    fn evict_batch_allocates_contiguous_swap() {
        let mut k = kernel(256);
        k.register_proc(ProcId(1), 100);
        for p in 0..100 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
            k.touch(ProcId(1), PageNum(p), true, T).unwrap();
        }
        let pages: Vec<PageNum> = (0..100).map(PageNum).collect();
        let mut log = Vec::new();
        let ext = k.evict_batch(ProcId(1), &pages, &mut log).unwrap();
        assert_eq!(ext.len(), 1, "fresh swap, one extent");
        assert_eq!(ext[0].len, 100);
        assert_eq!(log.len(), 100);
        assert_eq!(k.free_frames(), 256);
        k.check_invariants().unwrap();
    }

    #[test]
    fn evict_batch_skips_stale_candidates() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 4);
        k.map_in(ProcId(1), PageNum(0), T).unwrap();
        let mut log = Vec::new();
        // Page 1 was never resident; batch must skip it gracefully.
        let ext = k
            .evict_batch(ProcId(1), &[PageNum(0), PageNum(1)], &mut log)
            .unwrap();
        assert!(ext.is_empty(), "clean page: no writes");
        assert_eq!(log, vec![PageNum(0)]);
        assert_eq!(k.swap().used_blocks(), 0, "unused fresh blocks returned");
        k.check_invariants().unwrap();
    }

    #[test]
    fn out_of_frames_is_reported() {
        let mut k = kernel(2);
        k.register_proc(ProcId(1), 4);
        k.map_in(ProcId(1), PageNum(0), T).unwrap();
        k.map_in(ProcId(1), PageNum(1), T).unwrap();
        assert_eq!(
            k.map_in(ProcId(1), PageNum(2), T),
            Err(MemError::OutOfFrames)
        );
    }

    #[test]
    fn watermark_logic() {
        let mut k = kernel(64); // min 4, high 8
        k.register_proc(ProcId(1), 64);
        for p in 0..61 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
        }
        assert_eq!(k.free_frames(), 3);
        assert!(k.below_min());
        assert_eq!(k.reclaim_target(), 5);
        // Reclaim to high.
        let pages: Vec<PageNum> = (0..5).map(PageNum).collect();
        k.evict_batch(ProcId(1), &pages, &mut Vec::new()).unwrap();
        assert!(!k.below_min());
        assert_eq!(k.reclaim_target(), 0);
    }

    #[test]
    fn wss_tracking_across_quanta() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 16);
        k.quantum_started(ProcId(1)).unwrap();
        for p in 0..10 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
        }
        // Touching the same pages again does not inflate WSS.
        for p in 0..10 {
            k.touch(ProcId(1), PageNum(p), false, T).unwrap();
        }
        assert_eq!(k.proc(ProcId(1)).unwrap().wss_current(), 10);
        k.quantum_started(ProcId(1)).unwrap();
        assert_eq!(k.wss_estimate(ProcId(1)).unwrap(), 10);
        // New quantum touches fewer pages.
        for p in 0..3 {
            k.touch(ProcId(1), PageNum(p), false, T).unwrap();
        }
        k.quantum_started(ProcId(1)).unwrap();
        assert_eq!(k.wss_estimate(ProcId(1)).unwrap(), 3);
    }

    #[test]
    fn wss_estimate_without_history_uses_footprint() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 16);
        for p in 0..5 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
        }
        assert_eq!(k.wss_estimate(ProcId(1)).unwrap(), 5);
    }

    #[test]
    fn largest_rss_selection() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 16);
        k.register_proc(ProcId(2), 16);
        for p in 0..3 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
        }
        for p in 0..7 {
            k.map_in(ProcId(2), PageNum(p), T).unwrap();
        }
        assert_eq!(k.largest_rss_proc(None), Some(ProcId(2)));
        assert_eq!(k.largest_rss_proc(Some(ProcId(2))), Some(ProcId(1)));
        assert_eq!(k.largest_rss_proc(Some(ProcId(2))), Some(ProcId(1)));
    }

    #[test]
    fn unregister_releases_everything() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 8);
        for p in 0..8 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
            k.touch(ProcId(1), PageNum(p), true, T).unwrap();
        }
        let pages: Vec<PageNum> = (0..4).map(PageNum).collect();
        k.evict_batch(ProcId(1), &pages, &mut Vec::new()).unwrap();
        assert!(k.swap().used_blocks() > 0);
        k.unregister_proc(ProcId(1)).unwrap();
        assert_eq!(k.free_frames(), 64);
        assert_eq!(k.swap().used_blocks(), 0);
        assert!(k.check_invariants().is_ok());
    }

    #[test]
    fn clean_batch_keeps_pages_resident() {
        let mut k = kernel(64);
        k.register_proc(ProcId(1), 8);
        for p in 0..8 {
            k.map_in(ProcId(1), PageNum(p), T).unwrap();
            k.touch(ProcId(1), PageNum(p), true, T).unwrap();
        }
        let pages: Vec<PageNum> = (0..8).map(PageNum).collect();
        let ext = k.clean_batch(ProcId(1), &pages).unwrap();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].len, 8);
        let pm = k.proc(ProcId(1)).unwrap();
        assert_eq!(pm.rss(), 8, "pages stay resident");
        assert_eq!(pm.pt.dirty_resident(), 0, "pages are now clean");
        // Evicting them later costs nothing.
        let ext2 = k.evict_batch(ProcId(1), &pages, &mut Vec::new()).unwrap();
        assert!(ext2.is_empty());
        k.check_invariants().unwrap();
    }

    #[test]
    fn touch_run_matches_single_touches() {
        let pid = ProcId(1);
        // Build two identical kernels; drive one with touch_run and the
        // other with per-page touch; states must match.
        let mut k1 = kernel(64);
        let mut k2 = kernel(64);
        for k in [&mut k1, &mut k2] {
            k.register_proc(pid, 16);
            for p in 0..8 {
                k.map_in(pid, PageNum(p), T).unwrap();
            }
            // Page 5 swapped out.
            k.touch(pid, PageNum(5), true, T).unwrap();
            k.evict(pid, PageNum(5)).unwrap();
        }
        let t = SimTime(9_999);
        let (hits, fault) = k1.touch_run(pid, PageNum(0), 16, true, t).unwrap();
        let mut hits2 = 0;
        let mut fault2 = None;
        for p in 0..16 {
            match k2.touch(pid, PageNum(p), true, t).unwrap() {
                TouchOutcome::Hit => hits2 += 1,
                other => {
                    fault2 = Some(other);
                    break;
                }
            }
        }
        assert_eq!(hits, hits2);
        assert_eq!(hits, 5, "pages 0..5 hit, page 5 faults");
        assert_eq!(fault, fault2);
        assert!(matches!(fault, Some(TouchOutcome::NeedsSwapIn { .. })));
        assert_eq!(
            k1.proc(pid).unwrap().wss_current(),
            k2.proc(pid).unwrap().wss_current()
        );
        k1.check_invariants().unwrap();
        k2.check_invariants().unwrap();
    }

    #[test]
    fn touch_run_full_hit_and_bounds() {
        let pid = ProcId(1);
        let mut k = kernel(64);
        k.register_proc(pid, 8);
        for p in 0..8 {
            k.map_in(pid, PageNum(p), T).unwrap();
        }
        let (hits, fault) = k.touch_run(pid, PageNum(2), 6, false, T).unwrap();
        assert_eq!((hits, fault), (6, None));
        assert!(
            k.touch_run(pid, PageNum(4), 5, false, T).is_err(),
            "overruns space"
        );
        assert_eq!(
            k.touch_run(pid, PageNum(0), 0, false, T).unwrap(),
            (0, None)
        );
    }

    #[test]
    fn touch_run_write_frees_stale_copies() {
        let pid = ProcId(1);
        let mut k = kernel(64);
        k.register_proc(pid, 8);
        // Create clean-with-copy pages via evict + fault-back.
        for p in 0..4 {
            k.map_in(pid, PageNum(p), T).unwrap();
            k.touch(pid, PageNum(p), true, T).unwrap();
        }
        let pages: Vec<PageNum> = (0..4).map(PageNum).collect();
        k.evict_batch(pid, &pages, &mut Vec::new()).unwrap();
        for p in 0..4 {
            k.map_in(pid, PageNum(p), T).unwrap();
        }
        assert_eq!(k.swap().used_blocks(), 4);
        let (hits, _) = k.touch_run(pid, PageNum(0), 4, true, T).unwrap();
        assert_eq!(hits, 4);
        assert_eq!(k.swap().used_blocks(), 0, "all copies freed on write");
        k.check_invariants().unwrap();
    }

    #[test]
    fn bad_page_errors() {
        let mut k = kernel(8);
        k.register_proc(ProcId(1), 2);
        assert!(matches!(
            k.touch(ProcId(1), PageNum(5), false, T),
            Err(MemError::BadPage(_, _))
        ));
        assert!(matches!(
            k.touch(ProcId(9), PageNum(0), false, T),
            Err(MemError::NoSuchProc(_))
        ));
    }
}
