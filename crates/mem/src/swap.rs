//! Swap-space extent allocator.
//!
//! First-fit over a free-extent map ordered by start block. Batch
//! allocations (whole-working-set page-outs) carve large contiguous runs,
//! which is what later makes block page-in cheap — the same dependence on
//! swap layout that real block-paging systems exploit (paper §1, VM/HPO
//! reference [6]).

use crate::types::MemError;
use agp_disk::Extent;
use std::collections::BTreeMap;

/// Allocator over `[0, total)` swap blocks.
#[derive(Clone, Debug)]
pub struct SwapSpace {
    /// Free extents keyed by start block; invariants: disjoint, coalesced
    /// (no two adjacent extents), lengths ≥ 1.
    free: BTreeMap<u64, u64>,
    free_blocks: u64,
    total: u64,
}

impl SwapSpace {
    /// A fully free swap device of `total` blocks.
    pub fn new(total: u64) -> Self {
        let mut free = BTreeMap::new();
        if total > 0 {
            free.insert(0, total);
        }
        SwapSpace {
            free,
            free_blocks: total,
            total,
        }
    }

    /// Device size in blocks.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Blocks currently unallocated.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u64 {
        self.total - self.free_blocks
    }

    /// Allocate `n` blocks, preferring contiguity: the first free extent
    /// that fits the whole request is used; otherwise the request is
    /// satisfied by concatenating the largest-first free extents.
    ///
    /// Returns the allocated extents (sorted by start). Fails with
    /// [`MemError::SwapFull`] if fewer than `n` blocks are free, in which
    /// case nothing is allocated.
    pub fn alloc(&mut self, n: u64) -> Result<Vec<Extent>, MemError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        if n > self.free_blocks {
            return Err(MemError::SwapFull {
                wanted: n,
                free: self.free_blocks,
            });
        }
        // First-fit for a single extent that covers the request.
        if let Some((&start, &len)) = self.free.iter().find(|&(_, &len)| len >= n) {
            self.take(start, len, n);
            return Ok(vec![Extent::new(start, n)]);
        }
        // Fragmented path: grab largest extents first to minimize the
        // number of pieces.
        let mut by_len: Vec<(u64, u64)> = self.free.iter().map(|(&s, &l)| (l, s)).collect();
        by_len.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = Vec::new();
        let mut remaining = n;
        for (len, start) in by_len {
            if remaining == 0 {
                break;
            }
            let take = len.min(remaining);
            self.take(start, len, take);
            out.push(Extent::new(start, take));
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0);
        out.sort_unstable_by_key(|e| e.start);
        Ok(out)
    }

    /// Carve `take` blocks from the front of free extent `(start, len)`.
    fn take(&mut self, start: u64, len: u64, take: u64) {
        debug_assert!(take <= len);
        self.free.remove(&start);
        if take < len {
            self.free.insert(start + take, len - take);
        }
        self.free_blocks -= take;
    }

    /// Return one block to the free pool, coalescing with neighbors.
    ///
    /// Panics (debug) on double-free — that is a simulation bug.
    pub fn free_block(&mut self, block: u64) {
        self.free_extent(Extent::new(block, 1));
    }

    /// Return an extent to the free pool, coalescing with neighbors.
    pub fn free_extent(&mut self, e: Extent) {
        if e.len == 0 {
            return;
        }
        debug_assert!(e.end() <= self.total, "free past end of swap");
        debug_assert!(!self.overlaps_free(&e), "double free of swap extent {e:?}");
        let mut start = e.start;
        let mut len = e.len;
        // Coalesce with predecessor.
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        // Coalesce with successor.
        if let Some((&ns, &nl)) = self.free.range(start + len..).next() {
            if start + len == ns {
                self.free.remove(&ns);
                len += nl;
            }
        }
        self.free.insert(start, len);
        self.free_blocks += e.len;
    }

    /// Whether any part of `e` is already free (used by the double-free
    /// debug assertion).
    fn overlaps_free(&self, e: &Extent) -> bool {
        if let Some((&ps, &pl)) = self.free.range(..=e.start).next_back() {
            if ps + pl > e.start {
                return true;
            }
        }
        self.free.range(e.start..e.end()).next().is_some()
    }

    /// Number of free extents (fragmentation indicator, used in tests and
    /// metrics).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_swap_allocates_contiguously() {
        let mut s = SwapSpace::new(1000);
        let a = s.alloc(100).unwrap();
        assert_eq!(a, vec![Extent::new(0, 100)]);
        let b = s.alloc(50).unwrap();
        assert_eq!(b, vec![Extent::new(100, 50)]);
        assert_eq!(s.used_blocks(), 150);
    }

    #[test]
    fn zero_alloc_is_empty() {
        let mut s = SwapSpace::new(10);
        assert!(s.alloc(0).unwrap().is_empty());
        assert_eq!(s.free_blocks(), 10);
    }

    #[test]
    fn alloc_failure_leaves_state_untouched() {
        let mut s = SwapSpace::new(10);
        let e = s.alloc(11).unwrap_err();
        assert_eq!(
            e,
            MemError::SwapFull {
                wanted: 11,
                free: 10
            }
        );
        assert_eq!(s.free_blocks(), 10);
        assert_eq!(s.fragments(), 1);
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut s = SwapSpace::new(100);
        let a = s.alloc(100).unwrap();
        assert_eq!(a.len(), 1);
        // Free three pieces out of order; they must merge back into one.
        s.free_extent(Extent::new(0, 30));
        s.free_extent(Extent::new(60, 40));
        s.free_extent(Extent::new(30, 30));
        assert_eq!(s.fragments(), 1);
        assert_eq!(s.free_blocks(), 100);
        // And the whole device is allocatable as one extent again.
        assert_eq!(s.alloc(100).unwrap(), vec![Extent::new(0, 100)]);
    }

    #[test]
    fn fragmented_alloc_spans_extents() {
        let mut s = SwapSpace::new(100);
        s.alloc(100).unwrap();
        // Free blocks 10..20 and 50..90 -> fragments of 10 and 40.
        s.free_extent(Extent::new(10, 10));
        s.free_extent(Extent::new(50, 40));
        let got = s.alloc(45).unwrap();
        // Must take the 40-run plus 5 from the 10-run, sorted by start.
        assert_eq!(got, vec![Extent::new(10, 5), Extent::new(50, 40)]);
        assert_eq!(s.free_blocks(), 5);
    }

    #[test]
    fn first_fit_prefers_single_extent() {
        let mut s = SwapSpace::new(100);
        s.alloc(100).unwrap();
        s.free_extent(Extent::new(0, 10)); // small first
        s.free_extent(Extent::new(40, 60)); // big later
        let got = s.alloc(20).unwrap();
        assert_eq!(
            got,
            vec![Extent::new(40, 20)],
            "skips too-small leading extent"
        );
    }

    #[test]
    fn free_single_blocks_then_reuse() {
        let mut s = SwapSpace::new(16);
        s.alloc(16).unwrap();
        for b in (0..16).step_by(2) {
            s.free_block(b);
        }
        assert_eq!(s.fragments(), 8);
        assert_eq!(s.free_blocks(), 8);
        let got = s.alloc(8).unwrap();
        assert_eq!(got.len(), 8, "fully fragmented allocation");
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let mut s = SwapSpace::new(10);
        s.alloc(10).unwrap();
        s.free_block(3);
        s.free_block(3);
    }

    #[test]
    fn empty_device() {
        let mut s = SwapSpace::new(0);
        assert_eq!(s.total(), 0);
        assert!(s.alloc(1).is_err());
    }
}
