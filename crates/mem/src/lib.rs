//! # agp-mem — the simulated virtual-memory subsystem
//!
//! A page-granular model of the memory-management machinery the paper
//! modifies (Linux 2.2.19): physical frames, per-process page tables with
//! reference/dirty bits, a swap-space extent allocator, watermark-driven
//! reclaim (`freepages.min` / `freepages.high`), swap-in read-ahead, and
//! working-set-size tracking.
//!
//! ## Mechanism vs. policy
//!
//! This crate is **mechanism only**. It can evict a page, map a page in,
//! sweep reference bits, and allocate swap extents — but it never decides
//! *which* page to evict or *when*. Those decisions (the original
//! clock/LRU baseline and the paper's four adaptive mechanisms) live in
//! `agp-core` and are expressed against [`Kernel`]'s mechanism API. The
//! split mirrors the paper's own architecture (§3.5): the kernel exposes
//! primitives; gang-schedule knowledge arrives from the outside.
//!
//! ## Simplifications (documented; see DESIGN.md §3)
//!
//! * Frames are fungible counters, not identities — no effect on any
//!   quantity the paper measures.
//! * A page's frame is freed at eviction time while the writeback I/O is
//!   queued asynchronously; because each node's paging disk services
//!   requests FIFO, any subsequent swap-in still pays for the write ahead
//!   of it, so the *time* cost of eviction is preserved.
//! * Swap-in read-ahead only pulls pages of the faulting process. Linux
//!   2.2 read clusters regardless of owner; since batch evictions are
//!   per-process, contiguous swap runs essentially always belong to one
//!   process anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod ptable;
pub mod swap;
pub mod types;

pub use kernel::{EvictOutcome, Kernel, MapInOutcome, TouchOutcome};
pub use ptable::{PageState, PageTable, Resident};
pub use swap::SwapSpace;
pub use types::{MemError, PageNum, ProcId, VmParams};
