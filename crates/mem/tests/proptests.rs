//! Property tests for the VM substrate: the kernel's conservation
//! invariants must survive arbitrary interleavings of fault, touch,
//! evict, clean, and process-exit operations, and the swap allocator must
//! never lose or double-allocate a block.

use agp_mem::{Kernel, MemError, PageNum, ProcId, SwapSpace, VmParams};
use agp_sim::SimTime;
use proptest::prelude::*;

/// A random memory-subsystem operation.
#[derive(Clone, Debug)]
enum Op {
    Touch { proc: u8, page: u8, write: bool },
    MapIn { proc: u8, page: u8 },
    Evict { proc: u8, page: u8 },
    EvictBatch { proc: u8, first: u8, len: u8 },
    CleanBatch { proc: u8, first: u8, len: u8 },
    Quantum { proc: u8 },
    Exit { proc: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(p, g, w)| Op::Touch {
            proc: p,
            page: g,
            write: w
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(p, g)| Op::MapIn { proc: p, page: g }),
        (any::<u8>(), any::<u8>()).prop_map(|(p, g)| Op::Evict { proc: p, page: g }),
        (any::<u8>(), any::<u8>(), 0u8..16).prop_map(|(p, f, l)| Op::EvictBatch {
            proc: p,
            first: f,
            len: l
        }),
        (any::<u8>(), any::<u8>(), 0u8..16).prop_map(|(p, f, l)| Op::CleanBatch {
            proc: p,
            first: f,
            len: l
        }),
        any::<u8>().prop_map(|p| Op::Quantum { proc: p }),
        any::<u8>().prop_map(|p| Op::Exit { proc: p }),
    ]
}

const NPROCS: u32 = 3;
const PAGES: u32 = 64;

fn kernel() -> Kernel {
    let mut k = Kernel::new(
        VmParams {
            total_frames: 128,
            wired_frames: 16,
            freepages_min: 4,
            freepages_high: 8,
            readahead: 16,
        },
        4096,
    );
    for p in 0..NPROCS {
        k.register_proc(ProcId(p), PAGES as usize);
    }
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No operation sequence can violate frame conservation, dirty
    /// counters, swap-owner coherence, or leak swap blocks.
    #[test]
    fn kernel_invariants_hold_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(), 1..300)
    ) {
        let mut k = kernel();
        let mut alive = [true; NPROCS as usize];
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_us(t);
            let pid = |p: u8| ProcId(p as u32 % NPROCS);
            let pg = |g: u8| PageNum(g as u32 % PAGES);
            let is_alive = |p: u8, alive: &[bool; 3]| alive[(p as u32 % NPROCS) as usize];
            match op {
                Op::Touch { proc, page, write } if is_alive(proc, &alive) => {
                    let _ = k.touch(pid(proc), pg(page), write, now);
                }
                Op::MapIn { proc, page } if is_alive(proc, &alive) => {
                    let p = pid(proc);
                    let g = pg(page);
                    // Only legal on non-resident pages with free frames.
                    if k.free_frames() > 0
                        && !k.proc(p).unwrap().pt.state(g).is_resident()
                    {
                        k.map_in(p, g, now).unwrap();
                    }
                }
                Op::Evict { proc, page } if is_alive(proc, &alive) => {
                    let p = pid(proc);
                    let g = pg(page);
                    if k.proc(p).unwrap().pt.state(g).is_resident() {
                        k.evict(p, g).unwrap();
                    }
                }
                Op::EvictBatch { proc, first, len } if is_alive(proc, &alive) => {
                    let p = pid(proc);
                    let pages: Vec<PageNum> = (0..len as u32)
                        .map(|i| PageNum((first as u32 + i) % PAGES))
                        .collect();
                    k.evict_batch(p, &pages, &mut Vec::new()).unwrap();
                }
                Op::CleanBatch { proc, first, len } if is_alive(proc, &alive) => {
                    let p = pid(proc);
                    let pages: Vec<PageNum> = (0..len as u32)
                        .map(|i| PageNum((first as u32 + i) % PAGES))
                        .collect();
                    k.clean_batch(p, &pages).unwrap();
                }
                Op::Quantum { proc } if is_alive(proc, &alive) => {
                    k.quantum_started(pid(proc)).unwrap();
                }
                Op::Exit { proc } if is_alive(proc, &alive) => {
                    k.unregister_proc(pid(proc)).unwrap();
                    alive[(proc as u32 % NPROCS) as usize] = false;
                }
                _ => {}
            }
            k.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated after {t} ops: {e}"))
            })?;
        }
    }

    /// touch_run over any window agrees with per-page touch on a twin
    /// kernel (same hits, same fault, same WSS accounting).
    #[test]
    fn touch_run_equals_touch_loop(
        resident in prop::collection::vec(any::<bool>(), PAGES as usize),
        dirty_seed in any::<u64>(),
        first in 0u32..PAGES,
        max in 0usize..(PAGES as usize),
        write in any::<bool>(),
    ) {
        let max = max.min((PAGES - first) as usize);
        let build = || {
            let mut k = kernel();
            let pid = ProcId(0);
            let mut rng = dirty_seed;
            for (i, &r) in resident.iter().enumerate() {
                if r && k.free_frames() > 0 {
                    k.map_in(pid, PageNum(i as u32), SimTime::from_us(i as u64)).unwrap();
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if rng & 1 == 1 {
                        k.touch(pid, PageNum(i as u32), true, SimTime::from_us(i as u64)).unwrap();
                    }
                }
            }
            k
        };
        let mut k1 = build();
        let mut k2 = build();
        let pid = ProcId(0);
        let now = SimTime::from_us(9_999);
        let (hits, fault) = k1.touch_run(pid, PageNum(first), max, write, now).unwrap();
        let mut hits2 = 0;
        let mut fault2 = None;
        for i in 0..max {
            match k2.touch(pid, PageNum(first + i as u32), write, now).unwrap() {
                agp_mem::TouchOutcome::Hit => hits2 += 1,
                other => { fault2 = Some(other); break; }
            }
        }
        prop_assert_eq!(hits, hits2);
        prop_assert_eq!(fault, fault2);
        prop_assert_eq!(
            k1.proc(pid).unwrap().wss_current(),
            k2.proc(pid).unwrap().wss_current()
        );
        k1.check_invariants().unwrap();
        k2.check_invariants().unwrap();
    }

    /// The swap allocator conserves blocks across arbitrary alloc/free
    /// sequences and never hands out overlapping extents.
    #[test]
    fn swap_allocator_conserves(ops in prop::collection::vec((any::<bool>(), 1u64..64), 1..200)) {
        let total = 1024;
        let mut s = SwapSpace::new(total);
        let mut held: Vec<agp_disk::Extent> = Vec::new();
        let mut held_blocks = 0u64;
        for (do_alloc, n) in ops {
            if do_alloc {
                match s.alloc(n) {
                    Ok(extents) => {
                        // No overlap with anything already held.
                        for e in &extents {
                            for h in &held {
                                prop_assert!(
                                    e.end() <= h.start || h.end() <= e.start,
                                    "overlapping allocation {e:?} vs {h:?}"
                                );
                            }
                        }
                        held_blocks += n;
                        held.extend(extents);
                    }
                    Err(MemError::SwapFull { free, .. }) => {
                        prop_assert_eq!(free, total - held_blocks);
                        prop_assert!(free < n);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
                }
            } else if let Some(e) = held.pop() {
                s.free_extent(e);
                held_blocks -= e.len;
            }
            prop_assert_eq!(s.used_blocks(), held_blocks);
            prop_assert_eq!(s.free_blocks(), total - held_blocks);
        }
    }
}
