//! Deterministic (seeded) mirror of the kernel-invariant property test.
//!
//! `proptests.rs` explores the same operation space with shrinking; this
//! drives the identical mix from `SimRng` so the conservation checks —
//! including the swap-owner reverse-map coherence added for the
//! invariant sweep — stay exercised in builds where the proptest
//! dev-dependency is unavailable.

use agp_mem::{Kernel, PageNum, ProcId, VmParams};
use agp_sim::{SimRng, SimTime};

const NPROCS: u32 = 3;
const PAGES: u32 = 64;

fn kernel() -> Kernel {
    let mut k = Kernel::new(
        VmParams {
            total_frames: 128,
            wired_frames: 16,
            freepages_min: 4,
            freepages_high: 8,
            readahead: 16,
        },
        4096,
    );
    for p in 0..NPROCS {
        k.register_proc(ProcId(p), PAGES as usize);
    }
    k
}

#[test]
fn kernel_invariants_survive_seeded_op_sequences() {
    let mut rng = SimRng::new(0x5EED_1417);
    for round in 0..24 {
        let mut k = kernel();
        let mut alive = [true; NPROCS as usize];
        let mut t = 0u64;
        for step in 0..400 {
            t += 1;
            let now = SimTime::from_us(t);
            let pid = ProcId(rng.below(NPROCS as u64) as u32);
            let pg = PageNum(rng.below(PAGES as u64) as u32);
            if !alive[pid.0 as usize] {
                continue;
            }
            match rng.below(7) {
                0 | 1 => {
                    let write = rng.chance(0.4);
                    let _ = k.touch(pid, pg, write, now);
                }
                2 => {
                    if k.free_frames() > 0 && !k.proc(pid).unwrap().pt.state(pg).is_resident() {
                        k.map_in(pid, pg, now).unwrap();
                    }
                }
                3 => {
                    if k.proc(pid).unwrap().pt.state(pg).is_resident() {
                        k.evict(pid, pg).unwrap();
                    }
                }
                4 => {
                    let len = rng.below(16);
                    let pages: Vec<PageNum> = (0..len as u32)
                        .map(|i| PageNum((pg.0 + i) % PAGES))
                        .collect();
                    k.evict_batch(pid, &pages, &mut Vec::new()).unwrap();
                }
                5 => {
                    let len = rng.below(16);
                    let pages: Vec<PageNum> = (0..len as u32)
                        .map(|i| PageNum((pg.0 + i) % PAGES))
                        .collect();
                    k.clean_batch(pid, &pages).unwrap();
                }
                _ => {
                    if rng.chance(0.1) {
                        k.unregister_proc(pid).unwrap();
                        alive[pid.0 as usize] = false;
                    } else {
                        k.quantum_started(pid).unwrap();
                    }
                }
            }
            k.check_invariants()
                .unwrap_or_else(|e| panic!("round {round} step {step}: {e}"));
        }
    }
}
