//! **Fig. 7** — serial benchmarks (§4.1): job completion time, switching
//! overhead, and paging reduction for two gang-scheduled instances of
//! each class B benchmark on a single node with a 5-minute quantum.
//!
//! Paper-reported values (class B serial, `so/ao/ai/bg` vs `orig`):
//!
//! * overhead: "more than or close to 50 %" for SP/CG/IS/MG under the
//!   original kernel; LU 26 %. Adaptive: between 5 % and 37 %; LU 5 %.
//! * reduction: MG 93 %, LU 84 %, SP 78 %, CG 68 %, IS 19 %.
//!
//! The paper locked memory per benchmark without reporting the amounts
//! ("different ... memory locking sizes were used", §4.3); the lock sizes
//! here are calibrated so the *original* kernel lands in the paper's
//! overhead regime and are recorded in the output notes.

use crate::common::{mins, pct, quick_serial, run_policy_set, ExperimentOutput, Scale, Scenario};
use agp_core::PolicyConfig;
use agp_metrics::{overhead_pct, reduction_pct, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// Paper-reported paging reduction (%) per benchmark, Fig. 7(c).
pub const PAPER_REDUCTION: [(Benchmark, f64); 5] = [
    (Benchmark::MG, 93.0),
    (Benchmark::LU, 84.0),
    (Benchmark::SP, 78.0),
    (Benchmark::CG, 68.0),
    (Benchmark::IS, 19.0),
];

/// Memory locked per benchmark at paper scale (MiB out of 1024), chosen
/// so the original kernel reproduces the paper's overhead regime.
pub fn paper_lock_mib(bench: Benchmark) -> u64 {
    match bench {
        Benchmark::LU => 574, // 450 MiB usable
        Benchmark::SP => 624, // 400 MiB usable → orig ≈ 49 % ("close to 50 %")
        Benchmark::CG => 674, // 350 MiB usable
        Benchmark::IS => 674,
        Benchmark::MG => 574, // orig ≈ 89 % — the paper's worst case
        // Extension codes (not part of Fig. 7):
        Benchmark::BT => 574,
        Benchmark::FT => 474,
        Benchmark::EP => 674,
    }
}

fn scenario(bench: Benchmark, scale: Scale) -> Scenario {
    match scale {
        Scale::Paper => Scenario::pair(
            1,
            paper_lock_mib(bench),
            WorkloadSpec::serial(bench, Class::B),
            SimDur::from_mins(5),
        ),
        Scale::Quick => quick_serial(bench),
    }
}

/// Run Fig. 7 at the given scale.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let full = PolicyConfig::full();
    let mut a = Table::new(
        "Fig 7(a) — serial job completion time (minutes, 2 instances)",
        &["bench", "orig", "so/ao/ai/bg", "batch"],
    );
    let mut b = Table::new(
        "Fig 7(b) — switching overhead (%)",
        &[
            "bench",
            "orig",
            "so/ao/ai/bg",
            "paper orig",
            "paper adaptive",
        ],
    );
    let mut c = Table::new(
        "Fig 7(c) — paging reduction over original (%)",
        &["bench", "measured", "paper"],
    );
    let mut notes = Vec::new();

    // The paper's presentation order.
    let order = [
        Benchmark::LU,
        Benchmark::SP,
        Benchmark::CG,
        Benchmark::IS,
        Benchmark::MG,
    ];
    let mut measured = Vec::new();
    for bench in order {
        let sc = scenario(bench, scale);
        let t = run_policy_set(&sc, &[full])?;
        let t_full = t.policies[0].1.makespan;
        let ov_orig = overhead_pct(t.orig, t.batch);
        let ov_full = overhead_pct(t_full, t.batch);
        let red = reduction_pct(t.orig, t_full, t.batch);
        measured.push((bench, red));

        a.row(vec![
            bench.to_string(),
            mins(t.orig),
            mins(t_full),
            mins(t.batch),
        ]);
        let (paper_o, paper_a) = match bench {
            Benchmark::LU => ("26", "5"),
            Benchmark::IS => ("~50", "37"),
            _ => ("≥50", "5–37"),
        };
        b.row(vec![
            bench.to_string(),
            pct(ov_orig),
            pct(ov_full),
            paper_o.into(),
            paper_a.into(),
        ]);
        let paper_red = PAPER_REDUCTION
            .iter()
            .find(|(be, _)| *be == bench)
            .map(|(_, r)| *r)
            .unwrap();
        c.row(vec![bench.to_string(), pct(red), pct(paper_red)]);
        if scale == Scale::Paper {
            notes.push(format!(
                "{bench}: locked {} MiB (usable {} MiB); orig moved {:.0} MiB of pages, adaptive {:.0} MiB",
                paper_lock_mib(bench),
                1024 - paper_lock_mib(bench),
                (t.orig_result.total_pages_in() + t.orig_result.total_pages_out()) as f64 / 256.0,
                (t.policies[0].1.total_pages_in() + t.policies[0].1.total_pages_out()) as f64
                    / 256.0,
            ));
        }
    }

    // Shape checks the paper's text makes explicit.
    let red_of = |b: Benchmark| measured.iter().find(|(x, _)| *x == b).unwrap().1;
    notes.push(format!(
        "shape: MG ({:.0}%) has the largest reduction, IS ({:.0}%) the smallest — paper: 93% and 19%",
        red_of(Benchmark::MG),
        red_of(Benchmark::IS),
    ));
    notes.push(
        "paper: 'for the serial benchmark programs whose working size is large, our adaptive \
         paging mechanisms were able to reduce the paging overhead by more than 65%'"
            .into(),
    );

    Ok(ExperimentOutput {
        id: "fig7".into(),
        title: "Serial benchmarks: completion, overhead, reduction (paper Fig. 7)".into(),
        tables: vec![a, b, c],
        traces: Vec::new(),
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full quick-scale Fig. 7: every benchmark must show the paper's
    /// directional result (adaptive ≥ original, batch fastest).
    #[test]
    fn quick_fig7_shapes_hold() {
        let out = run(Scale::Quick).unwrap();
        assert_eq!(out.tables.len(), 3);
        let a = &out.tables[0];
        assert_eq!(a.len(), 5);
        for r in 0..a.len() {
            let orig: f64 = a.cell(r, 1).parse().unwrap();
            let full: f64 = a.cell(r, 2).parse().unwrap();
            let batch: f64 = a.cell(r, 3).parse().unwrap();
            assert!(
                batch <= orig + 1e-9,
                "batch must be fastest for {}",
                a.cell(r, 0)
            );
            assert!(
                full <= orig + 1e-9,
                "adaptive must not lose to original for {}",
                a.cell(r, 0)
            );
        }
    }
}
