//! # agp-experiments — the paper's evaluation, experiment by experiment
//!
//! One module per figure/table of *Adaptive Memory Paging for Efficient
//! Gang Scheduling of Parallel Applications* (§4), plus the motivation
//! experiment from §1 and two ablations the paper discusses in prose:
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig6`] | Fig. 6 — paging-activity traces, LU class C on 4 nodes (also demonstrates the Fig. 1 compaction claim) |
//! | [`fig7`] | Fig. 7(a–c) — serial class B completion / overhead / reduction |
//! | [`fig8`] | Fig. 8(a–f) — parallel benchmarks on 2 and 4 nodes |
//! | [`fig9`] | Fig. 9(a–c) — LU under every policy combination |
//! | [`moreira`] | §1 — Moreira et al. 3×45 MB jobs, 128 vs 256 MB |
//! | [`bg_ablation`] | §3.4 — background-writing window sweep ("last 10 % is best") |
//! | [`quantum_sweep`] | §5 (Wang et al.) — overhead vs quantum length |
//!
//! Extensions beyond the published evaluation (each grounded in the
//! paper's own text):
//!
//! | module | grounding |
//! |--------|-----------|
//! | [`scale16`] | §6/footnote 2 — the announced 8/16-node follow-up |
//! | [`mpl`] | §1 — overhead vs multiprogramming level |
//! | [`admission`] | §5 [15] — Batat & Feitelson admission control comparator |
//!
//! Every experiment runs at two scales: [`Scale::Paper`] reproduces the
//! testbed geometry (1 GiB nodes, 5-minute quanta, class B/C inputs;
//! seconds of wall time per run), and [`Scale::Quick`] shrinks memory and
//! classes for CI while preserving the pressure geometry (the working set
//! of one job fits memory, two do not).
//!
//! Where the paper varied the `mlock()` amount per experiment ("different
//! input data sizes and memory locking sizes were used", §4.3), the
//! per-benchmark lock sizes used here are recorded in each module and in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bg_ablation;
pub mod common;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod moreira;
pub mod mpl;
pub mod parity;
pub mod quantum_sweep;
pub mod registry;
pub mod scale16;

pub use common::{chaos_demo, run_pool, ExperimentOutput, Scale};
pub use fig9::explain_pair;
pub use parity::{add_output, default_tolerances, manifest_of, scale_name, REPORT_SEED};
pub use registry::{all_experiments, find, profile_config, ExperimentInfo};
