//! Name → experiment dispatch for the CLI and the bench harness.

use crate::common::{ExperimentOutput, Scale};

/// A runnable experiment.
pub struct ExperimentInfo {
    /// Short id used on the command line (`agp run fig7`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Entry point.
    pub runner: fn(Scale) -> Result<ExperimentOutput, String>,
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<ExperimentInfo> {
    vec![
        ExperimentInfo {
            id: "moreira",
            title: "§1 motivation: 3×45MB jobs on 128 vs 256 MB",
            runner: crate::moreira::run,
        },
        ExperimentInfo {
            id: "fig6",
            title: "Fig 6: paging-activity traces (LU.C, 4 machines)",
            runner: crate::fig6::run,
        },
        ExperimentInfo {
            id: "fig7",
            title: "Fig 7: serial benchmarks — completion/overhead/reduction",
            runner: crate::fig7::run,
        },
        ExperimentInfo {
            id: "fig8",
            title: "Fig 8: parallel benchmarks on 2 and 4 machines",
            runner: crate::fig8::run,
        },
        ExperimentInfo {
            id: "fig9",
            title: "Fig 9: LU across all policy combinations",
            runner: crate::fig9::run,
        },
        ExperimentInfo {
            id: "bgablate",
            title: "§3.4 ablation: background-writing window",
            runner: crate::bg_ablation::run,
        },
        ExperimentInfo {
            id: "quantum",
            title: "§5/§6: overhead vs quantum length",
            runner: crate::quantum_sweep::run,
        },
        ExperimentInfo {
            id: "scale16",
            title: "extension: 8/16-node scale-up (§6 future work)",
            runner: crate::scale16::run,
        },
        ExperimentInfo {
            id: "mpl",
            title: "extension: overhead vs multiprogramming level (§1)",
            runner: crate::mpl::run,
        },
        ExperimentInfo {
            id: "admission",
            title: "extension: admission control vs adaptive gang (§5 [15])",
            runner: crate::admission::run,
        },
    ]
}

/// Look an experiment up by id (case-insensitive).
pub fn find(id: &str) -> Option<ExperimentInfo> {
    let id = id.to_ascii_lowercase();
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 10);
        let mut ids: Vec<_> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "duplicate experiment ids");
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("FIG7").is_some());
        assert!(find("fig7").is_some());
        assert!(find("nope").is_none());
    }
}
