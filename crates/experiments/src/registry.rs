//! Name → experiment dispatch for the CLI and the bench harness.

use crate::common::{quick_parallel, quick_serial, ExperimentOutput, Scale, Scenario};
use agp_cluster::{ClusterConfig, ScheduleMode};
use agp_core::PolicyConfig;
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// A runnable experiment.
pub struct ExperimentInfo {
    /// Short id used on the command line (`agp run fig7`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Entry point.
    pub runner: fn(Scale) -> Result<ExperimentOutput, String>,
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<ExperimentInfo> {
    vec![
        ExperimentInfo {
            id: "moreira",
            title: "§1 motivation: 3×45MB jobs on 128 vs 256 MB",
            runner: crate::moreira::run,
        },
        ExperimentInfo {
            id: "fig6",
            title: "Fig 6: paging-activity traces (LU.C, 4 machines)",
            runner: crate::fig6::run,
        },
        ExperimentInfo {
            id: "fig7",
            title: "Fig 7: serial benchmarks — completion/overhead/reduction",
            runner: crate::fig7::run,
        },
        ExperimentInfo {
            id: "fig8",
            title: "Fig 8: parallel benchmarks on 2 and 4 machines",
            runner: crate::fig8::run,
        },
        ExperimentInfo {
            id: "fig9",
            title: "Fig 9: LU across all policy combinations",
            runner: crate::fig9::run,
        },
        ExperimentInfo {
            id: "bgablate",
            title: "§3.4 ablation: background-writing window",
            runner: crate::bg_ablation::run,
        },
        ExperimentInfo {
            id: "quantum",
            title: "§5/§6: overhead vs quantum length",
            runner: crate::quantum_sweep::run,
        },
        ExperimentInfo {
            id: "scale16",
            title: "extension: 8/16-node scale-up (§6 future work)",
            runner: crate::scale16::run,
        },
        ExperimentInfo {
            id: "mpl",
            title: "extension: overhead vs multiprogramming level (§1)",
            runner: crate::mpl::run,
        },
        ExperimentInfo {
            id: "admission",
            title: "extension: admission control vs adaptive gang (§5 [15])",
            runner: crate::admission::run,
        },
    ]
}

/// Look an experiment up by id (case-insensitive).
pub fn find(id: &str) -> Option<ExperimentInfo> {
    let id = id.to_ascii_lowercase();
    all_experiments().into_iter().find(|e| e.id == id)
}

/// A single representative gang configuration for `agp profile <id>`:
/// the experiment's characteristic scenario under the full adaptive
/// policy, as one run (experiments proper sweep many policies; profiling
/// wants one instrumentable run). Returns `None` for unknown ids.
pub fn profile_config(id: &str, scale: Scale) -> Option<ClusterConfig> {
    find(id)?;
    let scenario = match (id.to_ascii_lowercase().as_str(), scale) {
        // Fig 6's testbed: LU.C over 4 machines.
        ("fig6", Scale::Paper) => Scenario::pair(
            4,
            724,
            WorkloadSpec::parallel(Benchmark::LU, Class::C, 4),
            SimDur::from_mins(5),
        ),
        ("fig6", Scale::Quick) => quick_parallel(Benchmark::LU, 2),
        // The parallel experiments: 2-node LU.
        ("fig8" | "scale16", Scale::Paper) => Scenario::pair(
            2,
            724,
            WorkloadSpec::parallel(Benchmark::LU, Class::B, 2),
            SimDur::from_mins(5),
        ),
        ("fig8" | "scale16", Scale::Quick) => quick_parallel(Benchmark::LU, 2),
        // Everything else profiles the serial LU.B pair.
        (_, Scale::Paper) => Scenario::pair(
            1,
            574,
            WorkloadSpec::serial(Benchmark::LU, Class::B),
            SimDur::from_mins(5),
        ),
        (_, Scale::Quick) => quick_serial(Benchmark::LU),
    };
    Some(scenario.config(PolicyConfig::full(), ScheduleMode::Gang))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 10);
        let mut ids: Vec<_> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "duplicate experiment ids");
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("FIG7").is_some());
        assert!(find("fig7").is_some());
        assert!(find("nope").is_none());
    }

    /// Pin the `agp report` span feed: a serial experiment run under the
    /// self-profiler must yield per-span aggregates, and a
    /// [`agp_metrics::BenchManifest`] carrying them must render real
    /// cells — the regression behind a committed `BENCH_agp.json` whose
    /// `"spans"` object was silently empty.
    #[test]
    fn profiled_experiment_run_feeds_span_cells() {
        agp_perf::enable(true);
        let _ = agp_perf::take_report(); // drop anything a prior test recorded
        let out = (find("admission").unwrap().runner)(Scale::Quick).unwrap();
        agp_perf::enable(false);
        let rep = agp_perf::take_report();
        assert!(!out.tables.is_empty());
        let cells: std::collections::BTreeMap<String, agp_metrics::SpanCell> = rep
            .spans
            .iter()
            .map(|a| {
                (
                    a.span.name().to_string(),
                    agp_metrics::SpanCell {
                        calls: a.count,
                        total_ns: a.incl_ns,
                        self_ns: a.excl_ns,
                    },
                )
            })
            .collect();
        assert!(
            !cells.is_empty(),
            "a profiled experiment run recorded no spans"
        );
        let mut bench = agp_metrics::BenchManifest::new();
        bench.insert("admission", 0.1);
        bench.insert_spans("admission", cells);
        let json = bench.to_json();
        assert!(
            json.contains("\"total_ns\":"),
            "manifest spans render real cells: {json}"
        );
        let back = agp_metrics::BenchManifest::parse(&json).unwrap();
        assert_eq!(back, bench, "span cells survive the JSON round trip");
    }

    #[test]
    fn profile_configs_are_valid_for_every_id() {
        for e in all_experiments() {
            let cfg = profile_config(e.id, Scale::Quick)
                .unwrap_or_else(|| panic!("{} has no profile config", e.id));
            cfg.validate()
                .unwrap_or_else(|err| panic!("{}: {err}", e.id));
            assert_eq!(cfg.mode, agp_cluster::ScheduleMode::Gang);
        }
        assert!(profile_config("nope", Scale::Quick).is_none());
        let paper = profile_config("fig6", Scale::Paper).unwrap();
        paper.validate().unwrap();
        assert_eq!(paper.nodes, 4);
    }
}
