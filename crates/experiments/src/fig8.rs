//! **Fig. 8** — gang-scheduled *parallel* benchmarks (§4.2): completion,
//! overhead, and reduction on 2 machines (panels a–c) and 4 machines
//! (panels d–f), two instances each, `orig` vs `so/ao/ai/bg` vs `batch`.
//!
//! Benchmark roster follows the paper exactly:
//! * 2 machines: LU, CG, IS, MG ("SP … does not compile for 2 machines");
//! * 4 machines: LU, SP, CG, IS ("MG is included only for 2 machines as
//!   its memory size is not suitable"); SP runs with a 7-minute quantum
//!   ("to avoid continuous memory thrashing").
//!
//! Paper-reported reductions with `so/ao/ai/bg`:
//! * 2 machines: LU 61 %, IS 72 %, CG 38 %;
//! * 4 machines: LU 43 %, IS 57 %, SP 70 %, CG 7 % (CG "does not induce
//!   as much paging"; on 4 machines "paging does not occur").

use crate::common::{mins, pct, quick_parallel, run_policy_set, ExperimentOutput, Scale, Scenario};
use agp_core::PolicyConfig;
use agp_metrics::{overhead_pct, reduction_pct, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// One roster entry: benchmark, class, lock size (MiB), quantum override.
struct Entry {
    bench: Benchmark,
    class: Class,
    lock_mib: u64,
    quantum: Option<SimDur>,
    paper_reduction: Option<f64>,
}

/// The 2-machine roster (panels a–c).
///
/// The paper does not state the classes of its parallel runs; classes and
/// lock sizes here are chosen so each code pages the way its panel shows
/// (class B halves finish inside one 5-minute quantum for CG/IS, so those
/// two use class C on 2 machines).
fn roster_2() -> Vec<Entry> {
    vec![
        Entry {
            bench: Benchmark::LU,
            class: Class::B,
            lock_mib: 774,
            quantum: None,
            paper_reduction: Some(61.0),
        },
        Entry {
            bench: Benchmark::CG,
            class: Class::C,
            lock_mib: 524,
            quantum: None,
            paper_reduction: Some(38.0),
        },
        Entry {
            bench: Benchmark::IS,
            class: Class::C,
            lock_mib: 724,
            quantum: None,
            paper_reduction: Some(72.0),
        },
        Entry {
            bench: Benchmark::MG,
            class: Class::B,
            lock_mib: 774,
            quantum: None,
            paper_reduction: None,
        },
    ]
}

/// The 4-machine roster (panels d–f).
fn roster_4() -> Vec<Entry> {
    vec![
        Entry {
            bench: Benchmark::LU,
            class: Class::C,
            lock_mib: 724,
            quantum: None,
            paper_reduction: Some(43.0),
        },
        Entry {
            bench: Benchmark::SP,
            class: Class::C,
            lock_mib: 674,
            quantum: Some(SimDur::from_mins(7)),
            paper_reduction: Some(70.0),
        },
        // Paper: CG's per-rank memory shrinks so far that "even with
        // memory locking paging does not occur" — class B split 4 ways.
        Entry {
            bench: Benchmark::CG,
            class: Class::B,
            lock_mib: 674,
            quantum: None,
            paper_reduction: Some(7.0),
        },
        Entry {
            bench: Benchmark::IS,
            class: Class::C,
            lock_mib: 874,
            quantum: None,
            paper_reduction: Some(57.0),
        },
    ]
}

fn run_panel(
    nodes: u32,
    roster: Vec<Entry>,
    scale: Scale,
    tables: &mut Vec<Table>,
    notes: &mut Vec<String>,
) -> Result<(), String> {
    let suffix = format!("{nodes} machines");
    let mut a = Table::new(
        format!("Fig 8 — completion time, {suffix} (minutes)"),
        &["bench", "orig", "so/ao/ai/bg", "batch"],
    );
    let mut b = Table::new(
        format!("Fig 8 — switching overhead, {suffix} (%)"),
        &["bench", "orig", "so/ao/ai/bg"],
    );
    let mut c = Table::new(
        format!("Fig 8 — paging reduction, {suffix} (%)"),
        &["bench", "measured", "paper"],
    );
    for e in roster {
        let (sc, label) = match scale {
            Scale::Paper => {
                let mut sc = Scenario::pair(
                    nodes,
                    e.lock_mib,
                    WorkloadSpec::parallel(e.bench, e.class, nodes),
                    SimDur::from_mins(5),
                );
                sc.job_quantum = e.quantum;
                (sc, format!("{}.{}", e.bench, e.class))
            }
            Scale::Quick => (quick_parallel(e.bench, nodes.min(2)), e.bench.to_string()),
        };
        let t = run_policy_set(&sc, &[PolicyConfig::full()])?;
        let t_full = t.policies[0].1.makespan;
        a.row(vec![
            label.clone(),
            mins(t.orig),
            mins(t_full),
            mins(t.batch),
        ]);
        b.row(vec![
            label.clone(),
            pct(overhead_pct(t.orig, t.batch)),
            pct(overhead_pct(t_full, t.batch)),
        ]);
        c.row(vec![
            label.clone(),
            pct(reduction_pct(t.orig, t_full, t.batch)),
            e.paper_reduction.map(pct).unwrap_or_else(|| "n/a".into()),
        ]);
        if scale == Scale::Paper && e.bench == Benchmark::CG && nodes == 4 {
            notes.push(format!(
                "CG on 4 machines pages little by design (paper: 'paging does not occur'): \
                 orig moved {:.0} MiB total",
                (t.orig_result.total_pages_in() + t.orig_result.total_pages_out()) as f64 / 256.0
            ));
        }
    }
    tables.push(a);
    tables.push(b);
    tables.push(c);
    Ok(())
}

/// Run Fig. 8 at the given scale.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let mut tables = Vec::new();
    let mut notes = vec![
        "paper: 'All the applications consistently improve the completion time with \
         so/ao/ai/bg'"
            .into(),
        "paper: SP on 4 machines 'needs a longer quantum of 7 minutes to avoid continuous \
         memory thrashing' — reproduced via its per-job quantum override"
            .into(),
    ];
    run_panel(2, roster_2(), scale, &mut tables, &mut notes)?;
    run_panel(4, roster_4(), scale, &mut tables, &mut notes)?;
    Ok(ExperimentOutput {
        id: "fig8".into(),
        title: "Parallel benchmarks on 2 and 4 machines (paper Fig. 8)".into(),
        tables,
        traces: Vec::new(),
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig8_adaptive_never_loses() {
        let out = run(Scale::Quick).unwrap();
        assert_eq!(out.tables.len(), 6);
        for t in out
            .tables
            .iter()
            .filter(|t| t.title().contains("completion"))
        {
            for r in 0..t.len() {
                let orig: f64 = t.cell(r, 1).parse().unwrap();
                let full: f64 = t.cell(r, 2).parse().unwrap();
                assert!(
                    full <= orig + 1e-9,
                    "{}: adaptive {} vs orig {}",
                    t.cell(r, 0),
                    full,
                    orig
                );
            }
        }
    }
}
