//! Flattening experiment outputs into the parity manifest behind
//! `agp report`.
//!
//! Every numeric cell of every result table becomes one manifest metric,
//! keyed `"{experiment}.{table}.{row}.{column}"` with each segment
//! slugged (`fig7.fig-7-b-switching-overhead.lu.orig`). The first column
//! of a table names its rows; non-numeric cells (benchmark names, the
//! paper's "≥50"-style reference strings) are skipped. The mapping is
//! pure string processing over already-deterministic tables, so a golden
//! manifest pins the complete numeric surface of EXPERIMENTS.md.

use crate::common::{ExperimentOutput, Scale};
use agp_metrics::manifest::slug;
use agp_metrics::{ParityManifest, Tolerance, Tolerances};

/// The master seed every registry experiment runs under (the workspace
/// default; experiments do not override it).
pub const REPORT_SEED: u64 = 0x5EED_600D;

/// Wire name of a scale in manifests and golden-file paths.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
    }
}

/// Parse one table cell as a metric value. Accepts plain numbers with an
/// optional `%` suffix; anything else (labels, `≥50`, `5–37`, em-dashes)
/// is not a metric.
fn parse_cell(cell: &str) -> Option<f64> {
    let s = cell.trim().trim_end_matches('%').trim();
    let v: f64 = s.parse().ok()?;
    v.is_finite().then_some(v)
}

/// Fold one experiment's tables into `m`.
pub fn add_output(m: &mut ParityManifest, out: &ExperimentOutput) {
    let exp = slug(&out.id);
    for t in &out.tables {
        let tab = slug(t.title());
        for r in 0..t.len() {
            let row = slug(t.cell(r, 0));
            for (c, header) in t.headers().iter().enumerate().skip(1) {
                if let Some(v) = parse_cell(t.cell(r, c)) {
                    m.insert(format!("{exp}.{tab}.{row}.{}", slug(header)), v);
                }
            }
        }
    }
}

/// Flatten a full registry run into one manifest.
pub fn manifest_of(outputs: &[ExperimentOutput], scale: Scale) -> ParityManifest {
    let mut m = ParityManifest::new(scale_name(scale), REPORT_SEED);
    for out in outputs {
        add_output(&mut m, out);
    }
    m
}

/// The tolerance bands `agp report --check` gates with.
///
/// The simulation is deterministic given the seed, so the default band is
/// effectively exact (it only absorbs the one-decimal rounding the tables
/// print with). Derived percentage metrics divide two nearly-equal
/// makespans, so legitimate refactors that shift a run by one I/O event
/// can move them visibly — they get a small absolute band instead of
/// failing on noise.
pub fn default_tolerances() -> Tolerances {
    Tolerances::new(Tolerance::new(0.0, 0.051))
        .with_override("fig7.fig-7-b", Tolerance::new(0.0, 1.0))
        .with_override("fig7.fig-7-c", Tolerance::new(0.0, 1.0))
        .with_override("fig8", Tolerance::new(0.0, 1.0))
        .with_override("fig9", Tolerance::new(0.0, 1.0))
        .with_override("quantum", Tolerance::new(0.0, 1.0))
        .with_override("mpl", Tolerance::new(0.0, 1.0))
        .with_override("admission", Tolerance::new(0.0, 1.0))
        .with_override("scale16", Tolerance::new(0.0, 1.0))
        .with_override("bgablate", Tolerance::new(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agp_metrics::Table;

    #[test]
    fn cells_parse_numbers_and_skip_prose() {
        assert_eq!(parse_cell("26"), Some(26.0));
        assert_eq!(parse_cell(" 5.2 "), Some(5.2));
        assert_eq!(parse_cell("37%"), Some(37.0));
        assert_eq!(parse_cell("-3.5"), Some(-3.5));
        assert_eq!(parse_cell("LU"), None);
        assert_eq!(parse_cell("≥50"), None);
        assert_eq!(parse_cell("5–37"), None);
        assert_eq!(parse_cell("NaN"), None);
    }

    #[test]
    fn tables_flatten_to_slugged_keys() {
        let mut t = Table::new(
            "Fig 7(b) — switching overhead (%)",
            &["bench", "orig", "paper"],
        );
        t.row(vec!["LU".into(), "26.0".into(), "≥50".into()]);
        t.row(vec!["IS".into(), "49.9".into(), "37".into()]);
        let out = ExperimentOutput {
            id: "fig7".into(),
            title: "t".into(),
            tables: vec![t],
            ..Default::default()
        };
        let m = manifest_of(std::slice::from_ref(&out), Scale::Quick);
        assert_eq!(m.scale, "quick");
        assert_eq!(m.seed, REPORT_SEED);
        assert_eq!(m.metrics["fig7.fig-7-b-switching-overhead.lu.orig"], 26.0);
        assert_eq!(m.metrics["fig7.fig-7-b-switching-overhead.is.paper"], 37.0);
        // The "≥50" reference cell is prose, not a metric.
        assert_eq!(m.metrics.len(), 3);
    }

    #[test]
    fn sharded_registry_runs_produce_byte_identical_manifests() {
        // The tentpole acceptance property, pinned at manifest level over
        // the two cheapest registry entries: fanning experiments out over
        // 1, 2 and 8 shards must yield byte-identical report JSON.
        // (check.sh repeats this over the full registry via the CLI.)
        use crate::common::run_pool;
        let exps: Vec<_> = ["moreira", "admission"]
            .iter()
            .map(|id| crate::registry::find(id).expect("registry id"))
            .collect();
        let report = |jobs: usize| {
            let outs: Result<Vec<ExperimentOutput>, String> =
                run_pool(exps.len(), jobs, |i| (exps[i].runner)(Scale::Quick))
                    .expect("pool runs")
                    .into_iter()
                    .collect();
            manifest_of(&outs.expect("experiments run"), Scale::Quick).to_json()
        };
        let serial = report(1);
        assert_eq!(report(2), serial, "2 shards diverged from serial");
        assert_eq!(report(8), serial, "8 shards diverged from serial");
    }

    #[test]
    fn registry_quick_run_yields_a_stable_nonempty_manifest() {
        // moreira is the fastest registry entry; it stands in for the
        // full `agp report` sweep here.
        let out = crate::moreira::run(Scale::Quick).expect("moreira runs");
        let a = manifest_of(std::slice::from_ref(&out), Scale::Quick);
        assert!(!a.metrics.is_empty(), "moreira produces metrics");
        let out2 = crate::moreira::run(Scale::Quick).expect("moreira runs");
        let b = manifest_of(std::slice::from_ref(&out2), Scale::Quick);
        assert_eq!(a.to_json(), b.to_json(), "same seed, same manifest");
        assert!(a.compare(&b, &default_tolerances()).is_empty());
    }
}
