//! **Scale-up to 8 and 16 nodes** — the paper's announced follow-up work
//! (§6: "We are extending our performance study to parallel applications
//! running on 8 and 16 nodes", with "each having 1GB memory and 2GHz
//! Intel Pentium 4 CPU", footnote 2).
//!
//! Two LU class C instances gang-scheduled on 4, 8, and 16 nodes; memory
//! locked so per-node pressure stays proportional to the per-rank
//! footprint. The question the paper poses implicitly: does the adaptive
//! advantage survive as the per-node working set shrinks and barrier
//! coupling widens? (It does: per-switch I/O shrinks with the rank size,
//! but so does the compute between switches, and the coordinated bulk
//! transfers keep all nodes' paging aligned.)

use crate::common::{mins, pct, quick_parallel, run_policy_set, ExperimentOutput, Scale, Scenario};
use agp_core::PolicyConfig;
use agp_metrics::{overhead_pct, reduction_pct, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// Node counts swept at paper scale.
pub const PAPER_NODES: [u32; 3] = [4, 8, 16];

/// Memory locked per node (MiB of 1024) so that two ranks of LU.C
/// over-commit each node by a similar factor at every scale.
fn lock_for(nodes: u32) -> u64 {
    match nodes {
        4 => 724,  // 188 MiB/rank vs 300 usable
        8 => 874,  // 101 MiB/rank vs 150 usable
        16 => 949, // 51 MiB/rank vs 75 usable
        _ => 724,
    }
}

fn scenario(nodes: u32, scale: Scale) -> Scenario {
    match scale {
        Scale::Paper => Scenario::pair(
            nodes,
            lock_for(nodes),
            WorkloadSpec::parallel(Benchmark::LU, Class::C, nodes),
            SimDur::from_mins(5),
        ),
        Scale::Quick => quick_parallel(Benchmark::LU, nodes.min(4)),
    }
}

/// Run the scale-up study.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let node_counts: Vec<u32> = match scale {
        Scale::Paper => PAPER_NODES.to_vec(),
        Scale::Quick => vec![2, 4],
    };
    let mut t = Table::new(
        "Scale-up: 2 × LU.C gang-scheduled across cluster sizes",
        &[
            "nodes",
            "orig (min)",
            "so/ao/ai/bg (min)",
            "batch (min)",
            "orig ovh %",
            "adaptive ovh %",
            "reduction %",
            "pages in/node (orig)",
        ],
    );
    let mut notes = Vec::new();
    for nodes in node_counts {
        let sc = scenario(nodes, scale);
        let r = run_policy_set(&sc, &[PolicyConfig::full()])?;
        let t_full = r.policies[0].1.makespan;
        let per_node_in = r.orig_result.total_pages_in() / nodes.max(1) as u64;
        t.row(vec![
            nodes.to_string(),
            mins(r.orig),
            mins(t_full),
            mins(r.batch),
            pct(overhead_pct(r.orig, r.batch)),
            pct(overhead_pct(t_full, r.batch)),
            pct(reduction_pct(r.orig, t_full, r.batch)),
            per_node_in.to_string(),
        ]);
        notes.push(format!(
            "{nodes} nodes: per-node page-in volume {per_node_in} pages under orig \
             (shrinks with rank size); reduction {:.0}%",
            reduction_pct(r.orig, t_full, r.batch)
        ));
    }
    notes.push(
        "paper §6/footnote 2: the authors were running exactly this 8/16-node extension \
         when the report was written; no numbers are published, so this table is a \
         prediction from the calibrated model rather than a comparison"
            .into(),
    );
    if scale == Scale::Paper {
        notes.push(
            "at 16 nodes a class C rank computes for ~3 minutes — less than one 5-minute \
             quantum — so each job finishes inside its first turn and no switching (hence \
             no paging) occurs. Reproducing the paper's pressure at 16 nodes needs a larger \
             input class, which is presumably why the authors mention 'applications of \
             various working set sizes' alongside the bigger cluster"
                .into(),
        );
    }
    Ok(ExperimentOutput {
        id: "scale16".into(),
        title: "Extension: 8- and 16-node scale-up (paper §6 future work)".into(),
        tables: vec![t],
        traces: Vec::new(),
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scaleup_adaptive_holds() {
        let out = run(Scale::Quick).unwrap();
        let t = &out.tables[0];
        for r in 0..t.len() {
            let red: f64 = t.cell(r, 6).parse().unwrap();
            assert!(
                red > -10.0,
                "adaptive must not collapse at {} nodes: {red}",
                t.cell(r, 0)
            );
        }
    }
}
