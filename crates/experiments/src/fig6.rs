//! **Fig. 6** — paging-activity traces of two gang-scheduled LU class C
//! jobs on four machines with memory reduced to 350 MB, for the policy
//! ladder {orig, so, so/ao, so/ao/ai/bg}, first 50 minutes (§4).
//!
//! The paper reads four qualitative facts off these traces, all of which
//! are computed as numbers here (and asserted in the integration tests):
//!
//! 1. **orig**: "page-in activities are spread over a long period of
//!    time" and "the overlapping of page-ins and page-outs indicates that
//!    they interfere" — many active buckets, many overlap buckets.
//! 2. **so**: "decreases both amount and duration of paging".
//! 3. **so/ao**: "paging overhead is further reduced due to the increased
//!    intensity of page-outs".
//! 4. **so/ao/ai/bg**: "both page-in and page-out activities are
//!    intensified and compacted … sharp and high peaks"; page-out peaks
//!    during the switch are shorter because of background writing.
//!
//! This experiment also quantifies the Fig. 1 schematic (compaction of
//! paging at the quantum boundary) via the compaction index.

use crate::common::{mins, quick_parallel, ExperimentOutput, Scale, Scenario};
use agp_cluster::ScheduleMode;
use agp_core::PolicyConfig;
use agp_metrics::Table;
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

fn scenario(scale: Scale) -> Scenario {
    match scale {
        // 4 nodes, LU class C (188 MB/rank), 5-min quantum. The paper
        // reduces "available memory" to 350 MB; we wire 724 MiB (300 MiB
        // usable for jobs) because the real nodes' kernel, daemons and
        // buffer cache consumed a further slice of that 350 MB — without
        // it, two 188 MB ranks nearly fit and no paging storm appears.
        Scale::Paper => Scenario::pair(
            4,
            724,
            WorkloadSpec::parallel(Benchmark::LU, Class::C, 4),
            SimDur::from_mins(5),
        ),
        Scale::Quick => quick_parallel(Benchmark::LU, 2),
    }
}

/// The four policies of the paper's four trace panels, top to bottom.
pub fn trace_policies() -> Vec<PolicyConfig> {
    vec![
        PolicyConfig::original(),
        PolicyConfig::so(),
        PolicyConfig::so_ao(),
        PolicyConfig::full(),
    ]
}

/// Run Fig. 6 at the given scale.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let sc = scenario(scale);
    let horizon = match scale {
        Scale::Paper => SimDur::from_mins(50),
        Scale::Quick => SimDur::from_secs(120),
    };
    let configs: Vec<_> = trace_policies()
        .into_iter()
        .map(|p| sc.config(p, ScheduleMode::Gang))
        .collect();
    let results = crate::common::run_many(configs)?;

    let mut table = Table::new(
        "Fig 6 — paging activity shape, node 0, first 50 minutes",
        &[
            "policy",
            "completion(min)",
            "pages in",
            "pages out",
            "active buckets",
            "overlap buckets",
            "peak in/bucket",
            "compaction idx",
        ],
    );
    let mut traces = Vec::new();
    let mut notes = Vec::new();
    let mut stats = Vec::new();
    for (policy, r) in trace_policies().into_iter().zip(results) {
        let tr = r.nodes[0].trace.truncated(horizon);
        table.row(vec![
            policy.label(),
            mins(r.makespan),
            tr.total_in().to_string(),
            tr.total_out().to_string(),
            tr.active_buckets().to_string(),
            tr.overlap_buckets().to_string(),
            tr.peak_in().to_string(),
            format!("{:.0}", tr.compaction()),
        ]);
        stats.push((
            policy.label(),
            tr.active_buckets(),
            tr.compaction(),
            tr.total_in(),
        ));
        traces.push((policy.label(), tr));
    }

    // The paper's reading of the panels, as checkable notes.
    let orig = &stats[0];
    let so = &stats[1];
    let full = &stats[3];
    notes.push(format!(
        "duration: orig paging spans {} buckets; so {}; so/ao/ai/bg {} — the paper's \
         'spread over a long period' vs 'sharp and high peaks'",
        orig.1, so.1, full.1
    ));
    notes.push(format!(
        "volume: so moves {} pages in vs orig {} — 'decreases both amount and duration'",
        so.3, orig.3
    ));
    notes.push(format!(
        "compaction index (pages per active bucket): orig {:.0} → so/ao/ai/bg {:.0} — Fig. 1's \
         compaction, quantified",
        orig.2, full.2
    ));

    Ok(ExperimentOutput {
        id: "fig6".into(),
        title: "Paging-activity traces, LU class C on 4 machines (paper Fig. 6)".into(),
        tables: vec![table],
        traces,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig6_compaction_shape() {
        let out = run(Scale::Quick).unwrap();
        assert_eq!(out.traces.len(), 4);
        let t = &out.tables[0];
        let active: Vec<usize> = (0..4).map(|r| t.cell(r, 4).parse().unwrap()).collect();
        let compaction: Vec<f64> = (0..4).map(|r| t.cell(r, 7).parse().unwrap()).collect();
        // Full policy must compact paging into fewer, denser buckets than
        // the original.
        assert!(
            active[3] <= active[0],
            "so/ao/ai/bg active buckets {} vs orig {}",
            active[3],
            active[0]
        );
        assert!(
            compaction[3] >= compaction[0],
            "compaction index must not regress: {} vs {}",
            compaction[3],
            compaction[0]
        );
        // Selective alone must reduce paging volume (false evictions gone).
        let vol: Vec<u64> = (0..4).map(|r| t.cell(r, 2).parse().unwrap()).collect();
        assert!(vol[1] <= vol[0], "so volume {} vs orig {}", vol[1], vol[0]);
    }
}
