//! Shared experiment plumbing: scales, scenario execution, output types.

use agp_cluster::{ClusterConfig, JobSpec, RunResult, ScheduleMode};
use agp_core::PolicyConfig;
use agp_metrics::{ActivityTrace, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};
use serde::Serialize;

/// Experiment fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's testbed geometry: 1 GiB nodes, class B/C inputs,
    /// 5-minute quanta. A full figure takes seconds to a couple of
    /// minutes of wall time.
    Paper,
    /// CI scale: class A inputs, ~tens-of-MiB memory, seconds-long
    /// quanta. Preserves the pressure geometry (one working set fits,
    /// two do not) so every directional claim still holds.
    Quick,
}

impl std::str::FromStr for Scale {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "paper" | "full" => Ok(Scale::Paper),
            "quick" | "ci" | "small" => Ok(Scale::Quick),
            other => Err(format!("unknown scale '{other}' (paper|quick)")),
        }
    }
}

/// What an experiment produces: tables for the report, optionally labeled
/// traces (Fig. 6), and free-form notes comparing against the paper.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. "fig7").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Result tables, in presentation order.
    pub tables: Vec<Table>,
    /// Labeled paging traces (policy label → trace), when the experiment
    /// produces them.
    pub traces: Vec<(String, ActivityTrace)>,
    /// Commentary: what the paper reports vs what this run measured.
    pub notes: Vec<String>,
}

/// Deterministic work-stealing fan-out: run `tasks` independent tasks on
/// at most `jobs` worker threads and return the results **in task-index
/// order**, regardless of which worker ran what when.
///
/// This is the fan-out primitive behind `agp run --jobs N` and
/// [`run_many`]. Determinism falls out of the shape: tasks must be
/// independent (each is a pure function of its index), and results are
/// placed by index, so thread scheduling can change wall time but never
/// the output. `jobs <= 1` (or a single task) runs inline on the caller's
/// thread with no pool at all — byte-identical to the serial path by
/// construction, which the shard-invariance tests then extend to
/// `jobs > 1`.
pub fn run_pool<T, F>(tasks: usize, jobs: usize, f: F) -> Result<Vec<T>, String>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, tasks.max(1));
    if jobs <= 1 || tasks <= 1 {
        return Ok((0..tasks).map(f).collect());
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(tasks, || None);
    crossbeam::thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= tasks || tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    })
    .map_err(|_| "fan-out worker panicked".to_string())?;
    out.into_iter()
        .map(|r| r.ok_or_else(|| "fan-out worker panicked".to_string()))
        .collect()
}

/// Run several independent configurations concurrently (one OS thread
/// each; the simulator itself is single-threaded and deterministic).
/// Results come back in input order; the first error (by input order)
/// aborts.
pub fn run_many(configs: Vec<ClusterConfig>) -> Result<Vec<RunResult>, String> {
    let n = configs.len();
    run_pool(n, n, |i| {
        agp_cluster::run(configs[i].clone()).map_err(String::from)
    })?
    .into_iter()
    .collect()
}

/// Builder for the recurring scenario shape: `n` instances of one
/// workload on one cluster, under one policy and mode.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Cluster size.
    pub nodes: u32,
    /// Physical memory per node, MiB.
    pub mem_mib: u64,
    /// Wired (locked) memory per node, MiB.
    pub wired_mib: u64,
    /// Gang quantum.
    pub quantum: SimDur,
    /// Per-job quantum override.
    pub job_quantum: Option<SimDur>,
    /// The workload; two instances are submitted (the paper's standard
    /// co-schedule) unless `instances` says otherwise.
    pub workload: WorkloadSpec,
    /// Number of identical instances.
    pub instances: usize,
    /// Seed.
    pub seed: u64,
}

impl Scenario {
    /// Two instances of `workload` on `nodes` nodes with the given wiring.
    pub fn pair(nodes: u32, wired_mib: u64, workload: WorkloadSpec, quantum: SimDur) -> Self {
        Scenario {
            nodes,
            mem_mib: 1024,
            wired_mib,
            quantum,
            job_quantum: None,
            workload,
            instances: 2,
            seed: 0x5EED_600D,
        }
    }

    /// Materialize a [`ClusterConfig`] under `policy` and `mode`.
    pub fn config(&self, policy: PolicyConfig, mode: ScheduleMode) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_defaults(self.nodes);
        cfg.mem_mib = self.mem_mib;
        cfg.wired_mib = self.wired_mib;
        cfg.quantum = self.quantum;
        // Keep the trace resolution proportional to the quantum so quick
        // and paper scales both resolve intra-quantum structure.
        cfg.trace_bucket = SimDur::from_us((self.quantum.as_us() / 30).clamp(250_000, 10_000_000));
        cfg.policy = policy;
        cfg.mode = mode;
        cfg.seed = self.seed;
        cfg.jobs = (0..self.instances)
            .map(|i| {
                let mut j = JobSpec::new(format!("{} #{}", self.workload, i + 1), self.workload);
                j.quantum = self.job_quantum;
                j
            })
            .collect();
        cfg
    }
}

/// The three completion times every §4.1-style comparison needs.
#[derive(Clone, Debug)]
pub struct PolicyTriple {
    /// Batch (back-to-back) makespan.
    pub batch: SimDur,
    /// Gang makespan under the original kernel.
    pub orig: SimDur,
    /// Gang makespans for each requested adaptive policy, in order.
    pub policies: Vec<(PolicyConfig, RunResult)>,
    /// The original run's full result.
    pub orig_result: RunResult,
}

/// Run batch + original + each policy for one scenario, concurrently.
pub fn run_policy_set(
    scenario: &Scenario,
    policies: &[PolicyConfig],
) -> Result<PolicyTriple, String> {
    let mut configs = vec![
        scenario.config(PolicyConfig::original(), ScheduleMode::Batch),
        scenario.config(PolicyConfig::original(), ScheduleMode::Gang),
    ];
    for &p in policies {
        configs.push(scenario.config(p, ScheduleMode::Gang));
    }
    let mut results = run_many(configs)?;
    let rest = results.split_off(2);
    let orig_result = results.pop().expect("orig");
    let batch = results.pop().expect("batch");
    Ok(PolicyTriple {
        batch: batch.makespan,
        orig: orig_result.makespan,
        policies: policies.iter().copied().zip(rest).collect(),
        orig_result,
    })
}

/// Usable memory for a quick-scale scenario: 1.5× one instance's
/// per-iteration working set, so a single job fits comfortably while two
/// co-scheduled instances over-commit by ~25% — the same pressure
/// geometry the paper creates with `mlock()`.
fn quick_usable_mib(w: &WorkloadSpec) -> u64 {
    let prof = w.profile();
    let fp = agp_sim::units::mib_from_pages(w.footprint_pages_per_rank() as usize);
    let ws = fp * (prof.sweep_fraction + prof.random_region_fraction);
    ((ws * 1.5).ceil() as u64).max(16)
}

/// The quick-scale analog of a class B serial benchmark: class A input,
/// a 128 MiB node wired down to ~1.5× the working set, 10 s quanta.
pub fn quick_serial(bench: Benchmark) -> Scenario {
    let w = WorkloadSpec::serial(bench, Class::A);
    let usable = quick_usable_mib(&w);
    let mut s = Scenario::pair(1, 128 - usable, w, SimDur::from_secs(10));
    s.mem_mib = 128;
    s
}

/// The quick-scale analog of a parallel run: class A split over `nodes`,
/// per-node memory again at ~1.5× one rank's working set.
pub fn quick_parallel(bench: Benchmark, nodes: u32) -> Scenario {
    let w = WorkloadSpec::parallel(bench, Class::A, nodes);
    let usable = quick_usable_mib(&w);
    let mut s = Scenario::pair(nodes, 128 - usable, w, SimDur::from_secs(10));
    s.mem_mib = 128;
    s
}

/// The demo geometry `agp chaos` runs: two 2-rank CG.A instances on a
/// 2-node cluster under the full policy at quick scale. The node and job
/// indices line up with the built-in smoke fault plan
/// (`agp_faults::FaultPlan::smoke`), which targets nodes 0/1 and job 0.
/// Deliberately *not* part of [`crate::all_experiments`]: chaos runs are
/// exercised by `agp chaos` and the CI smoke, never by the parity report.
pub fn chaos_demo(seed: u64) -> ClusterConfig {
    let mut s = quick_parallel(Benchmark::CG, 2);
    s.seed = seed;
    let mut cfg = s.config(PolicyConfig::full(), ScheduleMode::Gang);
    cfg.check_invariants = false;
    cfg
}

/// Format helper: minutes with one decimal.
pub fn mins(d: SimDur) -> String {
    format!("{:.1}", d.as_mins_f64())
}

/// Format helper: percent with one decimal.
pub fn pct(p: f64) -> String {
    format!("{p:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_valid_configs() {
        let s = Scenario::pair(
            1,
            574,
            WorkloadSpec::serial(Benchmark::LU, Class::B),
            SimDur::from_mins(5),
        );
        let cfg = s.config(PolicyConfig::full(), ScheduleMode::Gang);
        cfg.validate().unwrap();
        assert_eq!(cfg.jobs.len(), 2);
        assert_eq!(cfg.jobs[0].name, "LU.Bx1 #1");
    }

    #[test]
    fn quick_scenarios_are_valid_and_small() {
        for b in Benchmark::PAPER_FIVE {
            let cfg = quick_serial(b).config(PolicyConfig::original(), ScheduleMode::Gang);
            cfg.validate().unwrap();
            // 1.5x any class A working set stays well under 100 MiB.
            assert!(cfg.usable_pages() < 25_000, "{b}: {}", cfg.usable_pages());
        }
        let cfg =
            quick_parallel(Benchmark::LU, 2).config(PolicyConfig::original(), ScheduleMode::Gang);
        cfg.validate().unwrap();
    }

    #[test]
    fn run_many_preserves_order_and_parallelizes() {
        let a = quick_serial(Benchmark::IS).config(PolicyConfig::original(), ScheduleMode::Batch);
        let b = quick_serial(Benchmark::LU).config(PolicyConfig::original(), ScheduleMode::Batch);
        let rs = run_many(vec![a, b]).unwrap();
        assert_eq!(rs.len(), 2);
        assert!(rs[0].jobs[0].name.starts_with("IS"));
        assert!(rs[1].jobs[0].name.starts_with("LU"));
    }

    #[test]
    fn run_pool_results_are_index_ordered_at_any_width() {
        // 20 tasks with deliberately skewed costs: later tasks finish
        // first on a wide pool, but index placement pins the order.
        let serial = run_pool(20, 1, |i| i * i).unwrap();
        for jobs in [2, 3, 8, 64] {
            let pooled = run_pool(20, jobs, |i| i * i).unwrap();
            assert_eq!(pooled, serial, "jobs={jobs}");
        }
        assert_eq!(run_pool(0, 4, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(run_pool(1, 8, |i| i + 7).unwrap(), vec![7]);
    }

    #[test]
    fn run_pool_fallible_tasks_surface_first_error_by_index() {
        let r: Result<Vec<u32>, String> = run_pool(8, 4, |i| {
            if i % 3 == 2 {
                Err(format!("task {i} failed"))
            } else {
                Ok(i as u32)
            }
        })
        .unwrap()
        .into_iter()
        .collect();
        assert_eq!(
            r.unwrap_err(),
            "task 2 failed",
            "input order, not wall order"
        );
    }

    #[test]
    fn run_pool_simulation_shards_match_serial_byte_for_byte() {
        // The tentpole invariant at crate level: the same configs through
        // 1-, 2- and 8-wide pools produce identical RunResults. (The CLI
        // extends this to full `agp report` output; see check.sh.)
        let configs: Vec<ClusterConfig> = [Benchmark::IS, Benchmark::EP, Benchmark::LU]
            .iter()
            .map(|&b| quick_serial(b).config(PolicyConfig::full(), ScheduleMode::Gang))
            .collect();
        let run = |jobs: usize| {
            let rs: Result<Vec<RunResult>, String> = run_pool(configs.len(), jobs, |i| {
                agp_cluster::run(configs[i].clone()).map_err(String::from)
            })
            .unwrap()
            .into_iter()
            .collect();
            rs.unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        assert_eq!(run(2), serial, "2 shards diverged from serial");
        assert_eq!(run(8), serial, "8 shards diverged from serial");
    }

    #[test]
    fn scale_parses() {
        assert_eq!("paper".parse::<Scale>().unwrap(), Scale::Paper);
        assert_eq!("CI".parse::<Scale>().unwrap(), Scale::Quick);
        assert!("medium".parse::<Scale>().is_err());
    }
}
