//! **Background-writing window ablation** (§3.4): the paper tuned the
//! window empirically — "with some experimentation we have found that
//! background writing for last 10 % of the time quantum minimizes the
//! repeated writing of pages and improves the performance of
//! co-scheduling further by about 10 %".
//!
//! This sweep runs LU serial under `so/ao/bg` with the window fraction at
//! {0, 2, 5, 10, 20, 35, 50} % of the quantum and reports completion time
//! plus the *repeated-writing* cost: total page-out volume relative to
//! the `so/ao` baseline (pages written more than once are pure overhead).

use crate::common::{mins, quick_serial, run_many, ExperimentOutput, Scale, Scenario};
use agp_cluster::ScheduleMode;
use agp_core::PolicyConfig;
use agp_metrics::Table;
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// Window fractions swept (percent of the quantum).
pub const FRACTIONS: [f64; 7] = [0.0, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50];

fn scenario(scale: Scale) -> Scenario {
    match scale {
        Scale::Paper => Scenario::pair(
            1,
            574,
            WorkloadSpec::serial(Benchmark::LU, Class::B),
            SimDur::from_mins(5),
        ),
        Scale::Quick => quick_serial(Benchmark::LU),
    }
}

/// Run the ablation.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let sc = scenario(scale);
    let configs: Vec<_> = FRACTIONS
        .iter()
        .map(|&f| {
            let mut p = PolicyConfig::so_ao_bg();
            p.bg_fraction = f;
            if f == 0.0 {
                p.bg_write = false; // fraction 0 = plain so/ao
            }
            sc.config(p, ScheduleMode::Gang)
        })
        .collect();
    let results = run_many(configs)?;

    let base_out = results[0].total_pages_out(); // so/ao page-out volume
    let mut t = Table::new(
        "Background-writing window sweep (LU serial, so/ao/bg)",
        &[
            "window %",
            "completion (min)",
            "bg-cleaned pages",
            "pages out",
            "rewrite overhead %",
        ],
    );
    let mut best = (0.0f64, SimDur::from_mins(1 << 20));
    for (&f, r) in FRACTIONS.iter().zip(&results) {
        let cleaned: u64 = r.nodes.iter().map(|n| n.bg_cleaned_pages).sum();
        let rewrite = if base_out > 0 {
            100.0 * (r.total_pages_out() as f64 - base_out as f64) / base_out as f64
        } else {
            0.0
        };
        if r.makespan < best.1 {
            best = (f, r.makespan);
        }
        t.row(vec![
            format!("{:.0}", f * 100.0),
            mins(r.makespan),
            cleaned.to_string(),
            r.total_pages_out().to_string(),
            format!("{rewrite:.0}"),
        ]);
    }

    Ok(ExperimentOutput {
        id: "bgablate".into(),
        title: "§3.4 ablation: background-writing window fraction".into(),
        tables: vec![t],
        traces: Vec::new(),
        notes: vec![
            format!(
                "best window: {:.0}% of the quantum at {} min (paper settled on 10%)",
                best.0 * 100.0,
                mins(best.1)
            ),
            "larger windows rewrite the same pages repeatedly (rising page-out volume) for \
             no additional switch-time benefit — the trade-off §3.4 describes"
                .into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablation_monotone_rewrite_cost() {
        let out = run(Scale::Quick).unwrap();
        let t = &out.tables[0];
        assert_eq!(t.len(), FRACTIONS.len());
        // Page-out volume must not decrease as the window grows.
        let outs: Vec<u64> = (0..t.len())
            .map(|r| t.cell(r, 3).parse().unwrap())
            .collect();
        assert!(
            outs.last().unwrap() >= outs.first().unwrap(),
            "wider windows cannot write less: {outs:?}"
        );
        // Background cleaning must actually happen for non-zero windows.
        let cleaned: u64 = t.cell(t.len() - 1, 2).parse().unwrap();
        assert!(cleaned > 0);
    }
}
