//! **Motivation experiment** (§1): Moreira et al. report that running
//! three instances of a job with a 45 MB footprint under gang scheduling
//! took **3.5× longer** (average execution time) on a 128 MB system than
//! on a 256 MB system — the paging overhead that motivates the whole
//! paper.
//!
//! Reproduced with three LU class A instances (45 MiB, matching the
//! quoted footprint) on one node, original paging, comparing 128 MiB and
//! 256 MiB of physical memory.

use crate::common::{mins, ExperimentOutput, Scale, Scenario};
use agp_cluster::ScheduleMode;
use agp_core::PolicyConfig;
use agp_metrics::Table;
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// The ratio the paper quotes from Moreira et al.
pub const PAPER_RATIO: f64 = 3.5;

fn scenario(mem_mib: u64, scale: Scale) -> Scenario {
    let mut sc = Scenario::pair(
        1,
        // ~41 MiB is wired: the AIX kernel, daemons, and file cache of
        // the original nodes. Three 45 MB jobs then over-commit the
        // 128 MB system heavily while the 256 MB system holds all three.
        41,
        WorkloadSpec::serial(Benchmark::LU, Class::A),
        match scale {
            Scale::Paper => SimDur::from_secs(20),
            Scale::Quick => SimDur::from_secs(10),
        },
    );
    sc.mem_mib = mem_mib;
    sc.instances = 3;
    sc
}

/// Run the motivation experiment.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let small = agp_cluster::run(
        scenario(128, scale).config(PolicyConfig::original(), ScheduleMode::Gang),
    )?;
    let big = agp_cluster::run(
        scenario(256, scale).config(PolicyConfig::original(), ScheduleMode::Gang),
    )?;
    let ratio = small.mean_completion().ratio(big.mean_completion());

    let mut t = Table::new(
        "Moreira et al. motivation — 3 × 45 MB jobs, original paging",
        &["memory", "mean completion (min)", "pages in", "pages out"],
    );
    t.row(vec![
        "128 MB".into(),
        mins(small.mean_completion()),
        small.total_pages_in().to_string(),
        small.total_pages_out().to_string(),
    ]);
    t.row(vec![
        "256 MB".into(),
        mins(big.mean_completion()),
        big.total_pages_in().to_string(),
        big.total_pages_out().to_string(),
    ]);

    let mut ratio_t = Table::new(
        "Slowdown from over-committed memory",
        &["measured ratio", "paper ratio"],
    );
    ratio_t.row(vec![format!("{ratio:.2}"), format!("{PAPER_RATIO:.1}")]);

    Ok(ExperimentOutput {
        id: "moreira".into(),
        title: "§1 motivation: 3 jobs on 128 vs 256 MB (Moreira et al.)".into(),
        tables: vec![t, ratio_t],
        traces: Vec::new(),
        notes: vec![format!(
            "measured mean-completion ratio {ratio:.2}× (paper: {PAPER_RATIO}×); the 256 MB \
             system pages only for cold start, the 128 MB system pages at every switch"
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_moreira_shows_memory_cliff() {
        let out = run(Scale::Quick).unwrap();
        let ratio: f64 = out.tables[1].cell(0, 0).parse().unwrap();
        assert!(
            ratio > 1.3,
            "over-committed memory must slow the jobs substantially, got {ratio}"
        );
    }
}
