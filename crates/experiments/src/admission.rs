//! **Admission control comparison** — Batat & Feitelson's alternative
//! (§5 related work [15]): "exercising the admission control that allows
//! only those jobs that fit into the available memory gives overall
//! improvement in performance while suffering from delayed job
//! execution."
//!
//! The workload is the one gang scheduling exists for (§1: "improved
//! system response under mixed workloads"): a *long* LU and a *short* IS
//! submitted together, with memory that holds either working set but not
//! both. Three disciplines:
//!
//! 1. **admission control** — refuse to co-schedule what doesn't fit: the
//!    short job waits behind the whole long one ("delayed job
//!    execution");
//! 2. **gang + original paging** — responsive, but the §2 switch storms
//!    tax both jobs;
//! 3. **gang + adaptive paging** — the paper's answer: the short job's
//!    slowdown drops toward the ideal 2× of fair timesharing.

use agp_cluster::{ClusterConfig, JobSpec, RunResult, ScheduleMode};
use agp_core::PolicyConfig;
use agp_metrics::Table;
use agp_sim::{SimDur, SimTime};
use agp_workload::{Benchmark, Class, WorkloadSpec};

use crate::common::{mins, ExperimentOutput, Scale};

fn config(scale: Scale, policy: PolicyConfig, mode: ScheduleMode) -> ClusterConfig {
    let (class, mem, wired, quantum) = match scale {
        Scale::Paper => (Class::B, 1024, 624, SimDur::from_mins(5)),
        Scale::Quick => (Class::A, 128, 78, SimDur::from_secs(25)),
    };
    let mut cfg = ClusterConfig::paper_defaults(1);
    cfg.mem_mib = mem;
    cfg.wired_mib = wired;
    cfg.quantum = quantum;
    cfg.policy = policy;
    cfg.mode = mode;
    cfg.jobs = vec![
        JobSpec::new("LU (long)", WorkloadSpec::serial(Benchmark::LU, class)),
        JobSpec::new("IS (short)", WorkloadSpec::serial(Benchmark::IS, class)),
    ];
    cfg
}

fn short_completion(r: &RunResult) -> SimTime {
    r.completion_of("IS (short)").expect("short job present")
}

/// Run the comparison.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    // Admission control over-commits nothing: with either-but-not-both
    // memory, it serializes — identical to the batch discipline.
    let admission = agp_cluster::run(config(scale, PolicyConfig::original(), ScheduleMode::Batch))?;
    let gang_orig = agp_cluster::run(config(scale, PolicyConfig::original(), ScheduleMode::Gang))?;
    let gang_full = agp_cluster::run(config(scale, PolicyConfig::full(), ScheduleMode::Gang))?;

    let solos = admission.solo_durations().expect("batch mode");
    let short_solo = solos[1];

    let mut t = Table::new(
        "Admission control vs gang scheduling — long LU + short IS, one node",
        &[
            "discipline",
            "makespan (min)",
            "short-job completion (min)",
            "short-job slowdown",
            "mean slowdown",
            "pages in",
        ],
    );
    for (name, r) in [
        ("admission (serialize)", &admission),
        ("gang + orig", &gang_orig),
        ("gang + so/ao/ai/bg", &gang_full),
    ] {
        let short = short_completion(r);
        let short_slow = short.as_us() as f64 / short_solo.as_us().max(1) as f64;
        let mean = r
            .mean_slowdown_vs(&admission)
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "—".into());
        t.row(vec![
            name.into(),
            mins(r.makespan),
            format!("{:.1}", short.as_mins_f64()),
            format!("{short_slow:.2}"),
            mean,
            r.total_pages_in().to_string(),
        ]);
    }

    let s_adm = short_completion(&admission);
    let s_full = short_completion(&gang_full);
    Ok(ExperimentOutput {
        id: "admission".into(),
        title: "Extension: admission control vs adaptive gang scheduling (§5 [15])".into(),
        tables: vec![t],
        traces: Vec::new(),
        notes: vec![
            format!(
                "delayed job execution: under admission control the short job finishes at {} \
                 (after the entire long job); under adaptive gang scheduling it finishes at {}",
                mins(s_adm.since(SimTime::ZERO)),
                mins(s_full.since(SimTime::ZERO)),
            ),
            "the ideal two-way timeshare gives the short job slowdown ≈ 2; original paging \
             pushes it well past that, adaptive paging pulls it back — responsiveness without \
             a-priori memory information, which both admission control and reservations require"
                .into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_admission_tradeoff_shape() {
        let out = run(Scale::Quick).unwrap();
        let t = &out.tables[0];
        // Admission pages nothing (jobs run alone in sufficient memory).
        let pages_admission: u64 = t.cell(0, 5).parse().unwrap();
        assert_eq!(pages_admission, 0, "fits-in-memory jobs never page solo");
        // The short job is more responsive under adaptive gang scheduling
        // than when serialized behind the long job.
        let short_adm: f64 = t.cell(0, 3).parse().unwrap();
        let short_orig: f64 = t.cell(1, 3).parse().unwrap();
        let short_full: f64 = t.cell(2, 3).parse().unwrap();
        assert!(
            short_full < short_adm,
            "adaptive gang ({short_full}) must beat admission's delayed execution ({short_adm})"
        );
        assert!(
            short_full <= short_orig + 1e-9,
            "adaptive ({short_full}) must not be less responsive than orig ({short_orig})"
        );
        // Gang + adaptive must also beat gang + orig on makespan.
        let mk_orig: f64 = t.cell(1, 1).parse().unwrap();
        let mk_full: f64 = t.cell(2, 1).parse().unwrap();
        assert!(mk_full <= mk_orig + 1e-9);
    }
}
