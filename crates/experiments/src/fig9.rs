//! **Fig. 9** — the LU case study (§4.3): completion time, paging
//! overhead, and overhead reduction for every policy combination — `ai`,
//! `so`, `so/ao`, `so/ao/bg`, `so/ao/ai/bg` — in serial, 2-machine, and
//! 4-machine configurations.
//!
//! Paper-reported facts this module's notes and the integration tests
//! check:
//! * "adaptive page-in and selective page-out policies show the biggest
//!   reduction in completion time" among single mechanisms;
//! * "introduction of aggressive page-out reduces the benefit by a small
//!   amount in case of serial run … alleviated by background writing";
//! * "for both parallel runs, aggressive page-out actually helps";
//! * overall reduction with everything on: 83 % serial, 61 % (2 machines),
//!   71 % (4 machines);
//! * original overhead for parallel runs: 55–75 %.

use crate::common::{
    mins, pct, quick_parallel, quick_serial, run_policy_set, ExperimentOutput, Scale, Scenario,
};
use agp_cluster::{ClusterConfig, ScheduleMode};
use agp_core::PolicyConfig;
use agp_metrics::{overhead_pct, reduction_pct, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// The three LU configurations of Fig. 9.
fn scenarios(scale: Scale) -> Vec<(String, Scenario)> {
    match scale {
        Scale::Paper => vec![
            (
                "serial".into(),
                Scenario::pair(
                    1,
                    574,
                    WorkloadSpec::serial(Benchmark::LU, Class::B),
                    SimDur::from_mins(5),
                ),
            ),
            (
                "2 machines".into(),
                Scenario::pair(
                    2,
                    774,
                    WorkloadSpec::parallel(Benchmark::LU, Class::B, 2),
                    SimDur::from_mins(5),
                ),
            ),
            (
                "4 machines".into(),
                Scenario::pair(
                    4,
                    724,
                    WorkloadSpec::parallel(Benchmark::LU, Class::C, 4),
                    SimDur::from_mins(5),
                ),
            ),
        ],
        Scale::Quick => vec![
            ("serial".into(), quick_serial(Benchmark::LU)),
            ("2 machines".into(), quick_parallel(Benchmark::LU, 2)),
        ],
    }
}

/// Paper-reported total reduction with `so/ao/ai/bg` per configuration.
pub const PAPER_TOTAL_REDUCTION: [(&str, f64); 3] =
    [("serial", 83.0), ("2 machines", 61.0), ("4 machines", 71.0)];

/// A seeded same-config policy pair for differential explanation:
/// identical serial-LU Fig. 9 scenario, same seed, differing in exactly
/// one policy bit — selective page-out on (`so`, test) vs everything
/// off (`orig`, base). `agp explain fig9 --policy so --against orig`
/// and the explain golden tests both run this pair.
pub fn explain_pair(scale: Scale) -> (ClusterConfig, ClusterConfig) {
    let sc = match scale {
        Scale::Paper => Scenario::pair(
            1,
            574,
            WorkloadSpec::serial(Benchmark::LU, Class::B),
            SimDur::from_mins(5),
        ),
        Scale::Quick => quick_serial(Benchmark::LU),
    };
    let test = sc.config(PolicyConfig::so(), ScheduleMode::Gang);
    let base = sc.config(PolicyConfig::original(), ScheduleMode::Gang);
    (test, base)
}

/// Run Fig. 9 at the given scale.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let combos: Vec<PolicyConfig> = PolicyConfig::paper_combinations()
        .into_iter()
        .filter(|p| p.is_adaptive())
        .collect(); // ai, so, so/ao, so/ao/bg, so/ao/ai/bg

    let mut a = Table::new(
        "Fig 9(a) — LU completion time by policy (minutes)",
        &[
            "config",
            "orig",
            "ai",
            "so",
            "so/ao",
            "so/ao/bg",
            "so/ao/ai/bg",
            "batch",
        ],
    );
    let mut b = Table::new(
        "Fig 9(b) — LU paging overhead by policy (%)",
        &[
            "config",
            "orig",
            "ai",
            "so",
            "so/ao",
            "so/ao/bg",
            "so/ao/ai/bg",
        ],
    );
    let mut c = Table::new(
        "Fig 9(c) — LU overhead reduction vs original (%)",
        &[
            "config",
            "ai",
            "so",
            "so/ao",
            "so/ao/bg",
            "so/ao/ai/bg",
            "paper (full)",
        ],
    );
    let mut notes = Vec::new();

    for (label, sc) in scenarios(scale) {
        let t = run_policy_set(&sc, &combos)?;
        let times: Vec<_> = t.policies.iter().map(|(_, r)| r.makespan).collect();

        let mut row_a = vec![label.clone(), mins(t.orig)];
        row_a.extend(times.iter().map(|&d| mins(d)));
        row_a.push(mins(t.batch));
        a.row(row_a);

        let mut row_b = vec![label.clone(), pct(overhead_pct(t.orig, t.batch))];
        row_b.extend(times.iter().map(|&d| pct(overhead_pct(d, t.batch))));
        b.row(row_b);

        let mut row_c = vec![label.clone()];
        row_c.extend(
            times
                .iter()
                .map(|&d| pct(reduction_pct(t.orig, d, t.batch))),
        );
        let paper = PAPER_TOTAL_REDUCTION
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, v)| pct(*v))
            .unwrap_or_else(|| "n/a".into());
        row_c.push(paper);
        c.row(row_c);

        // The §4.3 observations, as measured numbers.
        let red = |i: usize| reduction_pct(t.orig, times[i], t.batch);
        notes.push(format!(
            "{label}: ai {:.0}%, so {:.0}%, so/ao {:.0}%, so/ao/bg {:.0}%, full {:.0}%",
            red(0),
            red(1),
            red(2),
            red(3),
            red(4)
        ));
    }
    notes.push(
        "paper: 'Adaptive page-in and selective page-out again prove to be the most \
         effective strategies with more than 65% reduction'"
            .into(),
    );
    notes.push(
        "paper: aggressive page-out slightly hurts the serial run (too many page-outs) and \
         background writing alleviates it; in parallel runs it helps"
            .into(),
    );

    Ok(ExperimentOutput {
        id: "fig9".into(),
        title: "LU case study across policy combinations (paper Fig. 9)".into(),
        tables: vec![a, b, c],
        traces: Vec::new(),
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig9_policy_ladder() {
        let out = run(Scale::Quick).unwrap();
        let b = &out.tables[1];
        for r in 0..b.len() {
            let orig: f64 = b.cell(r, 1).parse().unwrap();
            let so: f64 = b.cell(r, 3).parse().unwrap();
            let full: f64 = b.cell(r, 6).parse().unwrap();
            assert!(so <= orig + 1e-9, "so must not lose to orig");
            assert!(full <= orig + 1e-9, "full combo must not lose to orig");
        }
    }
}
