//! **Multiprogramming-level sweep** — §1's motivation made quantitative:
//! "more than one jobs have to be admitted by over-committing the
//! available memory". How does switch overhead grow as 2, 3, then 4 jobs
//! share one node's memory, and how much of that growth does adaptive
//! paging remove?
//!
//! With MPL = k, a job's residual set shrinks roughly as `usable/k`, so
//! every switch moves more of the working set, and under the original
//! kernel the false-eviction churn compounds. Mean slowdown (per-job
//! completion vs running alone) is reported alongside makespan because
//! responsiveness — not throughput — is gang scheduling's selling point.

use crate::common::{mins, pct, quick_serial, ExperimentOutput, Scale, Scenario};
use agp_cluster::ScheduleMode;
use agp_core::PolicyConfig;
use agp_metrics::{overhead_pct, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

fn scenario(instances: usize, scale: Scale) -> Scenario {
    let mut sc = match scale {
        Scale::Paper => Scenario::pair(
            1,
            574,
            WorkloadSpec::serial(Benchmark::LU, Class::B),
            SimDur::from_mins(5),
        ),
        Scale::Quick => quick_serial(Benchmark::LU),
    };
    sc.instances = instances;
    sc
}

/// Run the MPL sweep.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let levels: Vec<usize> = match scale {
        Scale::Paper => vec![2, 3, 4],
        Scale::Quick => vec![2, 3],
    };
    let mut t = Table::new(
        "Multiprogramming level: k × LU sharing one node",
        &[
            "jobs",
            "policy",
            "makespan (min)",
            "overhead %",
            "mean slowdown",
            "max slowdown",
        ],
    );
    let mut notes = Vec::new();
    for k in levels {
        let sc = scenario(k, scale);
        let batch = agp_cluster::run(sc.config(PolicyConfig::original(), ScheduleMode::Batch))?;
        let mut reductions = Vec::new();
        let mut t_orig = None;
        for policy in [PolicyConfig::original(), PolicyConfig::full()] {
            let r = agp_cluster::run(sc.config(policy, ScheduleMode::Gang))?;
            let slow = r.slowdowns_vs(&batch).unwrap_or_default();
            let mean = if slow.is_empty() {
                0.0
            } else {
                slow.iter().sum::<f64>() / slow.len() as f64
            };
            let max = slow.iter().copied().fold(0.0f64, f64::max);
            if t_orig.is_none() {
                t_orig = Some(r.makespan);
            }
            reductions.push(r.makespan);
            t.row(vec![
                k.to_string(),
                policy.label(),
                mins(r.makespan),
                pct(overhead_pct(r.makespan, batch.makespan)),
                format!("{mean:.2}"),
                format!("{max:.2}"),
            ]);
        }
        let orig = reductions[0];
        let full = reductions[1];
        notes.push(format!(
            "MPL {k}: adaptive paging recovers {:.0}% of the switching overhead",
            agp_metrics::reduction_pct(orig, full, batch.makespan)
        ));
    }
    notes.push(
        "note: slowdown compares a job's gang-scheduled completion against running alone; \
         an ideal zero-overhead gang scheduler at MPL k gives every job slowdown ≈ k \
         (they each get 1/k of the machine) with far better *responsiveness* than batch's \
         last-in-line job — paging overhead is what pushes slowdown beyond k"
            .into(),
    );
    Ok(ExperimentOutput {
        id: "mpl".into(),
        title: "Extension: switch overhead vs multiprogramming level (§1 motivation)".into(),
        tables: vec![t],
        traces: Vec::new(),
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mpl_adaptive_beats_orig_at_every_level() {
        let out = run(Scale::Quick).unwrap();
        let t = &out.tables[0];
        // Rows alternate orig/full per level.
        let mut r = 0;
        while r + 1 < t.len() {
            let orig: f64 = t.cell(r, 2).parse().unwrap();
            let full: f64 = t.cell(r + 1, 2).parse().unwrap();
            assert!(
                full <= orig + 1e-9,
                "MPL {}: full {} vs orig {}",
                t.cell(r, 0),
                full,
                orig
            );
            r += 2;
        }
    }

    #[test]
    fn quick_mpl_overhead_grows_with_level() {
        let out = run(Scale::Quick).unwrap();
        let t = &out.tables[0];
        // orig rows: 0, 2, ... — overheads should not shrink as jobs pile up.
        let o2: f64 = t.cell(0, 3).parse().unwrap();
        let o3: f64 = t.cell(2, 3).parse().unwrap();
        assert!(
            o3 >= o2 * 0.5,
            "overhead at MPL3 ({o3}) should be in the same league or higher than MPL2 ({o2})"
        );
    }
}
