//! **Quantum-length sensitivity** (§5 discussion of Wang et al., §6
//! conclusion): longer quanta amortize switch overhead but hurt
//! responsiveness; the paper's closing claim is that adaptive paging
//! "will enable the gang scheduler to use a smaller time quantum and
//! hence to improve the responsiveness of parallel jobs".
//!
//! This sweep runs the Fig. 6 workload (LU class C on 4 machines) under
//! `orig` and `so/ao/ai/bg` across quantum lengths and reports switching
//! overhead for each: the original kernel needs long quanta to stay
//! efficient, the adaptive kernel stays efficient at short ones.

use crate::common::{pct, quick_parallel, run_many, ExperimentOutput, Scale, Scenario};
use agp_cluster::ScheduleMode;
use agp_core::PolicyConfig;
use agp_metrics::{overhead_pct, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// Quanta swept at paper scale (minutes).
pub const PAPER_QUANTA_MIN: [u64; 5] = [2, 3, 5, 7, 10];

/// Quanta swept at quick scale (seconds).
pub const QUICK_QUANTA_SEC: [u64; 3] = [5, 10, 20];

fn scenario(scale: Scale, quantum: SimDur) -> Scenario {
    match scale {
        Scale::Paper => Scenario::pair(
            4,
            724,
            WorkloadSpec::parallel(Benchmark::LU, Class::C, 4),
            quantum,
        ),
        Scale::Quick => {
            let mut s = quick_parallel(Benchmark::LU, 2);
            s.quantum = quantum;
            s
        }
    }
}

/// Run the sweep.
pub fn run(scale: Scale) -> Result<ExperimentOutput, String> {
    let quanta: Vec<SimDur> = match scale {
        Scale::Paper => PAPER_QUANTA_MIN
            .iter()
            .map(|&m| SimDur::from_mins(m))
            .collect(),
        Scale::Quick => QUICK_QUANTA_SEC
            .iter()
            .map(|&s| SimDur::from_secs(s))
            .collect(),
    };

    // One batch run anchors the overhead metric (batch has no quanta).
    let batch = agp_cluster::run(
        scenario(scale, quanta[0]).config(PolicyConfig::original(), ScheduleMode::Batch),
    )?;
    let tb = batch.makespan;

    let mut configs = Vec::new();
    for &q in &quanta {
        configs.push(scenario(scale, q).config(PolicyConfig::original(), ScheduleMode::Gang));
        configs.push(scenario(scale, q).config(PolicyConfig::full(), ScheduleMode::Gang));
    }
    let results = run_many(configs)?;

    let mut t = Table::new(
        "Switching overhead vs quantum length (LU, 4 machines)",
        &[
            "quantum",
            "orig overhead %",
            "so/ao/ai/bg overhead %",
            "orig switches",
            "adaptive switches",
        ],
    );
    let mut crossover_note = None;
    for (i, &q) in quanta.iter().enumerate() {
        let orig = &results[2 * i];
        let full = &results[2 * i + 1];
        let ov_o = overhead_pct(orig.makespan, tb);
        let ov_f = overhead_pct(full.makespan, tb);
        t.row(vec![
            q.to_string(),
            pct(ov_o),
            pct(ov_f),
            orig.switches.to_string(),
            full.switches.to_string(),
        ]);
        // Find the shortest quantum at which the adaptive kernel is at
        // least as efficient as the original is at the longest quantum.
        if crossover_note.is_none() {
            let ov_orig_longest = overhead_pct(results[2 * (quanta.len() - 1)].makespan, tb);
            if ov_f <= ov_orig_longest {
                crossover_note = Some(format!(
                    "adaptive paging at a {q} quantum is already as efficient ({ov_f:.1}%) as \
                     the original kernel at {} ({ov_orig_longest:.1}%) — the §6 claim that \
                     adaptive paging 'will enable the gang scheduler to use a smaller time \
                     quantum'",
                    quanta[quanta.len() - 1]
                ));
            }
        }
    }

    let mut notes = vec![
        "Wang et al. (§5): systems with high switch overhead must use long quanta, hurting \
         responsiveness; the adaptive rows stay flat where the original rows climb as the \
         quantum shrinks"
            .into(),
    ];
    if let Some(n) = crossover_note {
        notes.push(n);
    }

    Ok(ExperimentOutput {
        id: "quantum".into(),
        title: "Quantum-length sensitivity (§5/§6 responsiveness claim)".into(),
        tables: vec![t],
        traces: Vec::new(),
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_adaptive_flatter_than_original() {
        let out = run(Scale::Quick).unwrap();
        let t = &out.tables[0];
        assert_eq!(t.len(), QUICK_QUANTA_SEC.len());
        // At the shortest quantum the adaptive kernel must beat the
        // original by a wide margin.
        let ov_o: f64 = t.cell(0, 1).parse().unwrap();
        let ov_f: f64 = t.cell(0, 2).parse().unwrap();
        assert!(
            ov_f <= ov_o + 1e-9,
            "adaptive {ov_f}% must not exceed original {ov_o}% at the shortest quantum"
        );
    }
}
