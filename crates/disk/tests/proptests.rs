//! Property tests for the disk model: extent coalescing correctness and
//! service-time monotonicity (the physical premises of block paging).

use agp_disk::{extents_from_blocks, Disk, DiskParams, DiskRequest, Extent};
use agp_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// Coalescing preserves the block set exactly: disjoint, sorted,
    /// total length = number of distinct blocks, and every input block is
    /// covered.
    #[test]
    fn extents_cover_exactly(blocks in prop::collection::vec(0u64..10_000, 0..300)) {
        let mut input = blocks.clone();
        let extents = extents_from_blocks(&mut input);
        // Sorted and disjoint (with a gap — adjacent extents must merge).
        for w in extents.windows(2) {
            prop_assert!(w[0].end() < w[1].start, "adjacent extents should have merged");
        }
        let mut distinct = blocks.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let total: u64 = extents.iter().map(|e| e.len).sum();
        prop_assert_eq!(total as usize, distinct.len());
        for b in distinct {
            prop_assert!(extents.iter().any(|e| e.contains(b)), "block {} lost", b);
        }
    }

    /// Service time grows monotonically with request size (same layout).
    #[test]
    fn service_monotone_in_pages(start in 0u64..100_000, len in 1u64..2_000) {
        let mut d1 = Disk::new(DiskParams::default());
        let mut d2 = Disk::new(DiskParams::default());
        let t1 = d1.submit(SimTime::ZERO, &DiskRequest::read(vec![Extent::new(start, len)]));
        let t2 = d2.submit(SimTime::ZERO, &DiskRequest::read(vec![Extent::new(start, len + 1)]));
        prop_assert!(t2 >= t1);
    }

    /// One contiguous extent is never slower than the same pages split
    /// into arbitrary scattered extents — the block-paging premise.
    #[test]
    fn contiguous_is_fastest(
        start in 0u64..100_000,
        len in 2u64..256,
        scatter_gap in 1u64..5_000,
    ) {
        let mut d1 = Disk::new(DiskParams::default());
        let contiguous = DiskRequest::read(vec![Extent::new(start, len)]);
        let t1 = d1.submit(SimTime::ZERO, &contiguous);

        let mut d2 = Disk::new(DiskParams::default());
        let scattered = DiskRequest::read(
            (0..len).map(|i| Extent::new(start + i * (scatter_gap + 1), 1)).collect(),
        );
        let t2 = d2.submit(SimTime::ZERO, &scattered);
        prop_assert!(t2 >= t1, "scattered {t2:?} vs contiguous {t1:?}");
    }

    /// FIFO completion times are non-decreasing across submissions, and
    /// every request completes no earlier than its submission.
    #[test]
    fn fifo_completions_monotone(reqs in prop::collection::vec((0u64..50_000, 1u64..64), 1..50)) {
        let mut d = Disk::new(DiskParams::default());
        let mut last = SimTime::ZERO;
        for (i, (start, len)) in reqs.iter().enumerate() {
            let now = SimTime::from_us(i as u64 * 100);
            let c = d.submit(now, &DiskRequest::write(vec![Extent::new(*start, *len)]));
            prop_assert!(c >= now);
            prop_assert!(c >= last);
            last = c;
        }
        // Stats must account for every page.
        let total: u64 = reqs.iter().map(|(_, l)| l).sum();
        prop_assert_eq!(d.stats().pages_written, total);
    }

    /// The seek model is monotone in distance and bounded by min/max.
    #[test]
    fn seek_monotone_and_bounded(d1 in 1u64..1_000_000, d2 in 1u64..1_000_000) {
        let p = DiskParams::default();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(p.seek_us(lo) <= p.seek_us(hi));
        prop_assert!(p.seek_us(lo) >= p.min_seek_us);
        prop_assert!(p.seek_us(hi) <= p.max_seek_us);
    }
}
