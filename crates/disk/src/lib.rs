//! # agp-disk — the paging device model
//!
//! The paper's central physical argument is that *disk seek latency
//! dominates paging cost*, so grouping many page transfers into contiguous
//! block I/O amortizes the arm movement ("Latency of the disk arm movement
//! is the largest component of the time required to transfer data to and
//! from the disk during paging", §1). This crate models exactly that
//! effect and nothing more:
//!
//! * a block address space (one block = one 4 KiB page slot),
//! * a service-time model: distance-dependent seek + half-rotation
//!   settle per discontiguity + per-page transfer time,
//! * a FIFO request queue per device with completion times computable at
//!   submission (no reordering, so the discrete-event layer can schedule a
//!   single completion event per request).
//!
//! Defaults are calibrated to a circa-2003 commodity IDE disk, the class of
//! hardware in the paper's testbed (≈8.5 ms average seek, 7200 rpm,
//! ≈40 MB/s media rate).
//!
//! The *swap-space allocator* that decides which blocks a page lands in
//! lives in `agp-mem`; this crate only prices the resulting extents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extent;
pub mod model;

pub use extent::{extents_from_blocks, Extent};
pub use model::{Disk, DiskParams, DiskRequest, DiskStats, IoKind};
