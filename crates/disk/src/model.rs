//! The device itself: service-time model, FIFO queue, statistics.

use crate::extent::{total_blocks, Extent};
use agp_obs::{ObsEvent, ObsLink};
use agp_sim::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of a paging transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Page-in: swap device → memory.
    Read,
    /// Page-out: memory → swap device.
    Write,
}

/// Mechanical and geometry parameters of a paging disk.
///
/// Defaults model the circa-2001 commodity IDE drives of the paper's
/// testbed era: 5400 rpm (11.1 ms full rotation), 3–20 ms
/// distance-dependent seek, ~13 MB/s sustained media rate (≈300 µs per
/// 4 KiB page).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskParams {
    /// Number of page-sized blocks on the device (swap partition size).
    pub blocks: u64,
    /// Seek time between adjacent tracks / trivial distances, µs.
    pub min_seek_us: u64,
    /// Full-stroke seek time, µs.
    pub max_seek_us: u64,
    /// Full platter rotation, µs (half of this is the average rotational
    /// latency paid whenever the head moves).
    pub rotation_us: u64,
    /// Media transfer time for one 4 KiB page, µs.
    pub page_transfer_us: u64,
    /// Fixed controller/command overhead per request, µs.
    pub command_overhead_us: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            // 2 GiB swap partition: plenty for two ≤500 MB jobs per node.
            blocks: 512 * 1024,
            min_seek_us: 3_000,
            max_seek_us: 20_000,
            rotation_us: 11_111,
            page_transfer_us: 300,
            command_overhead_us: 500,
        }
    }
}

impl DiskParams {
    /// Seek time for a head movement of `distance` blocks.
    ///
    /// Uses the standard concave model `min + (max − min) · sqrt(d / D)`:
    /// short seeks are dominated by arm settle time, long seeks by the
    /// sweep. A zero-distance "seek" (sequential access) is free.
    pub fn seek_us(&self, distance: u64) -> u64 {
        if distance == 0 {
            return 0;
        }
        let frac = (distance as f64 / self.blocks as f64).min(1.0).sqrt();
        self.min_seek_us + ((self.max_seek_us - self.min_seek_us) as f64 * frac) as u64
    }

    /// Average rotational latency (half a rotation), µs.
    pub fn half_rotation_us(&self) -> u64 {
        self.rotation_us / 2
    }
}

/// A single paging request: a set of extents to read or write.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskRequest {
    /// Transfer direction.
    pub kind: IoKind,
    /// Extents to transfer, serviced in slice order.
    pub extents: Vec<Extent>,
}

impl DiskRequest {
    /// A read covering `extents`.
    pub fn read(extents: Vec<Extent>) -> Self {
        DiskRequest {
            kind: IoKind::Read,
            extents,
        }
    }

    /// A write covering `extents`.
    pub fn write(extents: Vec<Extent>) -> Self {
        DiskRequest {
            kind: IoKind::Write,
            extents,
        }
    }

    /// Total pages moved by this request.
    pub fn pages(&self) -> u64 {
        total_blocks(&self.extents)
    }

    /// Whether the request moves no data.
    pub fn is_empty(&self) -> bool {
        self.pages() == 0
    }
}

/// Cumulative device statistics, used by the metrics layer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DiskStats {
    /// Completed read requests.
    pub read_requests: u64,
    /// Completed write requests.
    pub write_requests: u64,
    /// Pages transferred device → memory.
    pub pages_read: u64,
    /// Pages transferred memory → device.
    pub pages_written: u64,
    /// Number of non-zero head movements (seeks) performed.
    pub seeks: u64,
    /// Total time the device spent servicing requests.
    pub busy: SimDur,
    /// Total time requests spent queued before service began.
    pub queued: SimDur,
    /// Requests that failed with a device error (chaos injection).
    /// Errored requests move no pages and are *not* counted in
    /// `read_requests`/`write_requests` or the page totals.
    #[serde(default)]
    pub errors: u64,
    /// Injected latency-spike penalty absorbed by slowed requests
    /// (chaos injection), summed.
    #[serde(default)]
    pub slow_penalty: SimDur,
}

/// A paging disk with a FIFO queue.
///
/// Because the queue is FIFO and service times depend only on device state
/// at service start, the completion time of a request is fully determined
/// at submission: `completion = max(now, busy_until) + service`. [`Disk::submit`]
/// therefore returns the completion instant directly and the caller
/// schedules a single completion event — no device-side event machinery.
#[derive(Clone, Debug)]
pub struct Disk {
    params: DiskParams,
    /// Current head position (block) after the last queued request.
    head: u64,
    /// Instant the device drains its queue.
    busy_until: SimTime,
    stats: DiskStats,
    obs: ObsLink,
}

impl Disk {
    /// A new idle disk with its head parked at block 0.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            head: 0,
            busy_until: SimTime::ZERO,
            stats: DiskStats::default(),
            obs: ObsLink::disabled(),
        }
    }

    /// Attach an observation link (per-request `disk_request` events).
    pub fn set_observer(&mut self, obs: ObsLink) {
        self.obs = obs;
    }

    /// Device parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Instant at which all queued work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the device has no queued work at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Pure service-time computation for `extents` given a starting head
    /// position; returns `(service_time, final_head, seeks, seek_us)`
    /// where `seek_us` is the positioning (seek + rotation) share of the
    /// service time.
    fn service(&self, mut head: u64, extents: &[Extent]) -> (SimDur, u64, u64, u64) {
        let mut us = 0u64;
        let mut seeks = 0u64;
        let mut seek_us = 0u64;
        for e in extents {
            if e.len == 0 {
                continue;
            }
            let dist = head.abs_diff(e.start);
            if dist != 0 {
                seek_us = seek_us
                    .saturating_add(self.params.seek_us(dist))
                    .saturating_add(self.params.half_rotation_us());
                seeks += 1;
            }
            us = us.saturating_add(e.len.saturating_mul(self.params.page_transfer_us));
            head = e.end();
        }
        (
            SimDur::from_us(us.saturating_add(seek_us)),
            head,
            seeks,
            seek_us,
        )
    }

    /// Quote the service time of a request *without* submitting it
    /// (assumes the head is wherever the current queue leaves it).
    pub fn quote(&self, req: &DiskRequest) -> SimDur {
        if req.is_empty() {
            return SimDur::ZERO;
        }
        let (svc, _, _, _) = self.service(self.head, &req.extents);
        svc + SimDur::from_us(self.params.command_overhead_us)
    }

    /// Enqueue a request at `now`; returns its completion instant.
    ///
    /// An empty request completes immediately at `max(now, busy_until)` —
    /// i.e. it still waits for the queue to drain, which models "wait for
    /// outstanding paging I/O" synchronization points.
    pub fn submit(&mut self, now: SimTime, req: &DiskRequest) -> SimTime {
        let _perf = agp_perf::scope(agp_perf::Span::DiskSubmit);
        let start = now.max(self.busy_until);
        if req.is_empty() {
            return start;
        }
        let (svc, final_head, seeks, seek_us) = self.service(self.head, &req.extents);
        let svc = svc + SimDur::from_us(self.params.command_overhead_us);
        let completion = start + svc;

        self.stats.queued += start - now;
        self.stats.busy += svc;
        self.stats.seeks += seeks;
        let pages = req.pages();
        match req.kind {
            IoKind::Read => {
                self.stats.read_requests += 1;
                self.stats.pages_read += pages;
            }
            IoKind::Write => {
                self.stats.write_requests += 1;
                self.stats.pages_written += pages;
            }
        }
        self.head = final_head;
        self.busy_until = completion;
        self.obs.emit(now, || ObsEvent::DiskRequest {
            write: req.kind == IoKind::Write,
            extents: req.extents.len() as u32,
            pages,
            wait_us: start.since(now).as_us(),
            seek_us,
            service_us: svc.as_us(),
        });
        completion
    }

    /// Enqueue a request that the device will *fail* (chaos injection);
    /// returns the instant the error is reported to the caller.
    ///
    /// A failed request burns only the controller command overhead: the
    /// drive rejects it before moving the head, so no seek happens, no
    /// pages transfer, and the head stays where the queue left it. The
    /// request is counted in [`DiskStats::errors`] — never in the
    /// completed-request or page totals — so throughput numbers remain
    /// "work actually done".
    pub fn submit_failing(&mut self, now: SimTime, req: &DiskRequest) -> SimTime {
        let _perf = agp_perf::scope(agp_perf::Span::DiskSubmit);
        let start = now.max(self.busy_until);
        let svc = SimDur::from_us(self.params.command_overhead_us);
        let completion = start + svc;

        self.stats.queued += start - now;
        self.stats.busy += svc;
        self.stats.errors += 1;
        self.busy_until = completion;
        self.obs.emit(now, || ObsEvent::DiskError {
            write: req.kind == IoKind::Write,
            pages: req.pages(),
            service_us: svc.as_us(),
        });
        completion
    }

    /// Enqueue a request slowed by an injected latency spike of
    /// `penalty_us` (chaos injection); returns its completion instant.
    ///
    /// The request succeeds and is accounted exactly like a normal
    /// [`Disk::submit`] — same seeks, same pages, same `DiskRequest`
    /// event — with the penalty added on top of the service time and
    /// recorded in [`DiskStats::slow_penalty`]. A trailing
    /// `DiskSlowdown` event attributes the extra time to the fault.
    pub fn submit_slowed(&mut self, now: SimTime, req: &DiskRequest, penalty_us: u64) -> SimTime {
        let completion = self.submit(now, req);
        if req.is_empty() || penalty_us == 0 {
            return completion;
        }
        let penalty = SimDur::from_us(penalty_us);
        self.stats.busy += penalty;
        self.stats.slow_penalty += penalty;
        self.busy_until = completion + penalty;
        self.obs.emit(now, || ObsEvent::DiskSlowdown { penalty_us });
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::default())
    }

    #[test]
    fn seek_model_shape() {
        let p = DiskParams::default();
        assert_eq!(p.seek_us(0), 0);
        assert!(p.seek_us(1) >= p.min_seek_us);
        assert!(p.seek_us(p.blocks) <= p.max_seek_us);
        assert!(
            p.seek_us(100) < p.seek_us(100_000),
            "seek grows with distance"
        );
    }

    #[test]
    fn contiguous_cheaper_than_scattered() {
        // 64 contiguous pages vs 64 pages scattered one-per-extent: the
        // scattered read must pay ~64 seeks and be far slower. This is the
        // entire premise of block paging.
        let mut d1 = disk();
        let contiguous = DiskRequest::read(vec![Extent::new(1000, 64)]);
        let t1 = d1.submit(SimTime::ZERO, &contiguous);

        let mut d2 = disk();
        let scattered =
            DiskRequest::read((0..64).map(|i| Extent::new(1000 + i * 5000, 1)).collect());
        let t2 = d2.submit(SimTime::ZERO, &scattered);
        assert!(
            t2.as_us() > 10 * t1.as_us(),
            "scattered {t2} should dwarf contiguous {t1}"
        );
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let mut d = disk();
        let r = DiskRequest::read(vec![Extent::new(0, 16)]);
        let c1 = d.submit(SimTime::ZERO, &r);
        let c2 = d.submit(SimTime::ZERO, &DiskRequest::read(vec![Extent::new(16, 16)]));
        assert!(c2 > c1, "second request queues behind the first");
        // Second request is sequential after the first: no seek.
        assert_eq!(
            d.stats().seeks,
            0,
            "head at 16 then reading 16..32 is sequential"
        );
    }

    #[test]
    fn sequential_requests_pay_no_seek() {
        let mut d = disk();
        d.submit(SimTime::ZERO, &DiskRequest::write(vec![Extent::new(0, 8)]));
        let before = d.stats().seeks;
        d.submit(SimTime::ZERO, &DiskRequest::write(vec![Extent::new(8, 8)]));
        assert_eq!(d.stats().seeks, before);
    }

    #[test]
    fn empty_request_completes_at_queue_drain() {
        let mut d = disk();
        let c1 = d.submit(SimTime::ZERO, &DiskRequest::read(vec![Extent::new(0, 100)]));
        let c2 = d.submit(SimTime::ZERO, &DiskRequest::read(vec![]));
        assert_eq!(c2, c1);
        assert_eq!(d.stats().read_requests, 1, "empty request not counted");
    }

    #[test]
    fn idle_after_drain() {
        let mut d = disk();
        let c = d.submit(SimTime::ZERO, &DiskRequest::read(vec![Extent::new(0, 4)]));
        assert!(!d.is_idle(SimTime::ZERO));
        assert!(d.is_idle(c));
    }

    #[test]
    fn stats_track_pages_and_direction() {
        let mut d = disk();
        d.submit(SimTime::ZERO, &DiskRequest::read(vec![Extent::new(0, 10)]));
        d.submit(SimTime::ZERO, &DiskRequest::write(vec![Extent::new(50, 7)]));
        assert_eq!(d.stats().pages_read, 10);
        assert_eq!(d.stats().pages_written, 7);
        assert_eq!(d.stats().read_requests, 1);
        assert_eq!(d.stats().write_requests, 1);
    }

    #[test]
    fn quote_matches_submit_service_time() {
        let mut d = disk();
        let r = DiskRequest::read(vec![Extent::new(123, 32), Extent::new(9000, 8)]);
        let q = d.quote(&r);
        let c = d.submit(SimTime::ZERO, &r);
        assert_eq!(c.since(SimTime::ZERO), q);
    }

    #[test]
    fn failed_request_counts_as_error_not_completion() {
        let mut d = disk();
        let r = DiskRequest::write(vec![Extent::new(0, 40)]);
        let c = d.submit_failing(SimTime::ZERO, &r);
        // Only command overhead is burned; the head never moved.
        assert_eq!(
            c.as_us(),
            DiskParams::default().command_overhead_us,
            "error is reported after command overhead only"
        );
        assert_eq!(d.stats().errors, 1);
        assert_eq!(
            d.stats().write_requests,
            0,
            "errored I/O is not completed I/O"
        );
        assert_eq!(d.stats().pages_written, 0, "errored I/O moved nothing");
        assert_eq!(d.stats().seeks, 0, "rejected before the head moved");
        // A retry of the same request behaves as if the failure never
        // positioned the head.
        let mut fresh = disk();
        let c_retry = d.submit(c, &r);
        let c_fresh = fresh.submit(SimTime::ZERO, &r);
        assert_eq!(c_retry.since(c), c_fresh.since(SimTime::ZERO));
    }

    #[test]
    fn slowed_request_pays_the_penalty_once() {
        let mut slow = disk();
        let mut base = disk();
        let r = DiskRequest::read(vec![Extent::new(100, 16)]);
        let c_base = base.submit(SimTime::ZERO, &r);
        let c_slow = slow.submit_slowed(SimTime::ZERO, &r, 7_000);
        assert_eq!(c_slow.since(c_base), SimDur::from_us(7_000));
        assert_eq!(slow.stats().slow_penalty, SimDur::from_us(7_000));
        // The transfer itself is accounted normally.
        assert_eq!(slow.stats().read_requests, 1);
        assert_eq!(slow.stats().pages_read, 16);
        assert_eq!(slow.busy_until(), c_slow, "queue drains after the penalty");
        // Zero penalty degrades to a plain submit.
        let mut z = disk();
        let c_z = z.submit_slowed(SimTime::ZERO, &r, 0);
        assert_eq!(c_z, c_base);
        assert_eq!(z.stats().slow_penalty, SimDur::ZERO);
    }

    #[test]
    fn later_submission_starts_later() {
        let mut d = disk();
        let t0 = SimTime::from_secs(5);
        let c = d.submit(t0, &DiskRequest::read(vec![Extent::new(0, 1)]));
        assert!(c > t0);
        assert_eq!(d.stats().queued, SimDur::ZERO);
    }
}
