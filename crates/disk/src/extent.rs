//! Contiguous runs of disk blocks.
//!
//! All disk traffic in the simulator is expressed as extents. A request
//! touching `n` pages spread over `k` extents pays `k` seek+settle costs but
//! only `n` transfer costs — the arithmetic heart of block paging.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A contiguous run of disk blocks `[start, start + len)`.
///
/// One block holds one 4 KiB page image.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Extent {
    /// First block of the run.
    pub start: u64,
    /// Number of blocks in the run (always ≥ 1 for extents built by
    /// [`extents_from_blocks`]).
    pub len: u64,
}

impl Extent {
    /// Construct an extent.
    pub const fn new(start: u64, len: u64) -> Self {
        Extent { start, len }
    }

    /// One block past the end of the run.
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `block` falls inside this extent.
    pub const fn contains(&self, block: u64) -> bool {
        block >= self.start && block < self.end()
    }
}

impl fmt::Debug for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}+{}]", self.start, self.len)
    }
}

/// Coalesce a block list into maximal contiguous extents.
///
/// The input is sorted and deduplicated internally; the output extents are
/// disjoint, sorted by `start`, and their total length equals the number of
/// distinct input blocks.
///
/// ```
/// use agp_disk::extent::{extents_from_blocks, Extent};
/// let ext = extents_from_blocks(&mut vec![7, 3, 4, 5, 9, 9]);
/// assert_eq!(ext, vec![Extent::new(3, 3), Extent::new(7, 1), Extent::new(9, 1)]);
/// ```
pub fn extents_from_blocks(blocks: &mut Vec<u64>) -> Vec<Extent> {
    blocks.sort_unstable();
    blocks.dedup();
    let mut out: Vec<Extent> = Vec::new();
    for &b in blocks.iter() {
        match out.last_mut() {
            Some(e) if e.end() == b => e.len += 1,
            _ => out.push(Extent::new(b, 1)),
        }
    }
    out
}

/// Total number of blocks covered by a slice of extents.
pub fn total_blocks(extents: &[Extent]) -> u64 {
    extents.iter().map(|e| e.len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_empty_output() {
        assert!(extents_from_blocks(&mut vec![]).is_empty());
    }

    #[test]
    fn single_block() {
        assert_eq!(extents_from_blocks(&mut vec![5]), vec![Extent::new(5, 1)]);
    }

    #[test]
    fn fully_contiguous() {
        let ext = extents_from_blocks(&mut (100..200).collect());
        assert_eq!(ext, vec![Extent::new(100, 100)]);
    }

    #[test]
    fn dedup_and_merge() {
        let ext = extents_from_blocks(&mut vec![2, 1, 2, 3, 10, 11, 20]);
        assert_eq!(
            ext,
            vec![Extent::new(1, 3), Extent::new(10, 2), Extent::new(20, 1)]
        );
        assert_eq!(total_blocks(&ext), 6);
    }

    #[test]
    fn contains_and_end() {
        let e = Extent::new(4, 3);
        assert_eq!(e.end(), 7);
        assert!(e.contains(4) && e.contains(6));
        assert!(!e.contains(7) && !e.contains(3));
    }
}
