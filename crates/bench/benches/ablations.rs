//! Design-choice ablations called out in DESIGN.md, printed as tables
//! and timed:
//!
//! * **baseline replacement** — the Linux-2.2 clock the paper modified
//!   vs an idealized exact global LRU: how much of the adaptive win
//!   depends on the baseline's false-eviction pathology;
//! * **read-ahead window** — the §3.3 discussion ("boosting the
//!   read-ahead size might actually degrade the performance"): sweep the
//!   window under the original kernel;
//! * **executor chunk size** — simulator fidelity knob: stop-signal
//!   latency vs event count.

use agp_bench::print_scale;
use agp_cluster::{ClusterConfig, JobSpec, RunResult, ScheduleMode};
use agp_core::policy::BaselineKind;
use agp_core::PolicyConfig;
use agp_experiments::Scale;
use agp_metrics::{overhead_pct, reduction_pct, Table};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn scenario(policy: PolicyConfig, mode: ScheduleMode, scale: Scale) -> ClusterConfig {
    let (class, mem, wired, quantum) = match scale {
        Scale::Paper => (Class::B, 1024, 574, SimDur::from_mins(5)),
        Scale::Quick => (Class::A, 128, 66, SimDur::from_secs(10)),
    };
    let w = WorkloadSpec::serial(Benchmark::LU, class);
    let mut cfg = ClusterConfig::paper_defaults(1);
    cfg.mem_mib = mem;
    cfg.wired_mib = wired;
    cfg.quantum = quantum;
    cfg.policy = policy;
    cfg.mode = mode;
    cfg.jobs = vec![JobSpec::new("LU #1", w), JobSpec::new("LU #2", w)];
    cfg
}

fn run(cfg: ClusterConfig) -> RunResult {
    agp_cluster::run(cfg).expect("run")
}

fn baseline_kind(c: &mut Criterion) {
    let scale = print_scale();
    let mut t = Table::new(
        "ablation: baseline replacement (LU serial pair)",
        &[
            "baseline",
            "orig overhead %",
            "full-policy reduction %",
            "false evictions",
        ],
    );
    for (name, kind) in [
        ("2.2 clock", BaselineKind::Clock),
        ("global LRU", BaselineKind::GlobalLru),
    ] {
        let mut orig_p = PolicyConfig::original();
        orig_p.baseline = kind;
        let mut full_p = PolicyConfig::full();
        full_p.baseline = kind;
        let batch = run(scenario(orig_p, ScheduleMode::Batch, scale));
        let orig = run(scenario(orig_p, ScheduleMode::Gang, scale));
        let full = run(scenario(full_p, ScheduleMode::Gang, scale));
        t.row(vec![
            name.into(),
            format!("{:.1}", overhead_pct(orig.makespan, batch.makespan)),
            format!(
                "{:.1}",
                reduction_pct(orig.makespan, full.makespan, batch.makespan)
            ),
            orig.total_engine_stats().false_evictions.to_string(),
        ]);
    }
    eprintln!("\n{t}");
    eprintln!(
        "  * the clock baseline (what Linux 2.2 shipped, and what the paper modified) churns \
         far more than ideal LRU; part of the paper's win is repairing that pathology\n"
    );
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("baseline_global_lru_quick", |b| {
        let mut p = PolicyConfig::original();
        p.baseline = BaselineKind::GlobalLru;
        b.iter(|| black_box(run(scenario(p, ScheduleMode::Gang, Scale::Quick)).makespan));
    });
    group.finish();
}

fn readahead_window(c: &mut Criterion) {
    let scale = print_scale();
    let mut t = Table::new(
        "ablation: swap read-ahead window under the original kernel (§3.3)",
        &[
            "window (pages)",
            "completion (min)",
            "pages in",
            "major faults",
        ],
    );
    for window in [1usize, 4, 16, 64, 256] {
        let mut cfg = scenario(PolicyConfig::original(), ScheduleMode::Gang, scale);
        cfg.readahead = Some(window);
        let r = run(cfg);
        let es = r.total_engine_stats();
        t.row(vec![
            window.to_string(),
            format!("{:.1}", r.makespan.as_mins_f64()),
            r.total_pages_in().to_string(),
            es.major_faults.to_string(),
        ]);
    }
    eprintln!("\n{t}");
    eprintln!(
        "  * §3.3: a modest window amortizes seeks; huge windows read pages that are evicted \
         before use (the paper's argument for recording instead of blindly boosting)\n"
    );
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("readahead_64_quick", |b| {
        b.iter(|| {
            let mut cfg = scenario(PolicyConfig::original(), ScheduleMode::Gang, Scale::Quick);
            cfg.readahead = Some(64);
            black_box(run(cfg).makespan)
        });
    });
    group.finish();
}

fn chunk_size(c: &mut Criterion) {
    let mut t = Table::new(
        "ablation: executor chunk size (fidelity knob, quick scale)",
        &["chunk (pages)", "makespan", "events"],
    );
    for chunk in [256u32, 1024, 4096] {
        let mut cfg = scenario(PolicyConfig::full(), ScheduleMode::Gang, Scale::Quick);
        cfg.chunk_pages = chunk;
        let r = run(cfg);
        t.row(vec![
            chunk.to_string(),
            r.makespan.to_string(),
            r.events.to_string(),
        ]);
    }
    eprintln!("\n{t}");
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("chunk_4096_quick", |b| {
        b.iter(|| {
            let mut cfg = scenario(PolicyConfig::full(), ScheduleMode::Gang, Scale::Quick);
            cfg.chunk_pages = 4096;
            black_box(run(cfg).makespan)
        });
    });
    group.finish();
}

criterion_group!(ablations, baseline_kind, readahead_window, chunk_size);
criterion_main!(ablations);
