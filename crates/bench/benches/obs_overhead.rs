//! Observability overhead: the same fig6-scale gang run with no observer
//! attached (the default every experiment uses), with the aggregating
//! [`Collector`], and with the JSONL exporter writing to memory. The
//! first two should be near-identical — a disabled `ObsLink` is one
//! `Option` check per site — and the third bounds the cost of full
//! structured tracing.

use agp_experiments::{profile_config, Scale};
use agp_obs::{shared, Collector, JsonlWriter, ObsLink, SharedSink};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn cfg() -> agp_cluster::ClusterConfig {
    profile_config("fig6", Scale::Quick).expect("fig6 is registered")
}

fn obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));

    group.bench_function("fig6_quick_no_observer", |b| {
        b.iter(|| black_box(agp_cluster::run(cfg()).unwrap().makespan));
    });

    group.bench_function("fig6_quick_collector", |b| {
        b.iter(|| {
            let sink = shared(Collector::new());
            let link = ObsLink::to(sink.clone() as SharedSink);
            let r = agp_cluster::run_observed(cfg(), &link).unwrap();
            let events = sink.lock().unwrap().counters.events;
            black_box((r.makespan, events))
        });
    });

    group.bench_function("fig6_quick_jsonl_to_memory", |b| {
        b.iter(|| {
            let sink = shared(JsonlWriter::new(Vec::new()));
            let link = ObsLink::to(sink.clone() as SharedSink);
            let r = agp_cluster::run_observed(cfg(), &link).unwrap();
            let lines = sink.lock().unwrap().lines();
            black_box((r.makespan, lines))
        });
    });

    group.finish();
}

criterion_group!(obs, obs_overhead);
criterion_main!(obs);
