//! Cost of the `agp-perf` span guards, isolated and end-to-end.
//!
//! The guards are compiled into release builds unconditionally, so the
//! number that matters most is the *disabled* path: one relaxed atomic
//! load and a branch (`scope_disabled`, expected ~1 ns). The enabled
//! path adds two clock reads plus the recorder bookkeeping per frame
//! (`scope_enabled`). The two `fig6_quick_*` rows bound the real-world
//! impact on a full gang run — profiler off vs profiler on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use agp_experiments::{profile_config, Scale};

fn cfg() -> agp_cluster::ClusterConfig {
    profile_config("fig6", Scale::Quick).expect("fig6 is registered")
}

fn span_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_overhead");

    // The branch-only cost every instrumented site pays when profiling
    // is off (the default for all experiments, tests, and goldens).
    agp_perf::enable(false);
    group.bench_function("scope_disabled", |b| {
        b.iter(|| {
            let g = agp_perf::scope(black_box(agp_perf::Span::SimDispatch));
            black_box(g)
        });
    });

    // Full enter/exit with the recorder doing inclusive/exclusive/
    // histogram/path accounting.
    agp_perf::enable(true);
    group.bench_function("scope_enabled", |b| {
        b.iter(|| {
            let g = agp_perf::scope(black_box(agp_perf::Span::SimDispatch));
            black_box(g)
        });
    });
    agp_perf::enable(false);
    let _ = agp_perf::take_report();

    group.finish();
}

fn run_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_overhead_run");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));

    agp_perf::enable(false);
    group.bench_function("fig6_quick_profiler_off", |b| {
        b.iter(|| black_box(agp_cluster::run(cfg()).unwrap().makespan));
    });

    group.bench_function("fig6_quick_profiler_on", |b| {
        agp_perf::enable(true);
        b.iter(|| black_box(agp_cluster::run(cfg()).unwrap().makespan));
        agp_perf::enable(false);
        let _ = agp_perf::take_report();
    });

    group.finish();
}

criterion_group!(perf, span_guard, run_overhead);
criterion_main!(perf);
