//! One Criterion bench per paper artifact. Each bench first regenerates
//! and prints its figure/table (at `AGP_BENCH_SCALE`, default quick),
//! then times the quick-scale experiment end to end — so `cargo bench`
//! doubles as the harness that reproduces every row the paper reports.

use agp_bench::{print_output, print_scale};
use agp_experiments::{find, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_experiment(c: &mut Criterion, id: &str) {
    let e = find(id).unwrap_or_else(|| panic!("experiment {id} not registered"));
    // Regenerate and print the artifact once.
    let out = (e.runner)(print_scale()).unwrap_or_else(|err| panic!("{id}: {err}"));
    print_output(&out);
    // Time the quick-scale reproduction.
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function(id, |b| {
        b.iter(|| (e.runner)(Scale::Quick).expect("experiment run"));
    });
    group.finish();
}

fn fig6(c: &mut Criterion) {
    bench_experiment(c, "fig6");
}

fn fig7(c: &mut Criterion) {
    bench_experiment(c, "fig7");
}

fn fig8(c: &mut Criterion) {
    bench_experiment(c, "fig8");
}

fn fig9(c: &mut Criterion) {
    bench_experiment(c, "fig9");
}

fn moreira(c: &mut Criterion) {
    bench_experiment(c, "moreira");
}

fn bgablate(c: &mut Criterion) {
    bench_experiment(c, "bgablate");
}

fn quantum(c: &mut Criterion) {
    bench_experiment(c, "quantum");
}

fn scale16(c: &mut Criterion) {
    bench_experiment(c, "scale16");
}

fn mpl(c: &mut Criterion) {
    bench_experiment(c, "mpl");
}

fn admission(c: &mut Criterion) {
    bench_experiment(c, "admission");
}

criterion_group!(
    figures, moreira, fig6, fig7, fig8, fig9, bgablate, quantum, scale16, mpl, admission
);
criterion_main!(figures);
