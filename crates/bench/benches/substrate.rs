//! Microbenchmarks of the simulator's hot paths. These bound how much
//! wall time a paper-scale experiment costs and guard against
//! accidental quadratic regressions (e.g. per-fault re-sorting in the
//! reclaim path, which the selective cache exists to avoid).

use agp_core::{PagingEngine, PolicyConfig};
use agp_disk::{Disk, DiskParams, DiskRequest, Extent};
use agp_mem::{Kernel, PageNum, ProcId, VmParams};
use agp_sim::{EventQueue, SimRng, SimTime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = SimRng::new(7);
        let times: Vec<u64> = (0..10_000).map(|_| rng.below(1_000_000)).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut max_seen = 0u64;
            for &t in &times {
                q.push(SimTime::from_us(max_seen + t), ());
            }
            while let Some((t, ())) = q.pop() {
                max_seen = t.as_us();
            }
            black_box(max_seen)
        });
    });
}

fn touch_run(c: &mut Criterion) {
    // A resident 64 Ki-page working set swept in 1 Ki chunks: the
    // executor's innermost loop at paper scale.
    let pid = ProcId(1);
    let mut k = Kernel::new(VmParams::for_frames(80_000, 0), 1 << 20);
    k.register_proc(pid, 65_536);
    for p in 0..65_536u32 {
        k.map_in(pid, PageNum(p), SimTime::ZERO).unwrap();
    }
    c.bench_function("touch_run_sweep_64k_pages", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_us(t);
            let mut done = 0u32;
            while done < 65_536 {
                let (hits, fault) = k
                    .touch_run(
                        pid,
                        PageNum(done),
                        1024.min((65_536 - done) as usize),
                        true,
                        now,
                    )
                    .unwrap();
                assert!(fault.is_none());
                done += hits as u32;
            }
            black_box(done)
        });
    });
}

fn reclaim_under_pressure(c: &mut Criterion) {
    c.bench_function("reclaim_evict_2k_of_64k", |b| {
        b.iter_with_setup(
            || {
                let mut k = Kernel::new(VmParams::for_frames(66_000, 0), 1 << 20);
                k.register_proc(ProcId(1), 65_536);
                for p in 0..65_000u32 {
                    k.map_in(ProcId(1), PageNum(p), SimTime::from_us(p as u64))
                        .unwrap();
                    if p % 2 == 0 {
                        k.touch(ProcId(1), PageNum(p), true, SimTime::from_us(p as u64))
                            .unwrap();
                    }
                }
                (k, PagingEngine::new(PolicyConfig::original()))
            },
            |(mut k, mut e)| {
                let w = e.free_pages(&mut k, 2048, SimTime::from_secs(100)).unwrap();
                black_box((k.free_frames(), w.len()))
            },
        );
    });
}

fn evict_batch_contiguity(c: &mut Criterion) {
    c.bench_function("evict_batch_8k_dirty_pages", |b| {
        b.iter_with_setup(
            || {
                let mut k = Kernel::new(VmParams::for_frames(16_384, 0), 1 << 20);
                k.register_proc(ProcId(1), 8_192);
                for p in 0..8_192u32 {
                    k.map_in(ProcId(1), PageNum(p), SimTime::ZERO).unwrap();
                    k.touch(ProcId(1), PageNum(p), true, SimTime::ZERO).unwrap();
                }
                k
            },
            |mut k| {
                let pages: Vec<PageNum> = (0..8_192).map(PageNum).collect();
                let ext = k.evict_batch(ProcId(1), &pages, &mut Vec::new()).unwrap();
                black_box(ext.len())
            },
        );
    });
}

fn disk_service(c: &mut Criterion) {
    c.bench_function("disk_submit_1k_requests", |b| {
        let mut rng = SimRng::new(3);
        let reqs: Vec<DiskRequest> = (0..1000)
            .map(|_| DiskRequest::read(vec![Extent::new(rng.below(500_000), 1 + rng.below(63))]))
            .collect();
        b.iter(|| {
            let mut d = Disk::new(DiskParams::default());
            let mut last = SimTime::ZERO;
            for r in &reqs {
                last = d.submit(SimTime::ZERO, r);
            }
            black_box(last)
        });
    });
}

fn full_cluster_run(c: &mut Criterion) {
    use agp_cluster::{ClusterConfig, JobSpec, ScheduleMode};
    use agp_sim::SimDur;
    use agp_workload::{Benchmark, Class, WorkloadSpec};
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("quick_lu_pair_full_policy", |b| {
        b.iter(|| {
            let w = WorkloadSpec::serial(Benchmark::LU, Class::A);
            let mut cfg = ClusterConfig::paper_defaults(1);
            cfg.mem_mib = 128;
            cfg.wired_mib = 66;
            cfg.quantum = SimDur::from_secs(10);
            cfg.policy = PolicyConfig::full();
            cfg.mode = ScheduleMode::Gang;
            cfg.jobs = vec![JobSpec::new("a", w), JobSpec::new("b", w)];
            black_box(agp_cluster::run(cfg).unwrap().makespan)
        });
    });
    group.finish();
}

criterion_group!(
    substrate,
    event_queue,
    touch_run,
    reclaim_under_pressure,
    evict_batch_contiguity,
    disk_service,
    full_cluster_run
);
criterion_main!(substrate);
