//! # agp-bench — the benchmark harness
//!
//! Criterion benches regenerating every table and figure of the paper:
//!
//! * `benches/paper_figures.rs` — one group per paper artifact (Fig. 6–9,
//!   the §1 Moreira motivation, the §3.4 window ablation, the §5/§6
//!   quantum sweep). Each bench prints the regenerated table/series once,
//!   then times the experiment at quick scale. Set `AGP_BENCH_SCALE=paper`
//!   to print the full testbed-geometry tables instead (slower; printed
//!   once, sampling still at quick scale).
//! * `benches/substrate.rs` — microbenchmarks of the simulator's hot
//!   paths (touch runs, reclaim, swap allocation, disk service, event
//!   queue, recorder).
//! * `benches/ablations.rs` — design-choice ablations from DESIGN.md:
//!   baseline replacement (2.2 clock vs idealized global LRU), read-ahead
//!   window, and executor chunk size.
//!
//! Run with `cargo bench --workspace`; per-figure tables land on stderr
//! so they survive criterion's output formatting.

/// Print an experiment's output (tables + notes) to stderr, labeled.
pub fn print_output(out: &agp_experiments::ExperimentOutput) {
    eprintln!(
        "\n================ {} — {} ================",
        out.id, out.title
    );
    for t in &out.tables {
        eprintln!("{t}");
    }
    for (label, trace) in &out.traces {
        eprintln!(
            "trace [{label}] in : {}",
            agp_metrics::report::sparkline(trace.ins())
        );
        eprintln!(
            "trace [{label}] out: {}",
            agp_metrics::report::sparkline(trace.outs())
        );
    }
    for n in &out.notes {
        eprintln!("  * {n}");
    }
}

/// Scale for the one-time table printout: `AGP_BENCH_SCALE=paper` selects
/// the full testbed geometry.
pub fn print_scale() -> agp_experiments::Scale {
    match std::env::var("AGP_BENCH_SCALE").as_deref() {
        Ok("paper") | Ok("PAPER") => agp_experiments::Scale::Paper,
        _ => agp_experiments::Scale::Quick,
    }
}
