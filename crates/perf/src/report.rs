//! Frozen, exportable form of one profiling session.
//!
//! [`PerfReport`] snapshots a [`Recorder`] into plain data that the CLI,
//! the BENCH manifest, the Perfetto exporter, and the Prometheus
//! exposition can all consume without holding the thread-local recorder.
//! All serialization here is hand-rolled and deterministic: spans are in
//! registry order, paths in lexicographic stack order, and floats are
//! fixed-precision — identical inputs give byte-identical output.

use crate::recorder::{NsHistogram, Recorder};
use crate::span::Span;

/// Prefix for every collapsed-stack line (the flamegraph root frame).
pub const COLLAPSED_ROOT: &str = "agp";

/// Flat aggregate for one span, with display-ready quantiles.
#[derive(Clone, Debug)]
pub struct SpanAgg {
    /// The span this row aggregates.
    pub span: Span,
    /// Frames exited.
    pub count: u64,
    /// Outermost-activation wall time.
    pub incl_ns: u64,
    /// Self time (elapsed minus direct children).
    pub excl_ns: u64,
    /// Sum of per-frame elapsed time (histogram `_sum`).
    pub sum_ns: u64,
    /// Largest single frame.
    pub max_ns: u64,
    /// Per-frame elapsed-time histogram (power-of-two ns buckets).
    pub hist: NsHistogram,
}

impl SpanAgg {
    /// Median per-frame latency (power-of-two upper bound).
    pub fn p50_ns(&self) -> u64 {
        self.hist.quantile_upper(0.50)
    }

    /// Tail per-frame latency (power-of-two upper bound).
    pub fn p99_ns(&self) -> u64 {
        self.hist.quantile_upper(0.99)
    }
}

/// Exclusive-time aggregate for one call stack.
#[derive(Clone, Debug)]
pub struct PathAgg {
    /// Root-first span names.
    pub stack: Vec<&'static str>,
    /// Frames exited with exactly this stack.
    pub count: u64,
    /// Exclusive time accrued with exactly this stack.
    pub self_ns: u64,
}

impl PathAgg {
    /// `agp;sim.run;...` — the collapsed-stack frame string.
    pub fn collapsed_key(&self) -> String {
        let mut s = String::from(COLLAPSED_ROOT);
        for name in &self.stack {
            s.push(';');
            s.push_str(name);
        }
        s
    }
}

/// Throughput gauges derived from run totals; all rates use measured
/// host wall time as the denominator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Derived {
    /// Simulator events handled.
    pub events: u64,
    /// Page faults serviced.
    pub faults: u64,
    /// Simulated microseconds advanced.
    pub sim_us: u64,
    /// Measured host wall time for the run.
    pub wall_ns: u64,
}

impl Derived {
    fn per_sec(n: u64, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            0.0
        } else {
            n as f64 * 1e9 / wall_ns as f64
        }
    }

    /// Simulator events handled per host second.
    pub fn events_per_sec(&self) -> f64 {
        Self::per_sec(self.events, self.wall_ns)
    }

    /// Page faults serviced per host second.
    pub fn faults_per_sec(&self) -> f64 {
        Self::per_sec(self.faults, self.wall_ns)
    }

    /// Simulated microseconds advanced per host millisecond.
    pub fn sim_us_per_wall_ms(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.sim_us as f64 * 1e6 / self.wall_ns as f64
        }
    }
}

/// A frozen profiling session.
#[derive(Clone, Debug, Default)]
pub struct PerfReport {
    /// Spans with at least one exit, in registry order.
    pub spans: Vec<SpanAgg>,
    /// Stack paths in lexicographic (id-sequence) order.
    pub paths: Vec<PathAgg>,
    /// Enter/exit mismatches observed (0 on a healthy run).
    pub unbalanced_exits: u64,
    /// Throughput gauges, when the caller supplied run totals.
    pub derived: Option<Derived>,
}

impl PerfReport {
    /// Snapshot a recorder. The recorder should be fully unwound
    /// (`depth() == 0`); open frames are simply not included.
    pub fn from_recorder(rec: &Recorder) -> Self {
        let spans = rec
            .stats()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count > 0)
            .map(|(id, s)| SpanAgg {
                // agp-lint: allow(panic-site): stats is indexed by the registry
                span: Span::from_id(id).expect("stats indexed by registry"),
                count: s.count,
                incl_ns: s.incl_ns,
                excl_ns: s.excl_ns,
                sum_ns: s.sum_ns,
                max_ns: s.max_ns,
                hist: s.hist.clone(),
            })
            .collect();
        let paths = rec
            .paths()
            .iter()
            .map(|(ids, p)| PathAgg {
                stack: ids
                    .iter()
                    .map(|&id| {
                        Span::from_id(id as usize)
                            // agp-lint: allow(panic-site): recorder paths only hold registry ids
                            .expect("path ids come from the registry")
                            .name()
                    })
                    .collect(),
                count: p.count,
                self_ns: p.self_ns,
            })
            .collect();
        PerfReport {
            spans,
            paths,
            unbalanced_exits: rec.unbalanced_exits,
            derived: None,
        }
    }

    /// Sum of exclusive time over every span — equals the root span's
    /// inclusive time on a balanced single-root session.
    pub fn total_self_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.excl_ns).sum()
    }

    /// Rows sorted hottest-first by exclusive time (ties: registry order).
    pub fn by_self_time(&self) -> Vec<&SpanAgg> {
        let mut rows: Vec<&SpanAgg> = self.spans.iter().collect();
        rows.sort_by(|a, b| {
            b.excl_ns
                .cmp(&a.excl_ns)
                .then_with(|| a.span.id().cmp(&b.span.id()))
        });
        rows
    }

    /// Collapsed-stack export for flamegraph tooling, one
    /// `agp;span;...;span <weight>` line per stack path. Weights are
    /// exclusive nanoseconds, so frame widths tile exactly.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            out.push_str(&p.collapsed_key());
            out.push(' ');
            out.push_str(&p.self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Deterministic JSON encoding (the `agp perf --json` payload).
    pub fn to_json_string(&self) -> String {
        let mut s = String::from("{\n  \"schema_version\": 1,\n");
        push_kv_u64(&mut s, 1, "total_self_ns", self.total_self_ns(), true);
        push_kv_u64(&mut s, 1, "unbalanced_exits", self.unbalanced_exits, true);
        if let Some(d) = &self.derived {
            s.push_str("  \"derived\": {\n");
            push_kv_u64(&mut s, 2, "events", d.events, true);
            push_kv_u64(&mut s, 2, "faults", d.faults, true);
            push_kv_u64(&mut s, 2, "sim_us", d.sim_us, true);
            push_kv_u64(&mut s, 2, "wall_ns", d.wall_ns, true);
            push_kv_f64(&mut s, 2, "events_per_sec", d.events_per_sec(), true);
            push_kv_f64(&mut s, 2, "faults_per_sec", d.faults_per_sec(), true);
            push_kv_f64(
                &mut s,
                2,
                "sim_us_per_wall_ms",
                d.sim_us_per_wall_ms(),
                false,
            );
            s.push_str("  },\n");
        }
        s.push_str("  \"spans\": [\n");
        for (i, a) in self.spans.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"span\": \"{}\", ", a.span.name()));
            s.push_str(&format!("\"count\": {}, ", a.count));
            s.push_str(&format!("\"incl_ns\": {}, ", a.incl_ns));
            s.push_str(&format!("\"excl_ns\": {}, ", a.excl_ns));
            s.push_str(&format!("\"max_ns\": {}, ", a.max_ns));
            s.push_str(&format!("\"p50_ns\": {}, ", a.p50_ns()));
            s.push_str(&format!("\"p99_ns\": {}}}", a.p99_ns()));
            s.push_str(if i + 1 < self.spans.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"paths\": [\n");
        for (i, p) in self.paths.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"stack\": \"{}\", ", p.collapsed_key()));
            s.push_str(&format!("\"count\": {}, ", p.count));
            s.push_str(&format!("\"self_ns\": {}}}", p.self_ns));
            s.push_str(if i + 1 < self.paths.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn push_kv_u64(s: &mut String, indent: usize, key: &str, v: u64, comma: bool) {
    for _ in 0..indent {
        s.push_str("  ");
    }
    s.push_str(&format!("\"{key}\": {v}"));
    s.push_str(if comma { ",\n" } else { "\n" });
}

fn push_kv_f64(s: &mut String, indent: usize, key: &str, v: f64, comma: bool) {
    for _ in 0..indent {
        s.push_str("  ");
    }
    s.push_str(&format!("\"{key}\": {v:.3}"));
    s.push_str(if comma { ",\n" } else { "\n" });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.enter(Span::Run, 0);
        r.enter(Span::SimDispatch, 100);
        r.enter(Span::MemTouch, 200);
        r.exit(1_200);
        r.exit(2_000);
        r.enter(Span::SimSample, 2_500);
        r.exit(2_600);
        r.exit(10_000);
        r
    }

    #[test]
    fn report_snapshot_preserves_tiling() {
        let rec = sample_recorder();
        let rep = PerfReport::from_recorder(&rec);
        assert_eq!(rep.spans.len(), 4);
        assert_eq!(rep.total_self_ns(), rec.stat(Span::Run).incl_ns);
        let hottest = rep.by_self_time()[0];
        assert_eq!(hottest.span, Span::Run);
    }

    #[test]
    fn collapsed_lines_are_semicolon_stacks_with_ns_weights() {
        let rep = PerfReport::from_recorder(&sample_recorder());
        let collapsed = rep.collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert!(lines.contains(&"agp;sim.run;sim.dispatch;mem.touch_run 1000"));
        assert!(lines.contains(&"agp;sim.run;sim.dispatch 900"));
        assert!(lines.contains(&"agp;sim.run;sim.sample 100"));
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, rep.total_self_ns());
    }

    #[test]
    fn json_is_deterministic_and_carries_derived_gauges() {
        let mut rep = PerfReport::from_recorder(&sample_recorder());
        rep.derived = Some(Derived {
            events: 3,
            faults: 1,
            sim_us: 50,
            wall_ns: 10_000,
        });
        let a = rep.to_json_string();
        let b = rep.to_json_string();
        assert_eq!(a, b);
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"events_per_sec\": 300000.000"));
        assert!(a.contains("\"sim_us_per_wall_ms\": 5000.000"));
        assert!(a.contains("\"span\": \"sim.run\""));
        assert!(a.contains("\"stack\": \"agp;sim.run;sim.dispatch;mem.touch_run\""));
    }

    #[test]
    fn derived_rates_handle_zero_wall() {
        let d = Derived::default();
        assert_eq!(d.events_per_sec(), 0.0);
        assert_eq!(d.faults_per_sec(), 0.0);
        assert_eq!(d.sim_us_per_wall_ms(), 0.0);
    }
}
