//! The explicit-clock aggregation core.
//!
//! [`Recorder`] knows nothing about real time: callers pass monotonic
//! nanosecond timestamps into [`Recorder::enter`] / [`Recorder::exit`].
//! That makes the whole accounting model — inclusive vs. exclusive
//! attribution, recursion handling, stack-path self time — unit- and
//! property-testable with synthetic clocks, while the thin process-global
//! layer in `lib.rs` is the only place that reads `Instant::now`.
//!
//! Accounting model:
//!
//! * **Inclusive** time of a span is wall time with at least one
//!   activation of that span on the stack. Re-entrant activations do not
//!   double-count: only the outermost activation adds to `incl_ns`.
//! * **Exclusive** (self) time of a frame is its elapsed time minus the
//!   elapsed time of its direct children. Every nanosecond inside the
//!   root frame is exclusive to exactly one frame, so
//!   `Σ excl_ns over all spans == incl_ns of the root span` — the tiling
//!   invariant the `agp perf` table and its property test rely on.
//! * **Paths** aggregate exclusive time per call stack (sequence of span
//!   ids from the root), which is exactly the collapsed-stack format
//!   flamegraph tools consume.

use crate::span::{Span, SPAN_COUNT};
use std::collections::BTreeMap;

/// Power-of-two nanosecond latency histogram.
///
/// Bucket 0 counts zero-duration observations; bucket `i >= 1` counts
/// durations in `[2^(i-1), 2^i)` ns. 64 value buckets plus the zero
/// bucket cover the full `u64` range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NsHistogram {
    buckets: [u64; Self::BUCKETS],
}

impl NsHistogram {
    /// Number of buckets (zero bucket + one per power of two).
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Self {
        NsHistogram {
            buckets: [0; Self::BUCKETS],
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros()) as usize
        }
    }

    /// Record one observation.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts (index = power-of-two bucket).
    pub fn buckets(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i` in ns (0 for the zero bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Upper bound of the bucket holding quantile `q` in `[0, 1]`.
    ///
    /// Coarse by construction (a power of two), which is all the hot-span
    /// table needs; returns 0 on an empty histogram.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(Self::BUCKETS - 1)
    }
}

impl Default for NsHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Flat per-span aggregate.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Number of frames exited for this span.
    pub count: u64,
    /// Outermost-activation wall time (see module docs).
    pub incl_ns: u64,
    /// Self time: elapsed minus direct children's elapsed.
    pub excl_ns: u64,
    /// Sum of per-frame elapsed time (every activation, including
    /// re-entrant ones; the histogram's `_sum`).
    pub sum_ns: u64,
    /// Largest single-frame elapsed time.
    pub max_ns: u64,
    /// Per-frame elapsed-time distribution.
    pub hist: NsHistogram,
}

impl SpanStat {
    fn new() -> Self {
        SpanStat {
            count: 0,
            incl_ns: 0,
            excl_ns: 0,
            sum_ns: 0,
            max_ns: 0,
            hist: NsHistogram::new(),
        }
    }
}

/// Exclusive-time aggregate for one call stack (root-first span ids).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Frames exited with exactly this stack.
    pub count: u64,
    /// Exclusive time accrued with exactly this stack.
    pub self_ns: u64,
}

struct Frame {
    span: Span,
    start_ns: u64,
    child_ns: u64,
}

/// Span-stack aggregator driven by an explicit monotonic clock.
pub struct Recorder {
    stats: Vec<SpanStat>,
    /// Open frames, root first.
    stack: Vec<Frame>,
    /// Span ids of `stack`, kept in lockstep so path keys are one slice copy.
    stack_ids: Vec<u16>,
    /// Activation depth per span, for re-entrancy-safe inclusive time.
    active: [u32; SPAN_COUNT],
    paths: BTreeMap<Vec<u16>, PathStat>,
    /// Exits observed with an empty stack (always a caller bug; kept
    /// visible instead of panicking in release runs).
    pub unbalanced_exits: u64,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder {
            stats: (0..SPAN_COUNT).map(|_| SpanStat::new()).collect(),
            stack: Vec::with_capacity(16),
            stack_ids: Vec::with_capacity(16),
            active: [0; SPAN_COUNT],
            paths: BTreeMap::new(),
            unbalanced_exits: 0,
        }
    }

    /// Open a frame for `span` at monotonic time `now_ns`.
    pub fn enter(&mut self, span: Span, now_ns: u64) {
        self.active[span.id()] += 1;
        self.stack_ids.push(span as u16);
        self.stack.push(Frame {
            span,
            start_ns: now_ns,
            child_ns: 0,
        });
    }

    /// Close the innermost frame at monotonic time `now_ns`.
    pub fn exit(&mut self, now_ns: u64) {
        let Some(frame) = self.stack.pop() else {
            self.unbalanced_exits += 1;
            return;
        };
        let el = now_ns.saturating_sub(frame.start_ns);
        let excl = el.saturating_sub(frame.child_ns);
        let id = frame.span.id();

        let path = self.paths.entry(self.stack_ids.clone()).or_default();
        path.count += 1;
        path.self_ns += excl;
        self.stack_ids.pop();

        let stat = &mut self.stats[id];
        stat.count += 1;
        stat.excl_ns += excl;
        stat.sum_ns += el;
        stat.max_ns = stat.max_ns.max(el);
        stat.hist.record(el);
        self.active[id] -= 1;
        if self.active[id] == 0 {
            stat.incl_ns += el;
        }
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += el;
        }
    }

    /// Current stack depth (open frames).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The flat aggregate for one span.
    pub fn stat(&self, span: Span) -> &SpanStat {
        &self.stats[span.id()]
    }

    /// All flat aggregates, indexed by span id.
    pub fn stats(&self) -> &[SpanStat] {
        &self.stats
    }

    /// Exclusive-time aggregates keyed by root-first stack paths.
    pub fn paths(&self) -> &BTreeMap<Vec<u16>, PathStat> {
        &self.paths
    }

    /// Sum of exclusive time over every span.
    ///
    /// With balanced frames and a single root this equals the root span's
    /// inclusive time exactly (the tiling invariant).
    pub fn total_self_ns(&self) -> u64 {
        self.stats.iter().map(|s| s.excl_ns).sum()
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.count == 0) && self.stack.is_empty()
    }

    /// Fold another recorder's *completed* frames into this one (open
    /// frames on `other`, if any, are not transferable and are ignored).
    /// Used to merge per-thread recorders into a process aggregate when
    /// simulations run on worker threads.
    pub fn merge_from(&mut self, other: &Recorder) {
        for (id, o) in other.stats.iter().enumerate() {
            let s = &mut self.stats[id];
            s.count += o.count;
            s.incl_ns += o.incl_ns;
            s.excl_ns += o.excl_ns;
            s.sum_ns += o.sum_ns;
            s.max_ns = s.max_ns.max(o.max_ns);
            for (b, &c) in o.hist.buckets.iter().enumerate() {
                s.hist.buckets[b] += c;
            }
        }
        for (k, p) in &other.paths {
            let slot = self.paths.entry(k.clone()).or_default();
            slot.count += p.count;
            slot.self_ns += p.self_ns;
        }
        self.unbalanced_exits += other.unbalanced_exits;
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = NsHistogram::new();
        for ns in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(ns);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // [1,2)
        assert_eq!(h.buckets()[2], 2); // [2,4): 2, 3
        assert_eq!(h.buckets()[3], 2); // [4,8): 4, 7
        assert_eq!(h.buckets()[4], 1); // [8,16): 8
        assert_eq!(h.buckets()[10], 1); // [512,1024): 1023
        assert_eq!(h.buckets()[11], 1); // [1024,2048): 1024
        assert_eq!(h.buckets()[64], 1); // top bucket: u64::MAX
    }

    #[test]
    fn histogram_quantiles_return_bucket_upper_bounds() {
        let mut h = NsHistogram::new();
        assert_eq!(h.quantile_upper(0.5), 0);
        for _ in 0..99 {
            h.record(3); // bucket 2, upper bound 4
        }
        h.record(1_000_000); // bucket 20, upper bound 1 << 20
        assert_eq!(h.quantile_upper(0.5), 4);
        assert_eq!(h.quantile_upper(0.99), 4);
        assert_eq!(h.quantile_upper(1.0), 1 << 20);
    }

    #[test]
    fn exclusive_time_subtracts_direct_children() {
        let mut r = Recorder::new();
        r.enter(Span::Run, 0);
        r.enter(Span::SimDispatch, 10);
        r.enter(Span::MemTouch, 20);
        r.exit(30); // mem.touch: 10 incl, 10 excl
        r.exit(50); // sim.dispatch: 40 incl, 30 excl
        r.exit(100); // sim.run: 100 incl, 60 excl

        assert_eq!(r.stat(Span::MemTouch).incl_ns, 10);
        assert_eq!(r.stat(Span::MemTouch).excl_ns, 10);
        assert_eq!(r.stat(Span::SimDispatch).incl_ns, 40);
        assert_eq!(r.stat(Span::SimDispatch).excl_ns, 30);
        assert_eq!(r.stat(Span::Run).incl_ns, 100);
        assert_eq!(r.stat(Span::Run).excl_ns, 60);
        assert_eq!(r.total_self_ns(), r.stat(Span::Run).incl_ns);
        assert_eq!(r.depth(), 0);
        assert_eq!(r.unbalanced_exits, 0);
    }

    #[test]
    fn reentrant_spans_count_inclusive_once() {
        let mut r = Recorder::new();
        r.enter(Span::Run, 0);
        r.enter(Span::MemFault, 0);
        r.enter(Span::MemFault, 10); // recursive activation
        r.exit(20);
        r.exit(40);
        r.exit(40);
        let s = r.stat(Span::MemFault);
        assert_eq!(s.count, 2);
        // Only the outer activation contributes inclusive time.
        assert_eq!(s.incl_ns, 40);
        // Exclusive still tiles: inner 10 + outer (40 - 10) = 40.
        assert_eq!(s.excl_ns, 40);
        assert_eq!(r.total_self_ns(), r.stat(Span::Run).incl_ns);
    }

    #[test]
    fn paths_aggregate_self_time_per_stack() {
        let mut r = Recorder::new();
        r.enter(Span::Run, 0);
        for i in 0..3u64 {
            r.enter(Span::SimDispatch, 100 * i);
            r.enter(Span::MemTouch, 100 * i + 10);
            r.exit(100 * i + 30);
            r.exit(100 * i + 50);
        }
        r.exit(1000);

        let key_touch = vec![
            Span::Run as u16,
            Span::SimDispatch as u16,
            Span::MemTouch as u16,
        ];
        let key_dispatch = vec![Span::Run as u16, Span::SimDispatch as u16];
        let touch = r.paths()[&key_touch];
        assert_eq!(touch.count, 3);
        assert_eq!(touch.self_ns, 60);
        let dispatch = r.paths()[&key_dispatch];
        assert_eq!(dispatch.count, 3);
        assert_eq!(dispatch.self_ns, 3 * (50 - 20));
        // Path self times tile too.
        let path_total: u64 = r.paths().values().map(|p| p.self_ns).sum();
        assert_eq!(path_total, r.stat(Span::Run).incl_ns);
    }

    #[test]
    fn unbalanced_exit_is_counted_not_fatal() {
        let mut r = Recorder::new();
        r.exit(5);
        assert_eq!(r.unbalanced_exits, 1);
        assert!(r.is_empty() || r.unbalanced_exits == 1);
    }
}
