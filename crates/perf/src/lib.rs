//! `agp-perf`: host-performance self-profiler for the simulator.
//!
//! The paging simulator is measured on two clocks. *Simulated* time is
//! the deterministic event-queue clock that every figure and parity
//! manifest is built on. *Host* time is how long the simulator itself
//! takes to produce them — the thing the ROADMAP's speed campaign needs
//! to see and the wall-clock regression gate needs to pin. This crate
//! owns the host clock.
//!
//! Design:
//!
//! * A **static span registry** ([`Span`]) names every instrumented hot
//!   path with a dense id; see `span.rs` for the taxonomy.
//! * An explicit-clock **[`Recorder`]** does all accounting (inclusive /
//!   exclusive / histogram / stack paths) and is testable without any
//!   real clock; see `recorder.rs`.
//! * This module adds the thin process-global layer: a runtime on/off
//!   gate, a thread-local recorder, and the RAII [`scope`] guard the
//!   instrumented crates call.
//!
//! Determinism contract: profiling is **off by default**, and nothing a
//! guard measures ever feeds back into simulation state — with spans
//! enabled, ObsEvent traces are byte-identical to profiler-off runs
//! (pinned by tests here and at the workspace root). The disabled path
//! is one relaxed atomic load and a branch, cheap enough to leave the
//! guards compiled into release builds unconditionally.
//!
//! This crate is the sanctioned home of `Instant::now` in the workspace;
//! `agp-lint` rejects the wall-clock allowance anywhere else (outside
//! the documented CLI/bench sites).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prom;
pub mod recorder;
pub mod report;
pub mod span;

pub use prom::render_prometheus;
pub use recorder::{NsHistogram, PathStat, Recorder, SpanStat};
pub use report::{Derived, PathAgg, PerfReport, SpanAgg, COLLAPSED_ROOT};
pub use span::{Span, ALL_SPANS, SPAN_COUNT};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-wide gate. Off by default; flipped by [`enable`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic epoch all timestamps are relative to, pinned on first use
/// so nanosecond deltas fit comfortably in `u64`.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
}

/// Process-wide aggregate that per-thread recorders fold into via
/// [`flush`]. Simulations may run on worker threads (the experiment
/// runners fan configurations out one thread each), so the thread that
/// calls [`take_report`] is not necessarily the thread that recorded.
static GLOBAL: OnceLock<Mutex<Recorder>> = OnceLock::new();

fn global() -> &'static Mutex<Recorder> {
    GLOBAL.get_or_init(|| Mutex::new(Recorder::new()))
}

#[inline]
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Turn profiling on or off for the whole process.
///
/// Recorders are thread-local: enable before the run, then call
/// [`take_report`] on the same thread that did the work.
pub fn enable(on: bool) {
    if on {
        // Pin the epoch outside any measured region.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Release);
}

/// Whether profiling is currently enabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII span guard returned by [`scope`]; records the exit on drop.
///
/// A guard armed while profiling was on records its exit even if
/// profiling is disabled before it drops, so frames always balance.
#[must_use = "the span ends when this guard drops"]
pub struct ScopeGuard {
    armed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.armed {
            let t = now_ns();
            RECORDER.with(|r| r.borrow_mut().exit(t));
        }
    }
}

/// Open a profiling span on the current thread.
///
/// When profiling is disabled this is one relaxed atomic load and a
/// branch (the guard drops as a no-op) — the cost pinned by the
/// `perf_overhead` Criterion bench.
#[inline]
pub fn scope(span: Span) -> ScopeGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return ScopeGuard { armed: false };
    }
    let t = now_ns();
    RECORDER.with(|r| r.borrow_mut().enter(span, t));
    ScopeGuard { armed: true }
}

/// Fold the current thread's recorder into the process aggregate and
/// reset it. The instrumented simulator calls this as its root span
/// unwinds, so work done on worker threads is not lost; a no-op when
/// this thread recorded nothing.
pub fn flush() {
    RECORDER.with(|r| {
        let mut rec = r.borrow_mut();
        if rec.is_empty() {
            return;
        }
        let local = std::mem::take(&mut *rec);
        match global().lock() {
            Ok(mut g) => g.merge_from(&local),
            Err(poisoned) => poisoned.into_inner().merge_from(&local),
        }
    });
}

/// Snapshot and reset the process aggregate (flushing the calling
/// thread's recorder first).
///
/// Open frames (guards not yet dropped) are discarded, so call this only
/// after the instrumented region has fully unwound.
pub fn take_report() -> PerfReport {
    flush();
    let mut g = match global().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let rep = PerfReport::from_recorder(&g);
    *g = Recorder::new();
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `ENABLED` is process-global while recorders are thread-local, so
    /// tests that flip the gate must not interleave.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_scope_records_nothing() {
        let _g = GATE.lock().unwrap();
        enable(false);
        let _ = take_report(); // clear anything a prior test left behind
        {
            let _s = scope(Span::SimDispatch);
        }
        let rep = take_report();
        assert!(rep.spans.is_empty());
        assert_eq!(rep.unbalanced_exits, 0);
    }

    #[test]
    fn enabled_scopes_aggregate_and_reset_on_take() {
        let _g = GATE.lock().unwrap();
        enable(true);
        let _ = take_report();
        {
            let _run = scope(Span::Run);
            for _ in 0..4 {
                let _d = scope(Span::SimDispatch);
            }
        }
        enable(false);
        let rep = take_report();
        let dispatch = rep
            .spans
            .iter()
            .find(|a| a.span == Span::SimDispatch)
            .expect("dispatch span recorded");
        assert_eq!(dispatch.count, 4);
        let run = rep.spans.iter().find(|a| a.span == Span::Run).unwrap();
        assert_eq!(run.count, 1);
        assert!(run.incl_ns >= dispatch.incl_ns);
        assert_eq!(rep.total_self_ns(), run.incl_ns);
        // take_report reset the recorder.
        assert!(take_report().spans.is_empty());
    }

    #[test]
    fn worker_thread_samples_survive_via_flush() {
        let _g = GATE.lock().unwrap();
        enable(true);
        let _ = take_report();
        std::thread::spawn(|| {
            {
                let _s = scope(Span::Run);
            }
            flush();
        })
        .join()
        .unwrap();
        enable(false);
        let rep = take_report();
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].span, Span::Run);
    }

    #[test]
    fn guard_armed_before_disable_still_balances() {
        let _g = GATE.lock().unwrap();
        enable(true);
        let _ = take_report();
        {
            let _s = scope(Span::Run);
            enable(false);
        }
        let rep = take_report();
        assert_eq!(rep.unbalanced_exits, 0);
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].count, 1);
    }
}
