//! The static span registry.
//!
//! Every instrumented hot path in the workspace is named here, once, so
//! that span ids are dense `usize` indices (per-span aggregation is an
//! array lookup, not a map probe) and every surface — the `agp perf`
//! table, collapsed stacks, the Prometheus exposition, the BENCH
//! manifest — agrees on the taxonomy.
//!
//! Naming convention: `<layer>.<operation>`, where the layer matches the
//! crate doing the work (`sim` = the cluster event loop, `mem` = the
//! kernel/paging engine, `disk`/`net` = device models, `obs` = event
//! emission). [`Span::Run`] is the root: it encloses one complete
//! [`ClusterSim::run`] and is what per-span exclusive times tile against.

/// One instrumented code region. The discriminant is the dense span id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum Span {
    /// The whole simulation run (root span; encloses the event loop).
    Run = 0,
    /// `Event::Dispatch` handling: process execution until block/yield.
    SimDispatch = 1,
    /// `Event::IoDone` handling: fault-I/O completion wakeups.
    SimIoDone = 2,
    /// `Event::QuantumExpire` handling: gang-scheduler rotation decisions.
    SimQuantum = 3,
    /// `Event::BarrierRelease` / `Event::BarrierRetry` handling.
    SimBarrier = 4,
    /// `Event::BgStart` / `Event::BgTick` handling: background writing.
    SimBgWrite = 5,
    /// `Event::Chaos` handling: timed fault application.
    SimChaos = 6,
    /// `Event::Sample` handling: telemetry gauge sampling.
    SimSample = 7,
    /// One coordinated gang switch (`do_switch`), whatever triggered it.
    SimSwitch = 8,
    /// `Kernel::touch_run`: page-table walk + reference bookkeeping.
    MemTouch = 9,
    /// `PagingEngine::on_fault`: fault service planning (eviction,
    /// readahead, replay).
    MemFault = 10,
    /// `PagingEngine::adaptive_page_out` at the switch boundary.
    MemPageOut = 11,
    /// `PagingEngine::adaptive_page_in` at the switch boundary.
    MemPageIn = 12,
    /// `PagingEngine::free_pages`: explicit reclaim (memory pressure).
    MemReclaim = 13,
    /// `PagingEngine::bgwrite_tick`: background-writer burst planning.
    MemBgTick = 14,
    /// `Disk::submit` (and its slowed/failing variants): extent pricing.
    DiskSubmit = 15,
    /// `Barrier::arrive`: barrier bookkeeping + skew computation.
    NetBarrier = 16,
    /// `ObsLink` delivery: constructing + fanning out one `ObsEvent`.
    ObsEmit = 17,
}

/// Number of registered spans (array-aggregate size).
pub const SPAN_COUNT: usize = 18;

/// Every span, in id order.
pub const ALL_SPANS: [Span; SPAN_COUNT] = [
    Span::Run,
    Span::SimDispatch,
    Span::SimIoDone,
    Span::SimQuantum,
    Span::SimBarrier,
    Span::SimBgWrite,
    Span::SimChaos,
    Span::SimSample,
    Span::SimSwitch,
    Span::MemTouch,
    Span::MemFault,
    Span::MemPageOut,
    Span::MemPageIn,
    Span::MemReclaim,
    Span::MemBgTick,
    Span::DiskSubmit,
    Span::NetBarrier,
    Span::ObsEmit,
];

impl Span {
    /// The dense id (index into per-span aggregate arrays).
    #[inline]
    pub fn id(self) -> usize {
        self as usize
    }

    /// The stable dotted name used by every exposition surface.
    pub fn name(self) -> &'static str {
        match self {
            Span::Run => "sim.run",
            Span::SimDispatch => "sim.dispatch",
            Span::SimIoDone => "sim.io_done",
            Span::SimQuantum => "sim.quantum",
            Span::SimBarrier => "sim.barrier",
            Span::SimBgWrite => "sim.bg_write",
            Span::SimChaos => "sim.chaos",
            Span::SimSample => "sim.sample",
            Span::SimSwitch => "sim.switch",
            Span::MemTouch => "mem.touch_run",
            Span::MemFault => "mem.fault",
            Span::MemPageOut => "mem.page_out",
            Span::MemPageIn => "mem.page_in",
            Span::MemReclaim => "mem.reclaim",
            Span::MemBgTick => "mem.bg_tick",
            Span::DiskSubmit => "disk.submit",
            Span::NetBarrier => "net.barrier",
            Span::ObsEmit => "obs.emit",
        }
    }

    /// Look a span up by dense id.
    pub fn from_id(id: usize) -> Option<Span> {
        ALL_SPANS.get(id).copied()
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_dense_and_named_uniquely() {
        let mut names = Vec::new();
        for (i, s) in ALL_SPANS.iter().enumerate() {
            assert_eq!(s.id(), i, "span {s} has a non-dense id");
            assert_eq!(Span::from_id(i), Some(*s));
            names.push(s.name());
        }
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate span names");
        assert_eq!(Span::from_id(SPAN_COUNT), None);
    }

    #[test]
    fn names_follow_the_layer_dot_op_convention() {
        for s in ALL_SPANS {
            let name = s.name();
            assert!(
                name.split('.').count() == 2
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "bad span name {name}"
            );
        }
    }
}
