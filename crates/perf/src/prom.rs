//! Prometheus text exposition (version 0.0.4) of a [`PerfReport`].
//!
//! This is the module a future `agp serve` mounts at `/metrics`; today
//! the CLI writes it to a file via `agp perf --prometheus`. Output is
//! fully deterministic for a given report: metric families in a fixed
//! order, span label values in registry order, histogram buckets in
//! ascending `le` order.

use crate::recorder::NsHistogram;
use crate::report::PerfReport;

fn push_family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Render the report as Prometheus text exposition format.
pub fn render_prometheus(report: &PerfReport) -> String {
    let mut out = String::new();

    push_family(
        &mut out,
        "agp_perf_span_calls_total",
        "Frames exited per instrumented span.",
        "counter",
    );
    for a in &report.spans {
        out.push_str(&format!(
            "agp_perf_span_calls_total{{span=\"{}\"}} {}\n",
            a.span.name(),
            a.count
        ));
    }

    push_family(
        &mut out,
        "agp_perf_span_self_ns_total",
        "Exclusive (self) wall nanoseconds per span.",
        "counter",
    );
    for a in &report.spans {
        out.push_str(&format!(
            "agp_perf_span_self_ns_total{{span=\"{}\"}} {}\n",
            a.span.name(),
            a.excl_ns
        ));
    }

    push_family(
        &mut out,
        "agp_perf_span_ns_total",
        "Inclusive wall nanoseconds per span (outermost activations).",
        "counter",
    );
    for a in &report.spans {
        out.push_str(&format!(
            "agp_perf_span_ns_total{{span=\"{}\"}} {}\n",
            a.span.name(),
            a.incl_ns
        ));
    }

    push_family(
        &mut out,
        "agp_perf_span_latency_ns",
        "Per-frame wall-ns latency, power-of-two buckets.",
        "histogram",
    );
    for a in &report.spans {
        let span = a.span.name();
        let buckets = a.hist.buckets();
        let top = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &c) in buckets.iter().enumerate().take(top + 1) {
            cum += c;
            out.push_str(&format!(
                "agp_perf_span_latency_ns_bucket{{span=\"{span}\",le=\"{}\"}} {cum}\n",
                NsHistogram::bucket_upper(i)
            ));
        }
        out.push_str(&format!(
            "agp_perf_span_latency_ns_bucket{{span=\"{span}\",le=\"+Inf\"}} {}\n",
            a.count
        ));
        out.push_str(&format!(
            "agp_perf_span_latency_ns_sum{{span=\"{span}\"}} {}\n",
            a.sum_ns
        ));
        out.push_str(&format!(
            "agp_perf_span_latency_ns_count{{span=\"{span}\"}} {}\n",
            a.count
        ));
    }

    if let Some(d) = &report.derived {
        push_family(
            &mut out,
            "agp_perf_events_per_sec",
            "Simulator events handled per host second.",
            "gauge",
        );
        out.push_str(&format!(
            "agp_perf_events_per_sec {:.3}\n",
            d.events_per_sec()
        ));
        push_family(
            &mut out,
            "agp_perf_faults_per_sec",
            "Page faults serviced per host second.",
            "gauge",
        );
        out.push_str(&format!(
            "agp_perf_faults_per_sec {:.3}\n",
            d.faults_per_sec()
        ));
        push_family(
            &mut out,
            "agp_perf_sim_us_per_wall_ms",
            "Simulated microseconds advanced per host millisecond.",
            "gauge",
        );
        out.push_str(&format!(
            "agp_perf_sim_us_per_wall_ms {:.3}\n",
            d.sim_us_per_wall_ms()
        ));
    }

    push_family(
        &mut out,
        "agp_perf_unbalanced_exits_total",
        "Span guard enter/exit mismatches (0 on a healthy run).",
        "counter",
    );
    out.push_str(&format!(
        "agp_perf_unbalanced_exits_total {}\n",
        report.unbalanced_exits
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::report::{Derived, PerfReport};
    use crate::span::Span;

    /// Golden exposition for a fixed synthetic session: any formatting
    /// change must be deliberate and show up in this diff.
    #[test]
    fn golden_exposition() {
        let mut r = Recorder::new();
        r.enter(Span::Run, 0);
        r.enter(Span::MemTouch, 100);
        r.exit(103); // 3 ns -> bucket [2,4)
        r.enter(Span::MemTouch, 200);
        r.exit(209); // 9 ns -> bucket [8,16)
        r.exit(1_000);
        let mut rep = PerfReport::from_recorder(&r);
        rep.derived = Some(Derived {
            events: 2,
            faults: 2,
            sim_us: 10,
            wall_ns: 1_000,
        });

        let got = render_prometheus(&rep);
        let want = "\
# HELP agp_perf_span_calls_total Frames exited per instrumented span.
# TYPE agp_perf_span_calls_total counter
agp_perf_span_calls_total{span=\"sim.run\"} 1
agp_perf_span_calls_total{span=\"mem.touch_run\"} 2
# HELP agp_perf_span_self_ns_total Exclusive (self) wall nanoseconds per span.
# TYPE agp_perf_span_self_ns_total counter
agp_perf_span_self_ns_total{span=\"sim.run\"} 988
agp_perf_span_self_ns_total{span=\"mem.touch_run\"} 12
# HELP agp_perf_span_ns_total Inclusive wall nanoseconds per span (outermost activations).
# TYPE agp_perf_span_ns_total counter
agp_perf_span_ns_total{span=\"sim.run\"} 1000
agp_perf_span_ns_total{span=\"mem.touch_run\"} 12
# HELP agp_perf_span_latency_ns Per-frame wall-ns latency, power-of-two buckets.
# TYPE agp_perf_span_latency_ns histogram
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"0\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"2\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"4\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"8\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"16\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"32\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"64\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"128\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"256\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"512\"} 0
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"1024\"} 1
agp_perf_span_latency_ns_bucket{span=\"sim.run\",le=\"+Inf\"} 1
agp_perf_span_latency_ns_sum{span=\"sim.run\"} 1000
agp_perf_span_latency_ns_count{span=\"sim.run\"} 1
agp_perf_span_latency_ns_bucket{span=\"mem.touch_run\",le=\"0\"} 0
agp_perf_span_latency_ns_bucket{span=\"mem.touch_run\",le=\"2\"} 0
agp_perf_span_latency_ns_bucket{span=\"mem.touch_run\",le=\"4\"} 1
agp_perf_span_latency_ns_bucket{span=\"mem.touch_run\",le=\"8\"} 1
agp_perf_span_latency_ns_bucket{span=\"mem.touch_run\",le=\"16\"} 2
agp_perf_span_latency_ns_bucket{span=\"mem.touch_run\",le=\"+Inf\"} 2
agp_perf_span_latency_ns_sum{span=\"mem.touch_run\"} 12
agp_perf_span_latency_ns_count{span=\"mem.touch_run\"} 2
# HELP agp_perf_events_per_sec Simulator events handled per host second.
# TYPE agp_perf_events_per_sec gauge
agp_perf_events_per_sec 2000000.000
# HELP agp_perf_faults_per_sec Page faults serviced per host second.
# TYPE agp_perf_faults_per_sec gauge
agp_perf_faults_per_sec 2000000.000
# HELP agp_perf_sim_us_per_wall_ms Simulated microseconds advanced per host millisecond.
# TYPE agp_perf_sim_us_per_wall_ms gauge
agp_perf_sim_us_per_wall_ms 10000.000
# HELP agp_perf_unbalanced_exits_total Span guard enter/exit mismatches (0 on a healthy run).
# TYPE agp_perf_unbalanced_exits_total counter
agp_perf_unbalanced_exits_total 0
";
        assert_eq!(got, want);
    }

    #[test]
    fn empty_report_renders_families_only() {
        let got = render_prometheus(&PerfReport::default());
        assert!(got.contains("# TYPE agp_perf_span_calls_total counter"));
        assert!(got.contains("agp_perf_unbalanced_exits_total 0\n"));
        assert!(!got.contains("span=\""));
    }
}
