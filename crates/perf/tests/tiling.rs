//! Property test for the exclusive-time tiling invariant.
//!
//! Arbitrary balanced span trees under a single root, driven through the
//! explicit-clock [`Recorder`] with a monotone synthetic clock, must
//! satisfy: children's elapsed time never exceeds the parent's inclusive
//! time, and the exclusive times of all spans tile the root's inclusive
//! time exactly — the invariant `agp perf`'s table reports against.

use agp_perf::{PerfReport, Recorder, Span, SPAN_COUNT};
use proptest::prelude::*;

/// Interpret a token stream as a balanced session: small tokens open a
/// child span, large ones close the innermost frame; the clock advances
/// by a token-derived amount at every step so durations vary.
fn drive(tokens: &[u8]) -> (Recorder, u64) {
    let mut rec = Recorder::new();
    let mut clock = 0u64;
    rec.enter(Span::Run, clock);
    let mut depth = 1usize;
    for &tok in tokens {
        clock += u64::from(tok) + 1;
        let open = (tok as usize) < SPAN_COUNT && depth < 12;
        if open {
            let span = Span::from_id(tok as usize % SPAN_COUNT).unwrap();
            rec.enter(span, clock);
            depth += 1;
        } else if depth > 1 {
            rec.exit(clock);
            depth -= 1;
        }
    }
    while depth > 0 {
        clock += 1;
        rec.exit(clock);
        depth -= 1;
    }
    (rec, clock)
}

proptest! {
    #[test]
    fn exclusive_times_tile_the_root(tokens in proptest::collection::vec(any::<u8>(), 0..400)) {
        let (rec, end_clock) = drive(&tokens);
        prop_assert_eq!(rec.depth(), 0);
        prop_assert_eq!(rec.unbalanced_exits, 0);

        let root_incl = rec.stat(Span::Run).incl_ns;
        prop_assert_eq!(root_incl, end_clock); // root spans the whole session

        // Tiling: every nanosecond inside the root is exclusive to
        // exactly one span.
        prop_assert_eq!(rec.total_self_ns(), root_incl);

        // Stack-path self times tile identically.
        let path_total: u64 = rec.paths().values().map(|p| p.self_ns).sum();
        prop_assert_eq!(path_total, root_incl);

        for stat in rec.stats() {
            // Children sum <= parent inclusive, i.e. self time never
            // exceeds total activation time.
            prop_assert!(stat.excl_ns <= stat.sum_ns);
            // No span outlives the root.
            prop_assert!(stat.incl_ns <= root_incl);
            prop_assert!(stat.max_ns <= stat.sum_ns);
            prop_assert_eq!(stat.hist.count(), stat.count);
        }

        // The frozen report preserves the invariant.
        let rep = PerfReport::from_recorder(&rec);
        prop_assert_eq!(rep.total_self_ns(), root_incl);
        let collapsed_total: u64 = rep
            .collapsed()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        prop_assert_eq!(collapsed_total, root_incl);
    }
}
