//! Benchmark identities, problem classes, and the size/behavior tables.

use agp_sim::units::pages_from_mib;
use agp_sim::SimDur;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// NPB2 codes: the five the paper evaluates plus the remaining three
/// (BT, FT, EP), added per the paper's stated follow-up ("applications of
/// various working set sizes", §6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Benchmark {
    /// LU: SSOR solver, regular sweeps, the paper's detailed case study.
    LU,
    /// SP: scalar pentadiagonal ADI solver; largest memory and CPU.
    SP,
    /// CG: conjugate gradient; sparse, irregular, small effective WS.
    CG,
    /// IS: integer (bucket) sort; small memory, communication heavy.
    IS,
    /// MG: multigrid; large working set, biggest paging reduction in Fig 7.
    MG,
    /// BT: block-tridiagonal ADI solver; like SP but heavier still.
    BT,
    /// FT: 3-D FFT; the largest footprint in the suite, all-to-all
    /// transpose every iteration.
    FT,
    /// EP: embarrassingly parallel; negligible memory — the control case
    /// where adaptive paging has nothing to win.
    EP,
}

impl Benchmark {
    /// The five codes the paper's evaluation uses, in its listing order.
    pub const PAPER_FIVE: [Benchmark; 5] = [
        Benchmark::LU,
        Benchmark::SP,
        Benchmark::CG,
        Benchmark::IS,
        Benchmark::MG,
    ];

    /// Every modeled NPB2 code (the paper's five + BT, FT, EP).
    pub const ALL: [Benchmark; 8] = [
        Benchmark::LU,
        Benchmark::SP,
        Benchmark::CG,
        Benchmark::IS,
        Benchmark::MG,
        Benchmark::BT,
        Benchmark::FT,
        Benchmark::EP,
    ];
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromStr for Benchmark {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "LU" => Ok(Benchmark::LU),
            "SP" => Ok(Benchmark::SP),
            "CG" => Ok(Benchmark::CG),
            "IS" => Ok(Benchmark::IS),
            "MG" => Ok(Benchmark::MG),
            "BT" => Ok(Benchmark::BT),
            "FT" => Ok(Benchmark::FT),
            "EP" => Ok(Benchmark::EP),
            other => Err(format!("unknown benchmark '{other}'")),
        }
    }
}

/// NPB problem classes used in the paper (A for the headline experiments'
/// parallel list, B for serial §4.1, C for the fig. 6 traces).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Smallest evaluated class.
    A,
    /// Mid class: the serial experiments (§4.1, 188–400 MB footprints).
    B,
    /// Large class: the 4-node trace experiments (§4, 188 MB/rank for LU).
    C,
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromStr for Class {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Ok(Class::A),
            "B" => Ok(Class::B),
            "C" => Ok(Class::C),
            other => Err(format!("unknown class '{other}'")),
        }
    }
}

/// A benchmark instance: code, class, and degree of parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which NPB2 code.
    pub bench: Benchmark,
    /// Problem class.
    pub class: Class,
    /// Number of MPI ranks (1 = the serial version of §4.1).
    pub nprocs: u32,
}

impl WorkloadSpec {
    /// A serial instance.
    pub fn serial(bench: Benchmark, class: Class) -> Self {
        WorkloadSpec {
            bench,
            class,
            nprocs: 1,
        }
    }

    /// An `n`-rank parallel instance.
    pub fn parallel(bench: Benchmark, class: Class, nprocs: u32) -> Self {
        WorkloadSpec {
            bench,
            class,
            nprocs: nprocs.max(1),
        }
    }

    /// Total problem footprint in MiB (serial memory requirement),
    /// following published NPB2 sizes closely enough for the paper's
    /// pressure regimes.
    pub fn total_footprint_mib(&self) -> u64 {
        match (self.bench, self.class) {
            (Benchmark::LU, Class::A) => 45, // the Moreira et al. 45 MB job
            (Benchmark::LU, Class::B) => 330,
            (Benchmark::LU, Class::C) => 750, // 188 MB/rank on 4 nodes (§4)
            (Benchmark::SP, Class::A) => 50,
            (Benchmark::SP, Class::B) => 314,
            (Benchmark::SP, Class::C) => 1100,
            (Benchmark::CG, Class::A) => 55,
            (Benchmark::CG, Class::B) => 399,
            (Benchmark::CG, Class::C) => 900,
            (Benchmark::IS, Class::A) => 33,
            (Benchmark::IS, Class::B) => 250,
            (Benchmark::IS, Class::C) => 510,
            (Benchmark::MG, Class::A) => 57,
            (Benchmark::MG, Class::B) => 400,
            (Benchmark::MG, Class::C) => 3400,
            (Benchmark::BT, Class::A) => 60,
            (Benchmark::BT, Class::B) => 360,
            (Benchmark::BT, Class::C) => 1300,
            (Benchmark::FT, Class::A) => 80,
            (Benchmark::FT, Class::B) => 450,
            (Benchmark::FT, Class::C) => 1700,
            (Benchmark::EP, Class::A) => 3,
            (Benchmark::EP, Class::B) => 4,
            (Benchmark::EP, Class::C) => 6,
        }
    }

    /// Parallel decomposition overhead: halo cells, per-rank buffers, and
    /// the MPI library footprint keep per-rank memory above an even split.
    pub fn halo_factor(&self) -> f64 {
        match self.bench {
            Benchmark::LU => 1.08,
            Benchmark::SP => 1.10,
            Benchmark::CG => 1.05,
            Benchmark::IS => 1.05,
            Benchmark::MG => 1.12,
            Benchmark::BT => 1.10,
            Benchmark::FT => 1.08,
            Benchmark::EP => 1.01,
        }
    }

    /// Address-space size of one rank, in pages.
    pub fn footprint_pages_per_rank(&self) -> u32 {
        let total = pages_from_mib(self.total_footprint_mib()) as f64;
        if self.nprocs <= 1 {
            return total as u32;
        }
        ((total / self.nprocs as f64) * self.halo_factor()).ceil() as u32
    }

    /// Iterations to completion (init pass excluded). Chosen so a class B
    /// serial run computes for tens of minutes — the scale at which
    /// 5-minute gang quanta and multi-minute paging storms interact the
    /// way the paper shows.
    pub fn iterations(&self) -> u32 {
        let base = match self.bench {
            Benchmark::LU => 100,
            Benchmark::SP => 80,
            Benchmark::CG => 90,
            Benchmark::IS => 160,
            Benchmark::MG => 80,
            Benchmark::BT => 70,
            Benchmark::FT => 60,
            Benchmark::EP => 40,
        };
        match self.class {
            Class::A => base / 2,
            Class::B => base,
            Class::C => base + base / 4,
        }
    }

    /// Behavioral profile driving the step generator.
    pub fn profile(&self) -> BenchProfile {
        match self.bench {
            Benchmark::LU => BenchProfile {
                sweep_fraction: 0.92,
                sweeps: 2,
                sweep_write: true,
                random_region_fraction: 0.0,
                random_run_len: 0,
                random_coverage: 0.0,
                random_write: false,
                cpu_per_page: SimDur::from_us(60),
                exchange_bytes: 200 * 1024,
                alltoall: false,
                mg_levels: 0,
                compute_per_iter: SimDur::ZERO,
            },
            Benchmark::SP => BenchProfile {
                sweep_fraction: 0.90,
                sweeps: 3,
                sweep_write: true,
                random_region_fraction: 0.0,
                random_run_len: 0,
                random_coverage: 0.0,
                random_write: false,
                cpu_per_page: SimDur::from_us(70),
                exchange_bytes: 400 * 1024,
                alltoall: false,
                mg_levels: 0,
                compute_per_iter: SimDur::ZERO,
            },
            Benchmark::CG => BenchProfile {
                // The sparse matrix: read-only after initialization, so
                // its pages evict cheaply — one reason CG benefits least.
                sweep_fraction: 0.60,
                sweeps: 1,
                sweep_write: false,
                random_region_fraction: 0.12,
                random_run_len: 8,
                random_coverage: 1.0,
                random_write: true,
                cpu_per_page: SimDur::from_us(60),
                exchange_bytes: 64 * 1024,
                alltoall: false,
                mg_levels: 0,
                compute_per_iter: SimDur::ZERO,
            },
            Benchmark::IS => BenchProfile {
                // Counting pass + ranking pass over the key array.
                sweep_fraction: 0.45,
                sweeps: 2,
                sweep_write: false,
                random_region_fraction: 0.25,
                random_run_len: 4,
                random_coverage: 0.7,
                random_write: true,
                cpu_per_page: SimDur::from_us(40),
                exchange_bytes: 1024 * 1024,
                alltoall: true,
                mg_levels: 0,
                compute_per_iter: SimDur::ZERO,
            },
            Benchmark::MG => BenchProfile {
                sweep_fraction: 0.95,
                sweeps: 1, // per level, down & up the V-cycle
                sweep_write: true,
                random_region_fraction: 0.0,
                random_run_len: 0,
                random_coverage: 0.0,
                random_write: false,
                cpu_per_page: SimDur::from_us(45),
                exchange_bytes: 150 * 1024,
                alltoall: false,
                mg_levels: 4,
                compute_per_iter: SimDur::ZERO,
            },
            Benchmark::BT => BenchProfile {
                // Three directional block solves, the heaviest regular code.
                sweep_fraction: 0.93,
                sweeps: 3,
                sweep_write: true,
                random_region_fraction: 0.0,
                random_run_len: 0,
                random_coverage: 0.0,
                random_write: false,
                cpu_per_page: SimDur::from_us(90),
                exchange_bytes: 500 * 1024,
                alltoall: false,
                mg_levels: 0,
                compute_per_iter: SimDur::ZERO,
            },
            Benchmark::FT => BenchProfile {
                // Forward + inverse FFT passes over the grid, then a
                // full transpose (all-to-all) every iteration.
                sweep_fraction: 0.96,
                sweeps: 2,
                sweep_write: true,
                random_region_fraction: 0.0,
                random_run_len: 0,
                random_coverage: 0.0,
                random_write: false,
                cpu_per_page: SimDur::from_us(55),
                exchange_bytes: 4 * 1024 * 1024,
                alltoall: true,
                mg_levels: 0,
                compute_per_iter: SimDur::ZERO,
            },
            Benchmark::EP => BenchProfile {
                // Random-number tallies in a tiny table; virtually all CPU.
                sweep_fraction: 0.9,
                sweeps: 1,
                sweep_write: true,
                random_region_fraction: 0.0,
                random_run_len: 0,
                random_coverage: 0.0,
                random_write: false,
                cpu_per_page: SimDur::from_us(20),
                exchange_bytes: 4 * 1024,
                alltoall: false,
                mg_levels: 0,
                compute_per_iter: SimDur::from_secs(8),
            },
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}x{}", self.bench, self.class, self.nprocs)
    }
}

/// Behavioral knobs for the step generator (see [`WorkloadSpec::profile`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchProfile {
    /// Fraction of the rank footprint swept sequentially each iteration.
    pub sweep_fraction: f64,
    /// Sequential sweeps per iteration (per level for MG).
    pub sweeps: u32,
    /// Whether sweep touches dirty their pages.
    pub sweep_write: bool,
    /// Fraction of the footprint addressed by scattered touches.
    pub random_region_fraction: f64,
    /// Length in pages of each scattered touch run.
    pub random_run_len: u32,
    /// Fraction of the random region touched per iteration.
    pub random_coverage: f64,
    /// Whether scattered touches write.
    pub random_write: bool,
    /// CPU charged per touched page.
    pub cpu_per_page: SimDur,
    /// Bytes exchanged with neighbors per iteration (parallel runs).
    pub exchange_bytes: u64,
    /// Whether the per-iteration communication is an all-to-all (IS).
    pub alltoall: bool,
    /// Multigrid V-cycle depth; 0 for non-MG codes.
    pub mg_levels: u32,
    /// Pure computation per iteration beyond the per-page costs (EP's
    /// random-number generation dominates its runtime this way).
    pub compute_per_iter: SimDur,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_b_serial_footprints_match_papers_range() {
        // §4.1 footnote: the selected class B programs need 188–400 MB.
        for b in Benchmark::PAPER_FIVE {
            let mib = WorkloadSpec::serial(b, Class::B).total_footprint_mib();
            assert!((250..=400).contains(&mib), "{b}: {mib} MiB");
        }
    }

    #[test]
    fn lu_class_c_four_ranks_matches_paper() {
        // §4: "the data class C of LU uses only 188 MB when running on 4
        // machines in parallel".
        let spec = WorkloadSpec::parallel(Benchmark::LU, Class::C, 4);
        let mib = agp_sim::units::mib_from_pages(spec.footprint_pages_per_rank() as usize);
        assert!((185.0..=210.0).contains(&mib), "got {mib:.1} MiB/rank");
    }

    #[test]
    fn moreira_job_is_45_mib() {
        let spec = WorkloadSpec::serial(Benchmark::LU, Class::A);
        assert_eq!(spec.total_footprint_mib(), 45);
    }

    #[test]
    fn parallel_split_shrinks_with_ranks_but_never_below_even_share() {
        for b in Benchmark::ALL {
            let serial = WorkloadSpec::serial(b, Class::B).footprint_pages_per_rank();
            let two = WorkloadSpec::parallel(b, Class::B, 2).footprint_pages_per_rank();
            let four = WorkloadSpec::parallel(b, Class::B, 4).footprint_pages_per_rank();
            assert!(two < serial && four < two, "{b}");
            assert!(
                two as f64 > serial as f64 / 2.0,
                "{b}: halo overhead present"
            );
            assert!(four as f64 > serial as f64 / 4.0, "{b}");
        }
    }

    #[test]
    fn iterations_scale_with_class() {
        for b in Benchmark::ALL {
            let a = WorkloadSpec::serial(b, Class::A).iterations();
            let bb = WorkloadSpec::serial(b, Class::B).iterations();
            let c = WorkloadSpec::serial(b, Class::C).iterations();
            assert!(a < bb && bb < c, "{b}");
        }
    }

    #[test]
    fn profiles_are_self_consistent() {
        for b in Benchmark::ALL {
            let p = WorkloadSpec::serial(b, Class::B).profile();
            assert!(p.sweep_fraction > 0.0 && p.sweep_fraction <= 1.0);
            assert!(p.sweep_fraction + p.random_region_fraction <= 1.0, "{b}");
            assert!(p.cpu_per_page > SimDur::ZERO);
            if p.random_region_fraction > 0.0 {
                assert!(p.random_run_len > 0, "{b}");
            }
        }
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("lu".parse::<Benchmark>().unwrap(), Benchmark::LU);
        assert_eq!("b".parse::<Class>().unwrap(), Class::B);
        assert!("xx".parse::<Benchmark>().is_err());
        let s = WorkloadSpec::parallel(Benchmark::MG, Class::B, 2);
        assert_eq!(s.to_string(), "MG.Bx2");
    }
}
