//! Compilation of a [`WorkloadSpec`] into a deterministic step stream for
//! one rank.
//!
//! The program is pull-based: the cluster executor calls
//! [`ProcessProgram::next_step`] whenever the process is ready for more
//! work. Steps for one iteration are generated lazily (scattered-touch
//! offsets draw from the program's own forked RNG), so the stream is
//! reproducible from `(spec, rank, seed)` and costs no up-front memory.

use crate::spec::WorkloadSpec;
use agp_sim::{SimDur, SimRng};
use std::collections::VecDeque;

/// One unit of work for the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Touch `len` consecutive pages starting at `first`; each touched
    /// page costs `cpu_per_page` of CPU time. Writes dirty the pages.
    Touch {
        /// First page of the run.
        first: u32,
        /// Run length in pages.
        len: u32,
        /// Whether the touches are writes.
        write: bool,
        /// CPU charged per touched page.
        cpu_per_page: SimDur,
    },
    /// Pure computation (no memory traffic at page granularity).
    Compute(SimDur),
    /// Exchange `bytes` with neighbor ranks (skipped for serial runs).
    Exchange {
        /// Payload size.
        bytes: u64,
    },
    /// All-to-all of `bytes_per_pair` with every other rank (IS).
    AllToAll {
        /// Per-pair payload size.
        bytes_per_pair: u64,
    },
    /// Job-wide barrier (skipped for serial runs).
    Barrier,
    /// Marks completion of the given iteration (0 = the init pass).
    EndIteration(u32),
}

/// The executable program of one rank.
#[derive(Clone, Debug)]
pub struct ProcessProgram {
    spec: WorkloadSpec,
    rank: u32,
    footprint: u32,
    iters_total: u32,
    /// Next iteration to generate (0 = init pass; work iterations are
    /// 1..=iters_total).
    next_iter: u32,
    queue: VecDeque<Step>,
    rng: SimRng,
}

impl ProcessProgram {
    /// Build the program for `rank` of `spec`, deterministically from
    /// `seed` (programs with the same `(spec, rank, seed)` are identical).
    pub fn new(spec: WorkloadSpec, rank: u32, seed: u64) -> Self {
        assert!(rank < spec.nprocs, "rank {rank} out of range");
        let footprint = spec.footprint_pages_per_rank();
        ProcessProgram {
            spec,
            rank,
            footprint,
            iters_total: spec.iterations(),
            next_iter: 0,
            queue: VecDeque::new(),
            rng: SimRng::new(seed).fork(rank as u64 + 1),
        }
    }

    /// The spec this program was compiled from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// This rank's index.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Address-space size in pages.
    pub fn footprint_pages(&self) -> u32 {
        self.footprint
    }

    /// `(completed_iterations, total_iterations)` — excludes the init pass.
    pub fn progress(&self) -> (u32, u32) {
        (
            self.next_iter.saturating_sub(1).min(self.iters_total),
            self.iters_total,
        )
    }

    /// Pull the next step; `None` once the workload is complete.
    pub fn next_step(&mut self) -> Option<Step> {
        loop {
            if let Some(s) = self.queue.pop_front() {
                return Some(s);
            }
            if self.next_iter > self.iters_total {
                return None;
            }
            let iter = self.next_iter;
            self.next_iter += 1;
            if iter == 0 {
                self.gen_init();
            } else {
                self.gen_iteration(iter);
            }
        }
    }

    /// The init pass: every benchmark starts by allocating and writing its
    /// whole data set (arrays are initialized in place). This is what
    /// makes even "read-only" regions dirty once.
    fn gen_init(&mut self) {
        let p = self.spec.profile();
        self.queue.push_back(Step::Touch {
            first: 0,
            len: self.footprint,
            write: true,
            cpu_per_page: p.cpu_per_page,
        });
        if self.spec.nprocs > 1 {
            self.queue.push_back(Step::Barrier);
        }
        self.queue.push_back(Step::EndIteration(0));
    }

    fn gen_iteration(&mut self, iter: u32) {
        let p = self.spec.profile();
        let sweep_pages = ((self.footprint as f64) * p.sweep_fraction) as u32;

        if p.mg_levels > 0 {
            // Multigrid V-cycle: restrict down the hierarchy, then
            // prolongate back up. Level l covers sweep_pages / 8^l (3-D
            // coarsening) of the footprint, finest level first.
            let mut level_sizes = Vec::new();
            for l in 0..p.mg_levels {
                let len = (sweep_pages >> (3 * l)).max(1);
                level_sizes.push(len);
            }
            for &len in level_sizes.iter() {
                self.queue.push_back(Step::Touch {
                    first: 0,
                    len,
                    write: p.sweep_write,
                    cpu_per_page: p.cpu_per_page,
                });
            }
            for &len in level_sizes.iter().rev() {
                self.queue.push_back(Step::Touch {
                    first: 0,
                    len,
                    write: p.sweep_write,
                    cpu_per_page: p.cpu_per_page,
                });
            }
        } else {
            for _ in 0..p.sweeps {
                self.queue.push_back(Step::Touch {
                    first: 0,
                    len: sweep_pages.max(1),
                    write: p.sweep_write,
                    cpu_per_page: p.cpu_per_page,
                });
            }
        }

        // Scattered touches (CG vector updates, IS bucket writes): short
        // runs at random offsets inside the random region, covering
        // `random_coverage` of it per iteration.
        if p.random_region_fraction > 0.0 && p.random_run_len > 0 {
            let region_start = sweep_pages.min(self.footprint.saturating_sub(1));
            let region_len = ((self.footprint as f64) * p.random_region_fraction).max(1.0) as u32;
            let region_len = region_len.min(self.footprint - region_start).max(1);
            let touched = ((region_len as f64) * p.random_coverage) as u32;
            let runs = (touched / p.random_run_len).max(1);
            for _ in 0..runs {
                let span = region_len.saturating_sub(p.random_run_len).max(1);
                let off = self.rng.below(span as u64) as u32;
                self.queue.push_back(Step::Touch {
                    first: region_start + off,
                    len: p.random_run_len.min(region_len),
                    write: p.random_write,
                    cpu_per_page: p.cpu_per_page,
                });
            }
        }

        // Pure-compute phase (EP's RNG work).
        if p.compute_per_iter > agp_sim::SimDur::ZERO {
            self.queue.push_back(Step::Compute(p.compute_per_iter));
        }

        // Iteration-level communication & BSP barrier.
        if self.spec.nprocs > 1 {
            if p.alltoall {
                self.queue.push_back(Step::AllToAll {
                    bytes_per_pair: p.exchange_bytes / self.spec.nprocs as u64,
                });
            } else {
                self.queue.push_back(Step::Exchange {
                    bytes: p.exchange_bytes,
                });
            }
            self.queue.push_back(Step::Barrier);
        }
        self.queue.push_back(Step::EndIteration(iter));
    }

    /// Total pages the program will touch per work iteration (primary
    /// sweeps only; diagnostic/calibration helper).
    pub fn sweep_pages_per_iteration(&self) -> u64 {
        let p = self.spec.profile();
        let sweep = ((self.footprint as f64) * p.sweep_fraction) as u64;
        if p.mg_levels > 0 {
            (0..p.mg_levels)
                .map(|l| (sweep >> (3 * l)).max(1) * 2)
                .sum()
        } else {
            sweep * p.sweeps as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Benchmark, Class};

    fn steps_of_one_iteration(prog: &mut ProcessProgram) -> Vec<Step> {
        let mut out = Vec::new();
        loop {
            let s = prog.next_step().expect("program ended early");
            let done = matches!(s, Step::EndIteration(_));
            out.push(s);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn program_is_deterministic() {
        let spec = WorkloadSpec::parallel(Benchmark::CG, Class::A, 4);
        let mut a = ProcessProgram::new(spec, 2, 42);
        let mut b = ProcessProgram::new(spec, 2, 42);
        for _ in 0..500 {
            assert_eq!(a.next_step(), b.next_step());
        }
    }

    #[test]
    fn ranks_get_different_random_offsets() {
        let spec = WorkloadSpec::parallel(Benchmark::CG, Class::A, 2);
        let mut r0 = ProcessProgram::new(spec, 0, 42);
        let mut r1 = ProcessProgram::new(spec, 1, 42);
        let s0: Vec<Step> = (0..200).filter_map(|_| r0.next_step()).collect();
        let s1: Vec<Step> = (0..200).filter_map(|_| r1.next_step()).collect();
        assert_ne!(s0, s1, "scattered touches differ across ranks");
    }

    #[test]
    fn init_pass_writes_whole_footprint() {
        let spec = WorkloadSpec::serial(Benchmark::LU, Class::A);
        let mut p = ProcessProgram::new(spec, 0, 1);
        let init = steps_of_one_iteration(&mut p);
        match init[0] {
            Step::Touch {
                first, len, write, ..
            } => {
                assert_eq!(first, 0);
                assert_eq!(len, p.footprint_pages());
                assert!(write);
            }
            ref s => panic!("expected init touch, got {s:?}"),
        }
        assert_eq!(*init.last().unwrap(), Step::EndIteration(0));
    }

    #[test]
    fn serial_programs_have_no_communication() {
        let spec = WorkloadSpec::serial(Benchmark::IS, Class::A);
        let mut p = ProcessProgram::new(spec, 0, 7);
        let mut n = 0;
        while let Some(s) = p.next_step() {
            n += 1;
            assert!(
                !matches!(
                    s,
                    Step::Barrier | Step::Exchange { .. } | Step::AllToAll { .. }
                ),
                "serial program emitted {s:?}"
            );
        }
        assert!(n > 0);
    }

    #[test]
    fn parallel_iterations_end_with_barrier() {
        let spec = WorkloadSpec::parallel(Benchmark::LU, Class::A, 4);
        let mut p = ProcessProgram::new(spec, 0, 7);
        let _init = steps_of_one_iteration(&mut p);
        let iter1 = steps_of_one_iteration(&mut p);
        let n = iter1.len();
        assert!(matches!(iter1[n - 2], Step::Barrier));
        assert!(matches!(iter1[n - 3], Step::Exchange { .. }));
        assert_eq!(iter1[n - 1], Step::EndIteration(1));
    }

    #[test]
    fn is_uses_alltoall() {
        let spec = WorkloadSpec::parallel(Benchmark::IS, Class::A, 4);
        let mut p = ProcessProgram::new(spec, 0, 7);
        let _ = steps_of_one_iteration(&mut p);
        let iter1 = steps_of_one_iteration(&mut p);
        assert!(iter1.iter().any(|s| matches!(s, Step::AllToAll { .. })));
    }

    #[test]
    fn lu_iteration_is_two_full_sweeps() {
        let spec = WorkloadSpec::serial(Benchmark::LU, Class::A);
        let mut p = ProcessProgram::new(spec, 0, 7);
        let _ = steps_of_one_iteration(&mut p);
        let iter1 = steps_of_one_iteration(&mut p);
        let sweeps: Vec<_> = iter1
            .iter()
            .filter(|s| matches!(s, Step::Touch { .. }))
            .collect();
        assert_eq!(sweeps.len(), 2);
        if let Step::Touch { len, write, .. } = sweeps[0] {
            assert!(*write);
            let frac = *len as f64 / p.footprint_pages() as f64;
            assert!((0.85..=0.95).contains(&frac), "sweep covers ~92%: {frac}");
        }
    }

    #[test]
    fn mg_vcycle_touches_levels_down_and_up() {
        let spec = WorkloadSpec::serial(Benchmark::MG, Class::A);
        let mut p = ProcessProgram::new(spec, 0, 7);
        let _ = steps_of_one_iteration(&mut p);
        let iter1 = steps_of_one_iteration(&mut p);
        let lens: Vec<u32> = iter1
            .iter()
            .filter_map(|s| match s {
                Step::Touch { len, .. } => Some(*len),
                _ => None,
            })
            .collect();
        assert_eq!(lens.len(), 8, "4 levels down + 4 up");
        assert!(
            lens[0] > lens[1] && lens[1] > lens[2],
            "restriction shrinks"
        );
        assert_eq!(lens[3], lens[4], "turnaround at the coarsest level");
        assert!(lens[5] > lens[4], "prolongation grows");
        assert_eq!(lens[0], lens[7], "finest level revisited");
    }

    #[test]
    fn cg_scatter_stays_inside_footprint() {
        let spec = WorkloadSpec::serial(Benchmark::CG, Class::A);
        let mut p = ProcessProgram::new(spec, 0, 99);
        let fp = p.footprint_pages();
        for _ in 0..2000 {
            match p.next_step() {
                Some(Step::Touch { first, len, .. }) => {
                    assert!(first + len <= fp, "touch {first}+{len} beyond {fp}");
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    #[test]
    fn program_terminates_with_exact_iteration_count() {
        let spec = WorkloadSpec::serial(Benchmark::IS, Class::A);
        let mut p = ProcessProgram::new(spec, 0, 3);
        let mut last_iter = None;
        while let Some(s) = p.next_step() {
            if let Step::EndIteration(i) = s {
                last_iter = Some(i);
            }
        }
        assert_eq!(last_iter, Some(spec.iterations()));
        assert_eq!(p.progress(), (spec.iterations(), spec.iterations()));
        assert_eq!(p.next_step(), None, "stays finished");
    }

    #[test]
    fn ep_is_compute_dominated() {
        let spec = WorkloadSpec::serial(Benchmark::EP, Class::B);
        let mut p = ProcessProgram::new(spec, 0, 1);
        let _init = steps_of_one_iteration(&mut p);
        let iter1 = steps_of_one_iteration(&mut p);
        let compute: u64 = iter1
            .iter()
            .filter_map(|s| match s {
                Step::Compute(d) => Some(d.as_us()),
                _ => None,
            })
            .sum();
        let touch_cost: u64 = iter1
            .iter()
            .filter_map(|s| match s {
                Step::Touch {
                    len, cpu_per_page, ..
                } => Some(*len as u64 * cpu_per_page.as_us()),
                _ => None,
            })
            .sum();
        assert!(
            compute > touch_cost * 10,
            "EP must be compute-dominated: {compute} vs {touch_cost}"
        );
    }

    #[test]
    fn ft_uses_alltoall_transpose() {
        let spec = WorkloadSpec::parallel(Benchmark::FT, Class::A, 4);
        let mut p = ProcessProgram::new(spec, 0, 1);
        let _ = steps_of_one_iteration(&mut p);
        let iter1 = steps_of_one_iteration(&mut p);
        assert!(iter1.iter().any(|s| matches!(s, Step::AllToAll { .. })));
    }

    #[test]
    fn bt_is_three_sweeps() {
        let spec = WorkloadSpec::serial(Benchmark::BT, Class::A);
        let mut p = ProcessProgram::new(spec, 0, 1);
        let _ = steps_of_one_iteration(&mut p);
        let iter1 = steps_of_one_iteration(&mut p);
        let sweeps = iter1
            .iter()
            .filter(|s| matches!(s, Step::Touch { .. }))
            .count();
        assert_eq!(sweeps, 3);
    }

    #[test]
    fn sweep_pages_estimate_matches_generated_steps() {
        for bench in Benchmark::ALL {
            let spec = WorkloadSpec::serial(bench, Class::A);
            let mut p = ProcessProgram::new(spec, 0, 5);
            let est = p.sweep_pages_per_iteration();
            let _ = steps_of_one_iteration(&mut p);
            let iter1 = steps_of_one_iteration(&mut p);
            let prof = spec.profile();
            let actual: u64 = iter1
                .iter()
                .filter_map(|s| match s {
                    Step::Touch { len, write, .. }
                        if *write == prof.sweep_write || prof.random_region_fraction == 0.0 =>
                    {
                        Some(*len as u64)
                    }
                    _ => None,
                })
                .sum();
            // Scattered touches make `actual` exceed the sweep estimate for
            // CG/IS; the estimate must never exceed what is generated.
            assert!(
                actual >= est,
                "{bench}: estimate {est} vs generated {actual}"
            );
        }
    }
}
