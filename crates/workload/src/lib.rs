//! # agp-workload — synthetic NAS NPB2 workload models
//!
//! The paper drives its experiments with five NPB2 codes — **LU, SP, CG,
//! IS, MG** — serial (class B) and MPI-parallel (2 and 4 ranks). What the
//! paging experiments actually depend on is not the arithmetic those codes
//! perform but their **memory behavior**:
//!
//! * total footprint per process (how hard memory is over-committed),
//! * per-iteration working set (what a job switch must move),
//! * access pattern (sequential sweeps page-in beautifully with
//!   read-ahead; CG/IS's irregular accesses do not),
//! * write intensity (dirty pages must be written at eviction; read-only
//!   regions evict for free after their first write-out),
//! * iteration-level BSP synchronization (a barrier per iteration couples
//!   every rank to the slowest pager).
//!
//! Each model here reproduces those five properties:
//!
//! | code | pattern modeled |
//! |------|-----------------|
//! | LU   | SSOR: 2 full sweeps/iteration over the grid, read-write |
//! | SP   | ADI: 3 directional solves/iteration, read-write, largest CPU |
//! | CG   | sparse mat-vec: big read-only matrix sweep + scattered short read-write touches of vectors |
//! | IS   | bucket sort: sequential read of keys + scattered bucket writes + all-to-all |
//! | MG   | multigrid V-cycle: geometric sweep down/up the level hierarchy |
//!
//! Footprints follow the published NPB2 sizes closely enough to recreate
//! the paper's pressure points (class B serial codes "require 188 MB to
//! 400 MB", §4.1; LU class C on 4 nodes uses 188 MB/rank, §4).
//!
//! A workload is compiled into a [`ProcessProgram`]: a deterministic
//! stream of [`Step`]s (touch runs, compute, communication, barriers) that
//! the cluster layer executes against the simulated VM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod program;
pub mod spec;

pub use program::{ProcessProgram, Step};
pub use spec::{Benchmark, Class, WorkloadSpec};
