//! Property tests for the flight recorder: ring wraparound keeps exactly
//! the newest window, event lines invert through `parse_event_line`, and
//! identical recording sequences freeze byte-identical incident dumps.
//!
//! The recorder is process-global (one armed black box per process, like
//! `agp-perf`), so every property that arms it holds `HUB_LOCK` — the
//! proptest cases themselves run serially inside each `#[test]`, but the
//! test harness runs the `#[test]`s on concurrent threads.

use agp_obs::flight::{self, FlightConfig, IncidentTrigger, RunMeta};
use agp_obs::{ObsEvent, WatchdogRule};
use agp_sim::SimTime;
use proptest::prelude::*;
use std::sync::Mutex;

static HUB_LOCK: Mutex<()> = Mutex::new(());

fn hub_lock() -> std::sync::MutexGuard<'static, ()> {
    match HUB_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A slice of the event taxonomy with fully arbitrary field values,
/// including the incident variants the watchdog layer added.
fn any_event() -> impl Strategy<Value = ObsEvent> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<bool>())
            .prop_map(|(pid, page, major)| ObsEvent::PageFault { pid, page, major }),
        (any::<u32>(), any::<u32>()).prop_map(|(pid, page)| ObsEvent::ReadaheadHit { pid, page }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(target, freed, write_pages)| {
            ObsEvent::Reclaim {
                target,
                freed,
                write_pages,
            }
        }),
        (
            any::<bool>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(write, extents, pages, wait_us, seek_us, service_us)| {
                ObsEvent::DiskRequest {
                    write,
                    extents,
                    pages,
                    wait_us,
                    seek_us,
                    service_us,
                }
            }),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(ranks, skew_us, lag_us)| {
            ObsEvent::BarrierWait {
                ranks,
                skew_us,
                lag_us,
            }
        }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(node, attempts)| ObsEvent::IoExhausted { node, attempts }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(job, attempts)| ObsEvent::BarrierExhausted { job, attempts }),
    ]
}

proptest! {
    /// Wraparound law: after `n` recorded events and a watchdog freeze
    /// (which appends the trip marker), the dump retains exactly the
    /// newest `min(cap, n + 1)` events in order, and the seen/dropped
    /// accounting tiles the stream.
    #[test]
    fn ring_retains_exactly_the_newest_window(
        cap in 1usize..64,
        evs in proptest::collection::vec(any_event(), 0..200),
        value in any::<u64>(),
        limit in any::<u64>(),
    ) {
        let _g = hub_lock();
        flight::arm(FlightConfig { events: cap, ..FlightConfig::default() });
        flight::note_run(RunMeta { scenario: "prop".to_string(), seed: 1, ..RunMeta::default() });
        for (i, ev) in evs.iter().enumerate() {
            flight::record(SimTime::from_us(i as u64), 0, ev);
        }
        flight::freeze(
            IncidentTrigger::Watchdog {
                rule: WatchdogRule::QueueDepth,
                value,
                limit,
                detail: String::new(),
            },
            SimTime::from_us(evs.len() as u64),
        );
        let dump = flight::take_incident().expect("watchdog freeze produced an incident");
        flight::disarm();

        let n = evs.len() as u64 + 1; // + the appended trip marker
        prop_assert_eq!(dump.events_seen, n);
        prop_assert_eq!(dump.events.len(), (n as usize).min(cap));
        prop_assert_eq!(dump.events_dropped, n - dump.events.len() as u64);
        let mut stream = evs.clone();
        stream.push(ObsEvent::WatchdogTrip {
            rule: WatchdogRule::QueueDepth,
            value,
            limit,
        });
        let tail = &stream[stream.len() - dump.events.len()..];
        for (got, want) in dump.events.iter().zip(tail) {
            prop_assert_eq!(&got.event, want);
        }
    }

    /// `parse_event_line` inverts `to_json_line` for arbitrary field
    /// values, not just the one-of-each samples the unit tests pin.
    #[test]
    fn event_lines_round_trip(
        ev in any_event(),
        t in any::<u64>(),
        src in any::<u32>(),
    ) {
        let line = ev.to_json_line(SimTime::from_us(t), src);
        let back = flight::parse_event_line(&line)
            .unwrap_or_else(|e| panic!("{line}: {e}"));
        prop_assert_eq!(back.event, ev);
        prop_assert_eq!(back.at, SimTime::from_us(t));
        prop_assert_eq!(back.src, src);
    }

    /// Determinism: replaying the identical record/mirror/freeze sequence
    /// through a fresh recorder freezes a byte-identical dump, and every
    /// retained event line reloads to the recorded `TracedEvent`.
    #[test]
    fn identical_sequences_freeze_byte_identical_dumps(
        cap in 1usize..32,
        evs in proptest::collection::vec(any_event(), 0..120),
    ) {
        let _g = hub_lock();
        let run = || {
            flight::arm(FlightConfig {
                events: cap,
                samples: 4,
                snapshots: 2,
                ..FlightConfig::default()
            });
            flight::note_run(RunMeta {
                scenario: "prop".to_string(),
                seed: 9,
                config_fp: 0xfeed_f00d,
                jobs: vec!["j0".to_string()],
                pid_job: vec![(0, 0)],
            });
            for (i, ev) in evs.iter().enumerate() {
                flight::record(SimTime::from_us(i as u64), 1, ev);
                if i % 3 == 0 {
                    flight::mirror_sample(&format!("{{\"s\":{i}}}"));
                }
                if i % 7 == 0 {
                    flight::mirror_snapshot(&format!("{{\"m\":{i}}}"));
                }
            }
            flight::freeze(
                IncidentTrigger::Error {
                    what: "boom".to_string(),
                },
                SimTime::from_us(evs.len() as u64),
            );
            let dump = flight::take_incident().expect("error freeze produced an incident");
            flight::disarm();
            dump
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.clone(), b.clone(), "dumps must compare equal");
        prop_assert_eq!(
            a.to_json_string(),
            b.to_json_string(),
            "dump encodings must be byte-identical"
        );
        for te in &a.events {
            let line = te.event.to_json_line(te.at, te.src);
            let back = flight::parse_event_line(&line)
                .unwrap_or_else(|e| panic!("{line}: {e}"));
            prop_assert_eq!(&back, te);
        }
    }
}
