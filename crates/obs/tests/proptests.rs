//! Property tests for `LatencyHistogram::percentile_us` at bucket
//! boundaries.
//!
//! The histogram stores log2 buckets (bucket 0 holds zeros, bucket `i`
//! covers `[2^(i-1), 2^i)`), so a percentile estimate cannot be exact —
//! its documented contract is *bucket accuracy*: the estimate lands in
//! the same bucket as the exact sample at the ceiling of the percentile
//! rank. These properties pin that contract adversarially across power-
//! of-two boundary values (a strict value-ratio band is provably
//! unattainable: with samples `[1, 1_000_000]`, p=1 must answer from the
//! top bucket while the exact interpolated value is near the bottom).

use agp_obs::LatencyHistogram;
use proptest::prelude::*;

/// The bucket index `LatencyHistogram` files `v` under.
fn bucket_of(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

/// Values biased hard toward bucket edges: exact powers of two, one
/// below, one above, zero, and `u64::MAX`.
fn boundary_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        (0u32..63).prop_map(|k| 1u64 << k),
        (1u32..64).prop_map(|k| (1u64 << k) - 1),
        (0u32..62).prop_map(|k| (1u64 << k) + 1),
        any::<u64>(),
    ]
}

fn build(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// The estimate's bucket equals the bucket of the exact sample at
    /// `ceil(rank)` — the histogram never answers from the wrong bucket,
    /// even when the rank straddles empty buckets.
    #[test]
    fn estimate_lands_in_the_exact_samples_bucket(
        mut samples in proptest::collection::vec(boundary_value(), 1..200),
        p in 0u32..=100u32,
    ) {
        let h = build(&samples);
        samples.sort_unstable();
        let p = p as f64;
        let est = h.percentile_us(p);
        // Mirror the implementation's rank formula exactly.
        let rank = (p / 100.0) * (samples.len() - 1) as f64;
        let ceil_idx = (rank.ceil() as usize).min(samples.len() - 1);
        let exact_hi = samples[ceil_idx];
        prop_assert_eq!(
            bucket_of(est),
            bucket_of(exact_hi),
            "p={} est={} exact-hi={} over {} samples",
            p, est, exact_hi, samples.len()
        );
    }

    /// Estimates never exceed the recorded maximum, and p=100 hits it
    /// exactly.
    #[test]
    fn estimate_is_bounded_by_max_and_p100_is_exact(
        samples in proptest::collection::vec(boundary_value(), 1..200),
        p in 0u32..=100u32,
    ) {
        let h = build(&samples);
        prop_assert!(h.percentile_us(p as f64) <= h.max_us());
        prop_assert_eq!(h.percentile_us(100.0), h.max_us());
    }

    /// Percentiles are monotone in `p`.
    #[test]
    fn estimates_are_monotone_in_p(
        samples in proptest::collection::vec(boundary_value(), 1..200),
        p1 in 0u32..=100u32,
        p2 in 0u32..=100u32,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let h = build(&samples);
        prop_assert!(h.percentile_us(lo as f64) <= h.percentile_us(hi as f64));
    }

    /// A single sample answers every percentile exactly.
    #[test]
    fn single_sample_is_exact_at_every_percentile(
        v in boundary_value(),
        p in 0u32..=100u32,
    ) {
        let h = build(&[v]);
        prop_assert_eq!(h.percentile_us(p as f64), v);
    }

    /// A saturated single-bucket histogram (every sample equal) stays
    /// inside that bucket at every percentile and is exact at p=100.
    #[test]
    fn saturated_single_bucket_stays_in_bucket(
        v in boundary_value(),
        n in 1usize..64,
        p in 0u32..=100u32,
    ) {
        let h = build(&vec![v; n]);
        let est = h.percentile_us(p as f64);
        prop_assert_eq!(bucket_of(est), bucket_of(v));
        prop_assert_eq!(h.percentile_us(100.0), v);
    }
}

/// Deterministically split `samples` across `shards` round-robin,
/// record each shard into its own histogram, and fold the shards back
/// in shard order.
fn shard_merge(samples: &[u64], shards: usize) -> LatencyHistogram {
    let mut parts = vec![LatencyHistogram::default(); shards];
    for (i, &s) in samples.iter().enumerate() {
        parts[i % shards].record(s);
    }
    let mut merged = LatencyHistogram::default();
    for p in &parts {
        merged.merge(p);
    }
    merged
}

fn hist_fingerprint(h: &LatencyHistogram) -> (u64, u64, u64, Vec<(String, u64)>) {
    (h.count(), h.sum_us(), h.max_us(), h.rows())
}

proptest! {
    /// Shard-count invariance: recording a stream serially, or splitting
    /// it over 2 or 8 shards and merging, produces the same histogram —
    /// counts, sum, max, every bucket, every percentile.
    #[test]
    fn merge_is_shard_count_invariant(
        samples in proptest::collection::vec(boundary_value(), 1..200),
        p in 0u32..=100u32,
    ) {
        let serial = build(&samples);
        for shards in [2usize, 8] {
            let merged = shard_merge(&samples, shards);
            prop_assert_eq!(hist_fingerprint(&merged), hist_fingerprint(&serial));
            prop_assert_eq!(
                merged.percentile_us(p as f64),
                serial.percentile_us(p as f64)
            );
        }
    }

    /// Associativity: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(boundary_value(), 0..60),
        b in proptest::collection::vec(boundary_value(), 0..60),
        c in proptest::collection::vec(boundary_value(), 0..60),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(hist_fingerprint(&left), hist_fingerprint(&right));
    }

    /// The empty histogram is the merge identity, on both sides.
    #[test]
    fn empty_is_merge_identity(
        samples in proptest::collection::vec(boundary_value(), 0..100),
    ) {
        let h = build(&samples);
        let mut left = LatencyHistogram::default();
        left.merge(&h);
        let mut right = h.clone();
        right.merge(&LatencyHistogram::default());
        prop_assert_eq!(hist_fingerprint(&left), hist_fingerprint(&h));
        prop_assert_eq!(hist_fingerprint(&right), hist_fingerprint(&h));
    }
}

// ---------------------------------------------------------------------
// Collector merge algebra
// ---------------------------------------------------------------------

use agp_obs::{Collector, ObsEvent, Observer, SwitchPhaseKind};
use agp_sim::SimTime;

/// One atomic unit of collector input. Shard boundaries in the real
/// fan-out fall between whole simulation runs, never inside a gang
/// switch's event group, so the sharding unit here is either a single
/// non-switch event or a complete switch block (phase + done with one
/// switch id).
#[derive(Clone, Debug)]
enum EventGroup {
    One(ObsEvent),
    Switch { page_out_us: u64, total_us: u64 },
}

/// A compact slice of the event taxonomy touching every Collector
/// surface: counters, all five histograms, and the switch-record list.
fn event_group() -> impl Strategy<Value = EventGroup> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(|(pid, page, major)| EventGroup::One(
            ObsEvent::PageFault { pid, page, major }
        )),
        (any::<u32>(), 0u64..1 << 20, 0u64..1 << 20).prop_map(|(pid, pages, skipped)| {
            EventGroup::One(ObsEvent::Replay {
                pid,
                pages,
                skipped,
            })
        }),
        (any::<bool>(), 1u64..256, 0u64..1 << 20, 0u64..1 << 20).prop_map(
            |(write, pages, wait_us, service_us)| EventGroup::One(ObsEvent::DiskRequest {
                write,
                extents: 1,
                pages,
                wait_us,
                seek_us: 0,
                service_us,
            })
        ),
        (any::<u32>(), any::<u32>(), 0u64..1 << 30).prop_map(|(pid, page, wait_us)| {
            EventGroup::One(ObsEvent::FaultService { pid, page, wait_us })
        }),
        (1u32..64, 0u64..1 << 30, 0u64..1 << 30).prop_map(|(ranks, skew_us, lag_us)| {
            EventGroup::One(ObsEvent::BarrierWait {
                ranks,
                skew_us,
                lag_us,
            })
        }),
        (0u64..1 << 20, 0u64..1 << 20).prop_map(|(page_out_us, total_us)| {
            EventGroup::Switch {
                page_out_us,
                total_us,
            }
        }),
    ]
}

/// Feed `groups` into a collector. Group `offset + i` stamps its events
/// at `t = offset + i` and numbers its switch (if any) `offset + i`, so
/// a shard re-feeding a slice reproduces exactly the serial timestamps
/// and switch ids.
fn collect(groups: &[EventGroup], offset: usize) -> Collector {
    let mut c = Collector::new();
    for (i, g) in groups.iter().enumerate() {
        let at = SimTime::from_us((offset + i) as u64);
        match g {
            EventGroup::One(ev) => c.on_event(at, 0, ev),
            EventGroup::Switch {
                page_out_us,
                total_us,
            } => {
                let switch = (offset + i) as u64;
                c.on_event(
                    at,
                    0,
                    &ObsEvent::SwitchPhase {
                        switch,
                        phase: SwitchPhaseKind::PageOut,
                        dur_us: *page_out_us,
                    },
                );
                c.on_event(
                    at,
                    0,
                    &ObsEvent::SwitchDone {
                        switch,
                        total_us: *total_us,
                    },
                );
            }
        }
    }
    c
}

/// Everything observable about a collector, for equality checks.
fn collector_fingerprint(c: &Collector) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        c.counters,
        c.switch_records(),
        hist_fingerprint(&c.switch_total),
        hist_fingerprint(&c.fault_service),
        hist_fingerprint(&c.disk_wait),
        hist_fingerprint(&c.disk_service),
        hist_fingerprint(&c.barrier_skew),
    )
}

proptest! {
    /// Contiguous-block sharding (what the registry fan-out does: each
    /// shard owns a slice of the work list) merged in shard order equals
    /// the serial collector, for 2 and 8 shards.
    #[test]
    fn collector_merge_is_shard_count_invariant(
        groups in proptest::collection::vec(event_group(), 1..120),
    ) {
        let serial = collect(&groups, 0);
        for shards in [2usize, 8] {
            let chunk = groups.len().div_ceil(shards);
            let mut merged = Collector::new();
            let mut offset = 0;
            for part in groups.chunks(chunk) {
                // Re-feed with the original global timestamps and switch
                // ids so the switch records match the serial run exactly.
                merged.merge(&collect(part, offset));
                offset += part.len();
            }
            prop_assert_eq!(
                collector_fingerprint(&merged),
                collector_fingerprint(&serial),
                "shards={}", shards
            );
        }
    }

    /// Collector merge is associative.
    #[test]
    fn collector_merge_is_associative(
        a in proptest::collection::vec(event_group(), 0..40),
        b in proptest::collection::vec(event_group(), 0..40),
        c in proptest::collection::vec(event_group(), 0..40),
    ) {
        let (ca, cb, cc) = (collect(&a, 0), collect(&b, 100), collect(&c, 200));
        let mut left = Collector::new();
        left.merge(&ca);
        left.merge(&cb);
        left.merge(&cc);
        let mut bc = Collector::new();
        bc.merge(&cb);
        bc.merge(&cc);
        let mut right = Collector::new();
        right.merge(&ca);
        right.merge(&bc);
        prop_assert_eq!(collector_fingerprint(&left), collector_fingerprint(&right));
    }
}

#[test]
fn empty_histogram_answers_zero() {
    let h = LatencyHistogram::default();
    for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
        assert_eq!(h.percentile_us(p), 0);
    }
}

#[test]
fn all_zero_samples_answer_zero() {
    let h = build(&[0, 0, 0, 0]);
    for p in [0.0, 50.0, 100.0] {
        assert_eq!(h.percentile_us(p), 0);
    }
}

#[test]
fn u64_max_saturates_without_panicking() {
    let h = build(&[u64::MAX, u64::MAX, 1]);
    assert_eq!(h.percentile_us(100.0), u64::MAX);
    assert!(h.percentile_us(0.0) <= u64::MAX);
}
