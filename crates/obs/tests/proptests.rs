//! Property tests for `LatencyHistogram::percentile_us` at bucket
//! boundaries.
//!
//! The histogram stores log2 buckets (bucket 0 holds zeros, bucket `i`
//! covers `[2^(i-1), 2^i)`), so a percentile estimate cannot be exact —
//! its documented contract is *bucket accuracy*: the estimate lands in
//! the same bucket as the exact sample at the ceiling of the percentile
//! rank. These properties pin that contract adversarially across power-
//! of-two boundary values (a strict value-ratio band is provably
//! unattainable: with samples `[1, 1_000_000]`, p=1 must answer from the
//! top bucket while the exact interpolated value is near the bottom).

use agp_obs::LatencyHistogram;
use proptest::prelude::*;

/// The bucket index `LatencyHistogram` files `v` under.
fn bucket_of(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

/// Values biased hard toward bucket edges: exact powers of two, one
/// below, one above, zero, and `u64::MAX`.
fn boundary_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        (0u32..63).prop_map(|k| 1u64 << k),
        (1u32..64).prop_map(|k| (1u64 << k) - 1),
        (0u32..62).prop_map(|k| (1u64 << k) + 1),
        any::<u64>(),
    ]
}

fn build(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// The estimate's bucket equals the bucket of the exact sample at
    /// `ceil(rank)` — the histogram never answers from the wrong bucket,
    /// even when the rank straddles empty buckets.
    #[test]
    fn estimate_lands_in_the_exact_samples_bucket(
        mut samples in proptest::collection::vec(boundary_value(), 1..200),
        p in 0u32..=100u32,
    ) {
        let h = build(&samples);
        samples.sort_unstable();
        let p = p as f64;
        let est = h.percentile_us(p);
        // Mirror the implementation's rank formula exactly.
        let rank = (p / 100.0) * (samples.len() - 1) as f64;
        let ceil_idx = (rank.ceil() as usize).min(samples.len() - 1);
        let exact_hi = samples[ceil_idx];
        prop_assert_eq!(
            bucket_of(est),
            bucket_of(exact_hi),
            "p={} est={} exact-hi={} over {} samples",
            p, est, exact_hi, samples.len()
        );
    }

    /// Estimates never exceed the recorded maximum, and p=100 hits it
    /// exactly.
    #[test]
    fn estimate_is_bounded_by_max_and_p100_is_exact(
        samples in proptest::collection::vec(boundary_value(), 1..200),
        p in 0u32..=100u32,
    ) {
        let h = build(&samples);
        prop_assert!(h.percentile_us(p as f64) <= h.max_us());
        prop_assert_eq!(h.percentile_us(100.0), h.max_us());
    }

    /// Percentiles are monotone in `p`.
    #[test]
    fn estimates_are_monotone_in_p(
        samples in proptest::collection::vec(boundary_value(), 1..200),
        p1 in 0u32..=100u32,
        p2 in 0u32..=100u32,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let h = build(&samples);
        prop_assert!(h.percentile_us(lo as f64) <= h.percentile_us(hi as f64));
    }

    /// A single sample answers every percentile exactly.
    #[test]
    fn single_sample_is_exact_at_every_percentile(
        v in boundary_value(),
        p in 0u32..=100u32,
    ) {
        let h = build(&[v]);
        prop_assert_eq!(h.percentile_us(p as f64), v);
    }

    /// A saturated single-bucket histogram (every sample equal) stays
    /// inside that bucket at every percentile and is exact at p=100.
    #[test]
    fn saturated_single_bucket_stays_in_bucket(
        v in boundary_value(),
        n in 1usize..64,
        p in 0u32..=100u32,
    ) {
        let h = build(&vec![v; n]);
        let est = h.percentile_us(p as f64);
        prop_assert_eq!(bucket_of(est), bucket_of(v));
        prop_assert_eq!(h.percentile_us(100.0), v);
    }
}

#[test]
fn empty_histogram_answers_zero() {
    let h = LatencyHistogram::default();
    for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
        assert_eq!(h.percentile_us(p), 0);
    }
}

#[test]
fn all_zero_samples_answer_zero() {
    let h = build(&[0, 0, 0, 0]);
    for p in [0.0, 50.0, 100.0] {
        assert_eq!(h.percentile_us(p), 0);
    }
}

#[test]
fn u64_max_saturates_without_panicking() {
    let h = build(&[u64::MAX, u64::MAX, 1]);
    assert_eq!(h.percentile_us(100.0), u64::MAX);
    assert!(h.percentile_us(0.0) <= u64::MAX);
}
