//! The aggregating collector sink: counters, latency histograms, and the
//! per-switch phase breakdown.

use crate::event::{ObsEvent, SwitchPhaseKind};
use crate::hist::LatencyHistogram;
use crate::observer::Observer;
use agp_sim::SimTime;

/// Monotonic event counters (everything the stream carries, summed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Kernel faults raised needing a swap-in read.
    pub faults_major: u64,
    /// Kernel faults raised needing only a zero fill.
    pub faults_minor: u64,
    /// Major faults serviced by the engine (with an I/O plan).
    pub majors_serviced: u64,
    /// Read-ahead neighbor pages mapped in.
    pub readahead_pages: u64,
    /// Pages evicted (policy-level `evict` events).
    pub evictions: u64,
    /// Of those, evictions of the currently running process (§3.1).
    pub false_evictions: u64,
    /// Of those, evictions recorded for adaptive page-in replay.
    pub recorded_evictions: u64,
    /// Runs of the reclaim path.
    pub reclaim_runs: u64,
    /// Frames freed by reclaim.
    pub reclaim_freed: u64,
    /// Pages evicted by aggressive page-out at switches.
    pub aggressive_pages: u64,
    /// Pages replayed by adaptive page-in.
    pub replayed_pages: u64,
    /// Recorded pages skipped at replay.
    pub replay_skipped: u64,
    /// Background-writer bursts that found work.
    pub bg_ticks: u64,
    /// Pages cleaned by the background writer.
    pub bg_pages: u64,
    /// Disk read requests.
    pub disk_reads: u64,
    /// Disk write requests.
    pub disk_writes: u64,
    /// Pages moved by disk reads.
    pub disk_pages_read: u64,
    /// Pages moved by disk writes.
    pub disk_pages_written: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Telemetry gauge samples delivered (node + per-process).
    pub gauge_samples: u64,
    /// Gang switches completed (including the initial placement).
    pub switches: u64,
    /// Total events delivered to this collector.
    pub events: u64,
    /// Injected disk errors (chaos). Failed requests are *not* counted
    /// in `disk_reads`/`disk_writes` or the page totals — errored I/O
    /// moved nothing.
    pub fault_disk_errors: u64,
    /// Injected disk latency-spike penalty, summed µs (chaos).
    pub fault_disk_slow_us: u64,
    /// Disk request retries after backoff (chaos recovery).
    pub fault_io_retries: u64,
    /// Node crashes (chaos).
    pub fault_node_crashes: u64,
    /// Node restarts (chaos recovery).
    pub fault_node_restarts: u64,
    /// Jobs requeued after a crash (chaos recovery).
    pub fault_jobs_requeued: u64,
    /// Barrier release timeouts / re-issues (chaos recovery).
    pub fault_barrier_timeouts: u64,
    /// Frames demanded by memory-pressure bursts (chaos).
    pub fault_mem_pressure_pages: u64,
    /// Nodes where adaptive page-in degraded to demand paging (chaos
    /// graceful degradation).
    pub fault_ai_degrades: u64,
}

impl ObsCounters {
    /// Fold `other` into `self`. Every field is a monotonic sum, so the
    /// merge is plain addition (the chaos slow-µs total saturates like
    /// its accumulation path); associative and commutative by
    /// construction.
    pub fn merge(&mut self, other: &ObsCounters) {
        let ObsCounters {
            faults_major,
            faults_minor,
            majors_serviced,
            readahead_pages,
            evictions,
            false_evictions,
            recorded_evictions,
            reclaim_runs,
            reclaim_freed,
            aggressive_pages,
            replayed_pages,
            replay_skipped,
            bg_ticks,
            bg_pages,
            disk_reads,
            disk_writes,
            disk_pages_read,
            disk_pages_written,
            barriers,
            gauge_samples,
            switches,
            events,
            fault_disk_errors,
            fault_disk_slow_us,
            fault_io_retries,
            fault_node_crashes,
            fault_node_restarts,
            fault_jobs_requeued,
            fault_barrier_timeouts,
            fault_mem_pressure_pages,
            fault_ai_degrades,
        } = *other;
        self.faults_major += faults_major;
        self.faults_minor += faults_minor;
        self.majors_serviced += majors_serviced;
        self.readahead_pages += readahead_pages;
        self.evictions += evictions;
        self.false_evictions += false_evictions;
        self.recorded_evictions += recorded_evictions;
        self.reclaim_runs += reclaim_runs;
        self.reclaim_freed += reclaim_freed;
        self.aggressive_pages += aggressive_pages;
        self.replayed_pages += replayed_pages;
        self.replay_skipped += replay_skipped;
        self.bg_ticks += bg_ticks;
        self.bg_pages += bg_pages;
        self.disk_reads += disk_reads;
        self.disk_writes += disk_writes;
        self.disk_pages_read += disk_pages_read;
        self.disk_pages_written += disk_pages_written;
        self.barriers += barriers;
        self.gauge_samples += gauge_samples;
        self.switches += switches;
        self.events += events;
        self.fault_disk_errors += fault_disk_errors;
        self.fault_disk_slow_us = self.fault_disk_slow_us.saturating_add(fault_disk_slow_us);
        self.fault_io_retries += fault_io_retries;
        self.fault_node_crashes += fault_node_crashes;
        self.fault_node_restarts += fault_node_restarts;
        self.fault_jobs_requeued += fault_jobs_requeued;
        self.fault_barrier_timeouts += fault_barrier_timeouts;
        self.fault_mem_pressure_pages += fault_mem_pressure_pages;
        self.fault_ai_degrades += fault_ai_degrades;
    }
}

/// One gang switch decomposed into the protocol's four phases. The phase
/// durations sum to `total_us` exactly (asserted by the cluster tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Monotonic switch number (0 is the initial placement).
    pub switch: u64,
    /// Instant the switch began, µs.
    pub at_us: u64,
    /// STOP-delivery phase, µs.
    pub stop_us: u64,
    /// Page-out phase (aggressive/selective writes draining), µs.
    pub page_out_us: u64,
    /// Page-in phase (adaptive replay reads draining), µs.
    pub page_in_us: u64,
    /// CONT-delivery phase, µs.
    pub cont_us: u64,
    /// Total switch duration, µs.
    pub total_us: u64,
}

impl SwitchRecord {
    /// Sum of the four phase durations; equals `total_us` for a
    /// well-formed stream.
    pub fn phase_sum_us(&self) -> u64 {
        self.stop_us + self.page_out_us + self.page_in_us + self.cont_us
    }
}

/// The aggregating sink: attach via [`crate::ObsLink::to`], read back
/// after the run.
#[derive(Clone, Debug, Default)]
pub struct Collector {
    /// Monotonic counters.
    pub counters: ObsCounters,
    /// Total switch duration distribution.
    pub switch_total: LatencyHistogram,
    /// Fault-service stall distribution.
    pub fault_service: LatencyHistogram,
    /// Disk queue-wait distribution.
    pub disk_wait: LatencyHistogram,
    /// Disk service-time distribution.
    pub disk_service: LatencyHistogram,
    /// Barrier arrival-skew distribution.
    pub barrier_skew: LatencyHistogram,
    switches: Vec<SwitchRecord>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Per-switch phase breakdowns, in switch order.
    pub fn switch_records(&self) -> &[SwitchRecord] {
        &self.switches
    }

    /// Fold `other` into `self`: counters and histograms merge
    /// element-wise, and `other`'s switch records are **appended** in
    /// merge order. Appending pins the order — merging shards in a fixed
    /// (e.g. shard-index) order reproduces the serial record sequence
    /// byte for byte, and the operation stays associative:
    /// `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` concatenate the same lists.
    pub fn merge(&mut self, other: &Collector) {
        self.counters.merge(&other.counters);
        self.switch_total.merge(&other.switch_total);
        self.fault_service.merge(&other.fault_service);
        self.disk_wait.merge(&other.disk_wait);
        self.disk_service.merge(&other.disk_service);
        self.barrier_skew.merge(&other.barrier_skew);
        self.switches.extend_from_slice(&other.switches);
    }

    fn record_mut(&mut self, switch: u64, at: SimTime) -> &mut SwitchRecord {
        let needs_new = self.switches.last().map(|r| r.switch) != Some(switch);
        if needs_new {
            self.switches.push(SwitchRecord {
                switch,
                at_us: at.as_us(),
                ..SwitchRecord::default()
            });
        }
        // The branch above pushes a record when the list is empty or stale.
        // agp-lint: allow(panic-site): push above guarantees non-empty
        self.switches.last_mut().expect("just ensured")
    }
}

impl Observer for Collector {
    fn on_event(&mut self, at: SimTime, _src: u32, ev: &ObsEvent) {
        self.counters.events += 1;
        match *ev {
            ObsEvent::PageFault { major, .. } => {
                if major {
                    self.counters.faults_major += 1;
                } else {
                    self.counters.faults_minor += 1;
                }
            }
            ObsEvent::MajorFault { readahead, .. } => {
                self.counters.majors_serviced += 1;
                self.counters.readahead_pages += readahead as u64;
            }
            ObsEvent::ReadaheadHit { .. } => {}
            ObsEvent::EvictBatch { .. } => {}
            ObsEvent::Evict {
                false_eviction,
                recorded,
                ..
            } => {
                self.counters.evictions += 1;
                if false_eviction {
                    self.counters.false_evictions += 1;
                }
                if recorded {
                    self.counters.recorded_evictions += 1;
                }
            }
            ObsEvent::Reclaim { freed, .. } => {
                self.counters.reclaim_runs += 1;
                self.counters.reclaim_freed += freed;
            }
            ObsEvent::AggressiveOut { pages, .. } => {
                self.counters.aggressive_pages += pages;
            }
            // Per-page detail; the Replay summary below carries the
            // aggregates this collector counts.
            ObsEvent::ReplayPage { .. } => {}
            ObsEvent::Replay { pages, skipped, .. } => {
                self.counters.replayed_pages += pages;
                self.counters.replay_skipped += skipped;
            }
            ObsEvent::BgTick { pages, .. } => {
                self.counters.bg_ticks += 1;
                self.counters.bg_pages += pages;
            }
            ObsEvent::DiskRequest {
                write,
                pages,
                wait_us,
                service_us,
                ..
            } => {
                if write {
                    self.counters.disk_writes += 1;
                    self.counters.disk_pages_written += pages;
                } else {
                    self.counters.disk_reads += 1;
                    self.counters.disk_pages_read += pages;
                }
                self.disk_wait.record(wait_us);
                self.disk_service.record(service_us);
            }
            ObsEvent::FaultService { wait_us, .. } => {
                self.fault_service.record(wait_us);
            }
            ObsEvent::BarrierWait { skew_us, .. } => {
                self.counters.barriers += 1;
                self.barrier_skew.record(skew_us);
            }
            ObsEvent::SwitchPhase {
                switch,
                phase,
                dur_us,
            } => {
                let rec = self.record_mut(switch, at);
                match phase {
                    SwitchPhaseKind::Stop => rec.stop_us = dur_us,
                    SwitchPhaseKind::PageOut => rec.page_out_us = dur_us,
                    SwitchPhaseKind::PageIn => rec.page_in_us = dur_us,
                    SwitchPhaseKind::Cont => rec.cont_us = dur_us,
                }
            }
            ObsEvent::SwitchDone { switch, total_us } => {
                let rec = self.record_mut(switch, at);
                rec.total_us = total_us;
                self.counters.switches += 1;
                self.switch_total.record(total_us);
            }
            ObsEvent::NodeGauge { .. } | ObsEvent::ProcGauge { .. } => {
                self.counters.gauge_samples += 1;
            }
            // Chaos events: counted in their own bucket so fault-free
            // aggregates (completed requests, moved pages) stay coherent.
            ObsEvent::DiskError { .. } => {
                self.counters.fault_disk_errors += 1;
            }
            ObsEvent::DiskSlowdown { penalty_us } => {
                self.counters.fault_disk_slow_us += penalty_us;
            }
            ObsEvent::IoRetry { .. } => {
                self.counters.fault_io_retries += 1;
            }
            ObsEvent::NodeCrash { .. } => {
                self.counters.fault_node_crashes += 1;
            }
            ObsEvent::NodeRestart { .. } => {
                self.counters.fault_node_restarts += 1;
            }
            ObsEvent::JobRequeued { .. } => {
                self.counters.fault_jobs_requeued += 1;
            }
            ObsEvent::BarrierTimeout { .. } => {
                self.counters.fault_barrier_timeouts += 1;
            }
            ObsEvent::MemPressure { target, .. } => {
                self.counters.fault_mem_pressure_pages += target;
            }
            ObsEvent::AiDegraded { .. } => {
                self.counters.fault_ai_degrades += 1;
            }
            // Incident markers: the flight recorder captures these raw;
            // no aggregate counter exists (or should) for them.
            ObsEvent::IoExhausted { .. } => {}
            ObsEvent::BarrierExhausted { .. } => {}
            ObsEvent::WatchdogTrip { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(c: &mut Collector, evs: &[ObsEvent]) {
        for (i, ev) in evs.iter().enumerate() {
            c.on_event(SimTime::from_us(i as u64), 0, ev);
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Collector::new();
        feed(
            &mut c,
            &[
                ObsEvent::PageFault {
                    pid: 1,
                    page: 0,
                    major: true,
                },
                ObsEvent::PageFault {
                    pid: 1,
                    page: 1,
                    major: false,
                },
                ObsEvent::MajorFault {
                    pid: 1,
                    page: 0,
                    readahead: 3,
                    write_pages: 0,
                    read_pages: 4,
                },
                ObsEvent::Evict {
                    pid: 2,
                    page: 9,
                    false_eviction: true,
                    recorded: false,
                },
                ObsEvent::Evict {
                    pid: 2,
                    page: 10,
                    false_eviction: false,
                    recorded: true,
                },
                ObsEvent::Reclaim {
                    target: 16,
                    freed: 12,
                    write_pages: 8,
                },
                ObsEvent::DiskRequest {
                    write: true,
                    extents: 1,
                    pages: 8,
                    wait_us: 5,
                    seek_us: 20,
                    service_us: 100,
                },
                ObsEvent::DiskRequest {
                    write: false,
                    extents: 1,
                    pages: 4,
                    wait_us: 0,
                    seek_us: 0,
                    service_us: 50,
                },
                ObsEvent::BarrierWait {
                    ranks: 2,
                    skew_us: 77,
                    lag_us: 200,
                },
            ],
        );
        assert_eq!(c.counters.faults_major, 1);
        assert_eq!(c.counters.faults_minor, 1);
        assert_eq!(c.counters.majors_serviced, 1);
        assert_eq!(c.counters.readahead_pages, 3);
        assert_eq!(c.counters.evictions, 2);
        assert_eq!(c.counters.false_evictions, 1);
        assert_eq!(c.counters.recorded_evictions, 1);
        assert_eq!(c.counters.reclaim_runs, 1);
        assert_eq!(c.counters.reclaim_freed, 12);
        assert_eq!(c.counters.disk_writes, 1);
        assert_eq!(c.counters.disk_reads, 1);
        assert_eq!(c.counters.disk_pages_written, 8);
        assert_eq!(c.counters.disk_pages_read, 4);
        assert_eq!(c.counters.barriers, 1);
        assert_eq!(c.counters.events, 9);
        assert_eq!(c.disk_wait.count(), 2);
        assert_eq!(c.barrier_skew.max_us(), 77);
    }

    #[test]
    fn switch_records_assemble_from_phases() {
        let mut c = Collector::new();
        let at = SimTime::from_secs(10);
        for (phase, dur) in [
            (SwitchPhaseKind::Stop, 0),
            (SwitchPhaseKind::PageOut, 300),
            (SwitchPhaseKind::PageIn, 700),
            (SwitchPhaseKind::Cont, 0),
        ] {
            c.on_event(
                at,
                u32::MAX,
                &ObsEvent::SwitchPhase {
                    switch: 1,
                    phase,
                    dur_us: dur,
                },
            );
        }
        c.on_event(
            at,
            u32::MAX,
            &ObsEvent::SwitchDone {
                switch: 1,
                total_us: 1000,
            },
        );
        let recs = c.switch_records();
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        assert_eq!(r.switch, 1);
        assert_eq!(r.at_us, 10_000_000);
        assert_eq!(r.page_out_us, 300);
        assert_eq!(r.page_in_us, 700);
        assert_eq!(r.total_us, 1000);
        assert_eq!(r.phase_sum_us(), r.total_us);
        assert_eq!(c.counters.switches, 1);
        assert_eq!(c.switch_total.count(), 1);
    }

    #[test]
    fn consecutive_switches_get_separate_records() {
        let mut c = Collector::new();
        for sw in 0..3u64 {
            let at = SimTime::from_secs(sw);
            c.on_event(
                at,
                0,
                &ObsEvent::SwitchPhase {
                    switch: sw,
                    phase: SwitchPhaseKind::PageOut,
                    dur_us: sw,
                },
            );
            c.on_event(
                at,
                0,
                &ObsEvent::SwitchDone {
                    switch: sw,
                    total_us: sw,
                },
            );
        }
        assert_eq!(c.switch_records().len(), 3);
        assert_eq!(c.switch_records()[2].page_out_us, 2);
    }

    #[test]
    fn zero_length_quantum_switch_is_recorded_as_all_zero() {
        // A zero-length quantum produces a switch whose four phases and
        // total are all zero; it must still get a record and count.
        let mut c = Collector::new();
        let at = SimTime::from_us(77);
        for phase in [
            SwitchPhaseKind::Stop,
            SwitchPhaseKind::PageOut,
            SwitchPhaseKind::PageIn,
            SwitchPhaseKind::Cont,
        ] {
            c.on_event(
                at,
                u32::MAX,
                &ObsEvent::SwitchPhase {
                    switch: 0,
                    phase,
                    dur_us: 0,
                },
            );
        }
        c.on_event(
            at,
            u32::MAX,
            &ObsEvent::SwitchDone {
                switch: 0,
                total_us: 0,
            },
        );
        let recs = c.switch_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].total_us, 0);
        assert_eq!(recs[0].phase_sum_us(), 0);
        assert_eq!(recs[0].at_us, 77);
        assert_eq!(c.counters.switches, 1);
        assert_eq!(c.switch_total.count(), 1);
        // The zero total lands in the histogram's zero bucket, not lost.
        assert_eq!(c.switch_total.percentile_us(100.0), 0);
    }

    #[test]
    fn switch_without_page_traffic_leaves_disk_counters_untouched() {
        let mut c = Collector::new();
        let at = SimTime::from_secs(3);
        c.on_event(
            at,
            u32::MAX,
            &ObsEvent::SwitchPhase {
                switch: 2,
                phase: SwitchPhaseKind::PageOut,
                dur_us: 0,
            },
        );
        c.on_event(
            at,
            u32::MAX,
            &ObsEvent::SwitchDone {
                switch: 2,
                total_us: 0,
            },
        );
        assert_eq!(c.counters.disk_reads, 0);
        assert_eq!(c.counters.disk_writes, 0);
        assert_eq!(c.counters.disk_pages_read, 0);
        assert_eq!(c.counters.disk_pages_written, 0);
        assert_eq!(c.disk_wait.count(), 0);
        assert_eq!(c.disk_service.count(), 0);
        assert_eq!(c.switch_records().len(), 1);
        assert_eq!(c.counters.events, 2);
    }

    #[test]
    fn merge_matches_serial_feed_and_pins_record_order() {
        // Feed one event stream serially, and the same stream split
        // across two shard collectors; merging in shard order must
        // reproduce the serial collector exactly.
        let evs = [
            ObsEvent::PageFault {
                pid: 1,
                page: 0,
                major: true,
            },
            ObsEvent::SwitchDone {
                switch: 0,
                total_us: 10,
            },
            ObsEvent::PageFault {
                pid: 2,
                page: 4,
                major: false,
            },
            ObsEvent::SwitchDone {
                switch: 1,
                total_us: 20,
            },
            ObsEvent::BarrierWait {
                ranks: 2,
                skew_us: 5,
                lag_us: 9,
            },
        ];
        let mut serial = Collector::new();
        feed(&mut serial, &evs);
        let mut a = Collector::new();
        feed(&mut a, &evs[..2]);
        let mut b = Collector::new();
        for (i, ev) in evs[2..].iter().enumerate() {
            b.on_event(SimTime::from_us((2 + i) as u64), 0, ev);
        }
        let mut merged = Collector::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.counters, serial.counters);
        assert_eq!(merged.switch_records(), serial.switch_records());
        assert_eq!(merged.switch_total.count(), serial.switch_total.count());
        assert_eq!(merged.barrier_skew.max_us(), serial.barrier_skew.max_us());
    }

    #[test]
    fn merge_is_associative_over_three_shards() {
        let mk = |sw: u64, total: u64| {
            let mut c = Collector::new();
            c.on_event(
                SimTime::from_us(sw),
                0,
                &ObsEvent::SwitchDone {
                    switch: sw,
                    total_us: total,
                },
            );
            c
        };
        let (a, b, c) = (mk(0, 5), mk(1, 6), mk(2, 7));
        let mut left = Collector::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        let mut bc = Collector::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut right = Collector::new();
        right.merge(&a);
        right.merge(&bc);
        assert_eq!(left.counters, right.counters);
        assert_eq!(left.switch_records(), right.switch_records());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut c = Collector::new();
        feed(
            &mut c,
            &[ObsEvent::SwitchDone {
                switch: 0,
                total_us: 3,
            }],
        );
        let counters = c.counters;
        let records = c.switch_records().to_vec();
        c.merge(&Collector::new());
        assert_eq!(c.counters, counters);
        assert_eq!(c.switch_records(), records.as_slice());
    }

    #[test]
    fn empty_stream_yields_a_default_collector() {
        // A collector that never saw an event (e.g. merging an empty
        // trace) reads back as all-default and answers percentile
        // queries with zero rather than panicking.
        let c = Collector::new();
        assert_eq!(c.counters, ObsCounters::default());
        assert!(c.switch_records().is_empty());
        assert_eq!(c.switch_total.count(), 0);
        assert_eq!(c.fault_service.percentile_us(99.0), 0);
        assert_eq!(c.disk_wait.percentile_us(50.0), 0);
        assert_eq!(c.barrier_skew.max_us(), 0);
    }
}
