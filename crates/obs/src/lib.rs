//! # agp-obs — structured simulation-event tracing
//!
//! The paper's entire argument is about *when* paging I/O happens relative
//! to the quantum boundary (Fig. 6's activity traces, §4.1's
//! switching-overhead decomposition). The run-level aggregates
//! (`EngineStats`, `ActivityTrace`) cannot see inside a single gang
//! switch; this crate provides the event-level view:
//!
//! * [`ObsEvent`] — a typed, sim-time-stamped event taxonomy covering the
//!   fault path, eviction/reclaim, the four adaptive-paging policies, the
//!   background writer, the paging disk, barriers, and the switch
//!   protocol's four phases (STOP → page-out → page-in → CONT);
//! * [`Observer`] / [`ObsLink`] — the emission seam. Instrumented
//!   components hold an [`ObsLink`]; a link with no sinks is the no-op
//!   default whose `emit` is a single branch and never constructs the
//!   event (the closure argument is not called), so the hot path pays
//!   nothing when tracing is off;
//! * [`Collector`] — an aggregating sink: monotonic counters, fixed-bucket
//!   latency histograms (switch duration, fault service time, disk
//!   wait/service, barrier skew) and a per-switch [`SwitchRecord`]
//!   decomposing each gang switch into its four phases;
//! * [`RingBuffer`] — an in-memory last-N sink for interactive debugging;
//! * [`JsonlWriter`] — a line-per-event exporter whose output is
//!   **byte-identical for identical seeds** (hand-rolled encoding with a
//!   fixed field order; no float formatting), turning the simulator's
//!   determinism guarantee into a diffable artifact. [`trace_diff`]
//!   pinpoints the first divergent event between two such streams;
//! * [`ChunkedJsonlWriter`] / [`BudgetedSink`] — the bounded-memory
//!   streaming path: incremental flushing (O(chunk) buffered bytes) and
//!   last-K retention with an explicit drop counter so `--obs-budget`
//!   truncation is never silent;
//! * [`flight`] — the black-box flight recorder: a process-global,
//!   atomically gated last-N window that watchdog trips or error unwinds
//!   freeze into a byte-deterministic incident dump for `agp postmortem`.
//!
//! ## Merging shards
//!
//! [`Collector`], [`ObsCounters`] and [`LatencyHistogram`] carry
//! associative `merge()` operations: counters and buckets add, switch
//! records append in merge order. Folding per-shard collectors in a fixed
//! shard order therefore reproduces the serial collector exactly — the
//! algebra behind the deterministic `agp run --jobs N` fan-out.
//!
//! ## Source tags
//!
//! Every delivered event carries a `src` tag identifying the emitting
//! component: the node index for kernel/engine/disk events, the job index
//! for barrier events, and [`SRC_CLUSTER`] for cluster-level events
//! (switch phases, fault service times).
//!
//! ## Zero dependencies
//!
//! Only `agp-sim` (for [`agp_sim::SimTime`]); no serde, no external
//! crates. The JSONL encoding is hand-rolled precisely so that byte
//! stability is owned by this crate and not by a serializer's formatting
//! choices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod event;
pub mod flight;
mod hist;
mod observer;
mod sink;
mod stream;

pub use collector::{Collector, ObsCounters, SwitchRecord};
pub use event::{ObsEvent, SwitchPhaseKind, WatchdogRule, SRC_CLUSTER};
pub use hist::LatencyHistogram;
pub use observer::{shared, ObsLink, Observer, SharedSink};
pub use sink::{
    trace_diff, JsonlWriter, RingBuffer, TraceDivergence, TracedEvent, DIFF_CONTEXT_LINES,
};
pub use stream::{BudgetedSink, ChunkedJsonlWriter, DEFAULT_CHUNK_LINES};
