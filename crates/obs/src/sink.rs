//! Event sinks: in-memory ring buffer, deterministic JSONL exporter, and
//! the trace-diff helper.

use crate::event::ObsEvent;
use crate::observer::Observer;
use agp_sim::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;

/// One delivered event with its stamp and source tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedEvent {
    /// Simulation instant of the event.
    pub at: SimTime,
    /// Emitting component's source tag.
    pub src: u32,
    /// The event itself.
    pub event: ObsEvent,
}

/// A bounded in-memory sink keeping the most recent events, for
/// interactive debugging and tests.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    cap: usize,
    buf: VecDeque<TracedEvent>,
    total: u64,
}

impl RingBuffer {
    /// A ring keeping at most `cap` events (`cap` 0 keeps none).
    pub fn new(cap: usize) -> Self {
        RingBuffer {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            total: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TracedEvent> {
        self.buf.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever delivered (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.total
    }

    /// Events delivered but no longer retained (evicted by the capacity
    /// bound, or never stored when `cap` is 0). The bounded-memory
    /// pipeline reports this so truncation is never silent.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Drain the retained events, oldest first.
    pub fn drain(&mut self) -> Vec<TracedEvent> {
        self.buf.drain(..).collect()
    }
}

impl Observer for RingBuffer {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        self.total += 1;
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(TracedEvent {
            at,
            src,
            event: ev.clone(),
        });
    }
}

/// A sink writing one JSON object per line to any [`Write`] target.
///
/// The encoding is [`ObsEvent::to_json_line`]: hand-rolled, fixed field
/// order, integers only — so two runs with identical seeds produce
/// byte-identical files. I/O errors are latched (the stream stops
/// writing) and surfaced by [`JsonlWriter::finish`].
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlWriter<W> {
    /// Wrap a write target.
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the inner writer, or the first latched I/O error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Observer for JsonlWriter<W> {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        if self.error.is_some() {
            return;
        }
        let line = ev.to_json_line(at, src);
        let res = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"));
        match res {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Shared lines shown on each side of a divergence.
pub const DIFF_CONTEXT_LINES: usize = 3;

/// The first point where two JSONL traces differ, with up to
/// [`DIFF_CONTEXT_LINES`] lines of context on each side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDivergence {
    /// 1-indexed line number of the first difference.
    pub line: u64,
    /// That line in the left trace (`None` if it ended first).
    pub left: Option<String>,
    /// That line in the right trace (`None` if it ended first).
    pub right: Option<String>,
    /// Up to [`DIFF_CONTEXT_LINES`] shared lines immediately before the
    /// divergence, in file order.
    pub before: Vec<String>,
    /// Up to [`DIFF_CONTEXT_LINES`] lines following the divergence in
    /// the left trace.
    pub left_after: Vec<String>,
    /// Up to [`DIFF_CONTEXT_LINES`] lines following the divergence in
    /// the right trace.
    pub right_after: Vec<String>,
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traces diverge at line {}:", self.line)?;
        let first_ctx = self.line as usize - self.before.len();
        for (i, l) in self.before.iter().enumerate() {
            writeln!(f, "  {:>6} | {l}", first_ctx + i)?;
        }
        match &self.left {
            Some(l) => writeln!(f, "  left:  {l}")?,
            None => writeln!(f, "  left:  <end of trace>")?,
        }
        match &self.right {
            Some(r) => writeln!(f, "  right: {r}")?,
            None => writeln!(f, "  right: <end of trace>")?,
        }
        for (i, l) in self.left_after.iter().enumerate() {
            writeln!(f, "  left  +{} | {l}", i + 1)?;
        }
        for (i, l) in self.right_after.iter().enumerate() {
            writeln!(f, "  right +{} | {l}", i + 1)?;
        }
        Ok(())
    }
}

/// Compare two JSONL traces line by line and report the first divergent
/// line (with surrounding context), or `None` when the traces are
/// identical.
pub fn trace_diff(left: &str, right: &str) -> Option<TraceDivergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut before: VecDeque<String> = VecDeque::with_capacity(DIFF_CONTEXT_LINES + 1);
    let mut line = 0u64;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => {
                if before.len() == DIFF_CONTEXT_LINES {
                    before.pop_front();
                }
                if let Some(shared) = a {
                    before.push_back(shared.to_string());
                }
            }
            (a, b) => {
                let tail = |it: std::str::Lines<'_>| {
                    it.take(DIFF_CONTEXT_LINES).map(str::to_string).collect()
                };
                return Some(TraceDivergence {
                    line,
                    left: a.map(str::to_string),
                    right: b.map(str::to_string),
                    before: before.into_iter().collect(),
                    left_after: tail(l),
                    right_after: tail(r),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(page: u32) -> ObsEvent {
        ObsEvent::ReadaheadHit { pid: 1, page }
    }

    #[test]
    fn ring_buffer_keeps_last_n() {
        let mut ring = RingBuffer::new(2);
        for i in 0..5 {
            ring.on_event(SimTime::from_us(i as u64), 0, &ev(i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_seen(), 5);
        let pages: Vec<u32> = ring
            .events()
            .map(|t| match t.event {
                ObsEvent::ReadaheadHit { page, .. } => page,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![3, 4]);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn zero_capacity_ring_counts_but_keeps_nothing() {
        let mut ring = RingBuffer::new(0);
        ring.on_event(SimTime::ZERO, 0, &ev(0));
        assert!(ring.is_empty());
        assert_eq!(ring.total_seen(), 1);
        assert_eq!(ring.dropped(), 1, "K=0 drops everything, visibly");
    }

    #[test]
    fn single_slot_ring_tracks_only_the_newest_event() {
        let mut ring = RingBuffer::new(1);
        assert_eq!(ring.dropped(), 0);
        for i in 0..4 {
            ring.on_event(SimTime::from_us(i as u64), 0, &ev(i));
            assert_eq!(ring.len(), 1, "K=1 never grows past one");
            let newest = ring.events().next().unwrap();
            assert_eq!(newest.at, SimTime::from_us(i as u64));
        }
        assert_eq!(ring.total_seen(), 4);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn ring_wraparound_preserves_order_and_drop_accounting() {
        // Drive the ring several full capacities past wraparound; the
        // retained window must stay the last `cap` events in delivery
        // order, and dropped() must account for every evicted one.
        let cap = 3;
        let mut ring = RingBuffer::new(cap);
        for i in 0..10u32 {
            ring.on_event(SimTime::from_us(i as u64), 0, &ev(i));
            let expect_len = cap.min(i as usize + 1);
            assert_eq!(ring.len(), expect_len);
            assert_eq!(ring.dropped() + ring.len() as u64, ring.total_seen());
        }
        let pages: Vec<u32> = ring
            .events()
            .map(|t| match t.event {
                ObsEvent::ReadaheadHit { page, .. } => page,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![7, 8, 9], "oldest-first after wraparound");
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn jsonl_writer_is_deterministic() {
        let render = || {
            let mut w = JsonlWriter::new(Vec::new());
            for i in 0..3 {
                w.on_event(SimTime::from_us(10 + i as u64), 2, &ev(i));
            }
            assert_eq!(w.lines(), 3);
            String::from_utf8(w.finish().unwrap()).unwrap()
        };
        let a = render();
        let b = render();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        assert!(a.starts_with("{\"t\":10,"));
    }

    #[test]
    fn trace_diff_finds_first_divergent_line() {
        let a = "x\ny\nz\n";
        let b = "x\nY\nz\n";
        let d = trace_diff(a, b).expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("y"));
        assert_eq!(d.right.as_deref(), Some("Y"));
        assert!(d.to_string().contains("line 2"));
    }

    #[test]
    fn trace_diff_reports_length_mismatch() {
        let a = "x\ny\n";
        let b = "x\n";
        let d = trace_diff(a, b).expect("must diverge");
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("y"));
        assert_eq!(d.right, None);
        assert!(d.to_string().contains("<end of trace>"));
    }

    #[test]
    fn trace_diff_pinpoints_gauge_divergence() {
        // Two streams identical except one NodeGauge value: the diff must
        // land on exactly that line, for both gauge-event kinds.
        let render = |free: u64, dirty: u64| {
            let mut w = JsonlWriter::new(Vec::new());
            w.on_event(
                SimTime::from_us(1),
                0,
                &ObsEvent::NodeGauge {
                    free_frames: free,
                    dirty_pages: 4,
                    disk_backlog_us: 0,
                    disk_busy_us: 10,
                    bg_cleaned: 0,
                },
            );
            w.on_event(
                SimTime::from_us(2),
                0,
                &ObsEvent::ProcGauge {
                    pid: 7,
                    resident: 100,
                    dirty,
                },
            );
            String::from_utf8(w.finish().unwrap()).unwrap()
        };
        let base = render(50, 9);
        assert_eq!(trace_diff(&base, &render(50, 9)), None);
        let d = trace_diff(&base, &render(51, 9)).expect("node gauge diverges");
        assert_eq!(d.line, 1);
        assert!(d.left.unwrap().contains("\"ev\":\"node_gauge\""));
        let d = trace_diff(&base, &render(50, 8)).expect("proc gauge diverges");
        assert_eq!(d.line, 2);
        assert!(d.right.unwrap().contains("\"ev\":\"proc_gauge\""));
    }

    #[test]
    fn identical_traces_have_no_diff() {
        assert_eq!(trace_diff("a\nb\n", "a\nb\n"), None);
        assert_eq!(trace_diff("", ""), None);
    }

    #[test]
    fn trace_diff_carries_three_lines_of_context() {
        let a = "1\n2\n3\n4\n5\n6\n7\n8\n";
        let b = "1\n2\n3\n4\nX\n6\n7\n9\n";
        let d = trace_diff(a, b).expect("must diverge");
        assert_eq!(d.line, 5);
        assert_eq!(d.before, vec!["2", "3", "4"]);
        assert_eq!(d.left_after, vec!["6", "7", "8"]);
        assert_eq!(d.right_after, vec!["6", "7", "9"]);
        let shown = d.to_string();
        assert!(shown.contains("| 4"), "context lines rendered: {shown}");
        assert!(shown.contains("left  +1 | 6"));
        assert!(shown.contains("right +3 | 9"));
    }

    #[test]
    fn trace_diff_context_is_short_near_the_edges() {
        let d = trace_diff("a\nz\n", "b\nz\n").expect("first line differs");
        assert_eq!(d.line, 1);
        assert!(d.before.is_empty());
        assert_eq!(d.left_after, vec!["z"]);
        // Length mismatch: the ended side has no after-context.
        let d = trace_diff("x\ny\n", "x\n").expect("length mismatch");
        assert_eq!(d.before, vec!["x"]);
        assert!(d.left_after.is_empty());
        assert!(d.right_after.is_empty());
    }
}
