//! Fixed-bucket latency histograms.

/// Number of buckets: one zero bucket plus one per power of two up to
/// `u64::MAX` (bucket `i ≥ 1` covers `[2^(i-1), 2^i)` µs).
const BUCKETS: usize = 65;

/// A fixed-bucket (log₂ microsecond) latency histogram.
///
/// Bucket 0 counts exact zeros; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. Fixed power-of-two buckets keep recording to a
/// handful of integer ops and make the rendered shape comparable across
/// runs regardless of the value range.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            64 - us.leading_zeros() as usize
        }
    }

    /// Record one value (microseconds).
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(us);
        self.max = self.max.max(us);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values, µs (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, µs.
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Mean recorded value, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets between the first and last occupied one
    /// (inclusive), as `(label, count)` rows ready for a bar chart.
    /// Interior zero buckets are kept so gaps in the distribution stay
    /// visible.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let first = match self.counts.iter().position(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        // position() found a nonzero bucket, so rposition() must too;
        // fall back to `first` rather than keeping a panic path.
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(first);
        (first..=last)
            .map(|i| (bucket_label(i), self.counts[i]))
            .collect()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean_us", &self.mean_us())
            .field("max_us", &self.max)
            .finish()
    }
}

/// Human label for a bucket's lower bound (`0`, `1us`, `512us`, `1ms`,
/// `1s`, …).
fn bucket_label(i: usize) -> String {
    if i == 0 {
        return "0".to_string();
    }
    let lo = 1u64 << (i - 1);
    if lo >= 1_000_000 {
        format!("{}s", lo / 1_000_000)
    } else if lo >= 1_000 {
        format!("{}ms", lo / 1_000)
    } else {
        format!("{lo}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let rows = h.rows();
        // Buckets: 0 -> 1, [1,2) -> 1, [2,4) -> 2, [4,8) -> 1.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], ("0".to_string(), 1));
        assert_eq!(rows[1], ("1us".to_string(), 1));
        assert_eq!(rows[2], ("2us".to_string(), 2));
        assert_eq!(rows[3], ("4us".to_string(), 1));
    }

    #[test]
    fn stats_track_inputs() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 60);
        assert_eq!(h.mean_us(), 20);
        assert_eq!(h.max_us(), 30);
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_histogram_has_no_rows() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert!(h.rows().is_empty());
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn interior_gaps_are_kept() {
        let mut h = LatencyHistogram::new();
        h.record(1); // bucket 1
        h.record(1 << 10); // bucket 11
        let rows = h.rows();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows.iter().filter(|(_, c)| *c > 0).count(), 2);
        assert_eq!(rows.last().unwrap().0, "1ms");
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.rows().len(), 1);
    }
}
