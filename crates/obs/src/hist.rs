//! Fixed-bucket latency histograms.

/// Number of buckets: one zero bucket plus one per power of two up to
/// `u64::MAX` (bucket `i ≥ 1` covers `[2^(i-1), 2^i)` µs).
const BUCKETS: usize = 65;

/// A fixed-bucket (log₂ microsecond) latency histogram.
///
/// Bucket 0 counts exact zeros; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. Fixed power-of-two buckets keep recording to a
/// handful of integer ops and make the rendered shape comparable across
/// runs regardless of the value range.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            64 - us.leading_zeros() as usize
        }
    }

    /// Record one value (microseconds).
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(us);
        self.max = self.max.max(us);
    }

    /// Fold `other` into `self`: per-bucket counts add, the sum saturates
    /// like [`LatencyHistogram::record`], and the max is the larger of the
    /// two. Merging is associative and commutative, so any shard tree
    /// (1, 2, 8 shards) collapses to the same histogram as serial
    /// recording — the property the fan-out parity tests pin.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values, µs (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, µs.
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Mean recorded value, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimate the `p`-th percentile (0–100), µs, by locating the bucket
    /// holding the target rank and interpolating linearly within its
    /// `[2^(i-1), 2^i)` range. Exact for bucket 0 (all zeros); elsewhere
    /// the estimate is within one bucket width of the true value. The top
    /// bucket is clamped to the recorded maximum. Returns 0 when empty;
    /// `p` is clamped to `[0, 100]`.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Target rank in [0, count-1], interpolation-style: rank r means
        // "the value below which r of the count-1 gaps fall".
        let rank = p / 100.0 * (self.count - 1) as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let hi_rank = (cum + c - 1) as f64;
            if rank <= hi_rank {
                if i == 0 {
                    return 0;
                }
                let lo = 1u64 << (i - 1);
                let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 }.min(self.max);
                if hi <= lo {
                    return lo.min(self.max);
                }
                if c == 1 {
                    // A lone occupant of the top bucket is the recorded
                    // maximum itself; elsewhere the floor is the best guess.
                    return if cum + c == self.count { self.max } else { lo };
                }
                // Fraction of the way through this bucket's occupants.
                let frac = (rank - cum as f64) / (c - 1) as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).min(self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Median estimate, µs (see [`LatencyHistogram::percentile_us`]).
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(50.0)
    }

    /// 90th-percentile estimate, µs.
    pub fn p90_us(&self) -> u64 {
        self.percentile_us(90.0)
    }

    /// 99th-percentile estimate, µs.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(99.0)
    }

    /// The non-empty buckets between the first and last occupied one
    /// (inclusive), as `(label, count)` rows ready for a bar chart.
    /// Interior zero buckets are kept so gaps in the distribution stay
    /// visible.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let first = match self.counts.iter().position(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        // position() found a nonzero bucket, so rposition() must too;
        // fall back to `first` rather than keeping a panic path.
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(first);
        (first..=last)
            .map(|i| (bucket_label(i), self.counts[i]))
            .collect()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean_us", &self.mean_us())
            .field("max_us", &self.max)
            .finish()
    }
}

/// Human label for a bucket's lower bound (`0`, `1us`, `512us`, `1ms`,
/// `1s`, …).
fn bucket_label(i: usize) -> String {
    if i == 0 {
        return "0".to_string();
    }
    let lo = 1u64 << (i - 1);
    if lo >= 1_000_000 {
        format!("{}s", lo / 1_000_000)
    } else if lo >= 1_000 {
        format!("{}ms", lo / 1_000)
    } else {
        format!("{lo}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let rows = h.rows();
        // Buckets: 0 -> 1, [1,2) -> 1, [2,4) -> 2, [4,8) -> 1.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], ("0".to_string(), 1));
        assert_eq!(rows[1], ("1us".to_string(), 1));
        assert_eq!(rows[2], ("2us".to_string(), 2));
        assert_eq!(rows[3], ("4us".to_string(), 1));
    }

    #[test]
    fn stats_track_inputs() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 60);
        assert_eq!(h.mean_us(), 20);
        assert_eq!(h.max_us(), 30);
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_histogram_has_no_rows() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert!(h.rows().is_empty());
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn interior_gaps_are_kept() {
        let mut h = LatencyHistogram::new();
        h.record(1); // bucket 1
        h.record(1 << 10); // bucket 11
        let rows = h.rows();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows.iter().filter(|(_, c)| *c > 0).count(), 2);
        assert_eq!(rows.last().unwrap().0, "1ms");
    }

    /// Exact percentile of sorted samples, matching the histogram's
    /// rank definition (linear interpolation between order statistics).
    fn exact_percentile(sorted: &[u64], p: f64) -> f64 {
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] as f64 + frac * (sorted[hi] - sorted[lo]) as f64
    }

    #[test]
    fn percentiles_are_exact_on_degenerate_inputs() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50_us(), 0, "empty histogram");
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.p50_us(), 0);
        assert_eq!(h.p99_us(), 0);
        let mut one = LatencyHistogram::new();
        one.record(777);
        assert_eq!(one.p50_us(), 777, "single sample clamps to max");
        assert_eq!(one.p99_us(), 777);
    }

    #[test]
    fn percentiles_track_exact_values_on_seeded_samples() {
        // Deterministic LCG (no external RNG) spanning several decades.
        let mut state = 0x5EED_600Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100_000
        };
        let mut h = LatencyHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..10_000 {
            let v = next();
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for p in [50.0, 90.0, 99.0] {
            let exact = exact_percentile(&samples, p);
            let est = h.percentile_us(p) as f64;
            // A log2-bucket estimate can sit anywhere inside the exact
            // value's bucket: within a factor of two, and never above max.
            assert!(
                est <= 2.0 * exact && est >= exact / 2.0,
                "p{p}: estimate {est} vs exact {exact}"
            );
            assert!(est <= h.max_us() as f64);
        }
        // Percentiles are monotone in p.
        assert!(h.p50_us() <= h.p90_us());
        assert!(h.p90_us() <= h.p99_us());
        assert!(h.p99_us() <= h.max_us());
    }

    #[test]
    fn uniform_in_bucket_interpolates() {
        // 4 samples all in bucket [8, 16): ranks interpolate inside it.
        let mut h = LatencyHistogram::new();
        for v in [8, 10, 12, 15] {
            h.record(v);
        }
        let p0 = h.percentile_us(0.0);
        let p100 = h.percentile_us(100.0);
        assert_eq!(p0, 8, "0th percentile is the bucket floor");
        assert_eq!(p100, 15, "100th percentile clamps to the max");
        let p50 = h.p50_us();
        assert!((8..=15).contains(&p50), "median interpolates: {p50}");
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.rows().len(), 1);
    }

    #[test]
    fn merge_equals_serial_recording() {
        // Split one sample stream across shards; the merged histogram
        // must match the serially-recorded one field for field.
        let mut state = 0xA5A5_5A5Au64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 1_000_000
        };
        let mut serial = LatencyHistogram::new();
        let mut shards = vec![LatencyHistogram::new(); 3];
        for i in 0..5000 {
            let v = next();
            serial.record(v);
            shards[i % 3].record(v);
        }
        let mut merged = LatencyHistogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), serial.count());
        assert_eq!(merged.sum_us(), serial.sum_us());
        assert_eq!(merged.max_us(), serial.max_us());
        assert_eq!(merged.rows(), serial.rows());
        for p in [50.0, 90.0, 99.0] {
            assert_eq!(merged.percentile_us(p), serial.percentile_us(p));
        }
    }

    #[test]
    fn merge_is_associative() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for (h, vals) in [
            (&mut a, [1u64, 5, 9].as_slice()),
            (&mut b, [0, 1024].as_slice()),
            (&mut c, [u64::MAX].as_slice()),
        ] {
            for &v in vals {
                h.record(v);
            }
        }
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.rows(), right.rows());
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum_us(), right.sum_us());
        assert_eq!(left.max_us(), right.max_us());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        let before = (h.count(), h.sum_us(), h.max_us(), h.rows());
        h.merge(&LatencyHistogram::new());
        assert_eq!((h.count(), h.sum_us(), h.max_us(), h.rows()), before);
    }
}
