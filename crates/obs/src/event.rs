//! The event taxonomy and its deterministic JSONL encoding.

use agp_sim::SimTime;
use std::fmt::Write as _;

/// `src` tag for events emitted by the cluster layer itself (switch
/// phases, fault service) rather than by one node or one job.
pub const SRC_CLUSTER: u32 = u32::MAX;

/// One of the four phases of the paper's coordinated gang switch
/// (STOP every outgoing rank → `adaptive_page_out` → `adaptive_page_in`
/// → CONT the incoming ranks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SwitchPhaseKind {
    /// SIGSTOP delivery to the outgoing ranks.
    Stop,
    /// Switch-time page-out (selective context + aggressive eviction
    /// writes draining).
    PageOut,
    /// Switch-time page-in (adaptive replay reads draining).
    PageIn,
    /// SIGCONT delivery / resumption of the incoming ranks.
    Cont,
}

impl SwitchPhaseKind {
    /// Stable wire name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            SwitchPhaseKind::Stop => "stop",
            SwitchPhaseKind::PageOut => "page_out",
            SwitchPhaseKind::PageIn => "page_in",
            SwitchPhaseKind::Cont => "cont",
        }
    }
}

/// Which deterministic watchdog rule tripped the flight recorder.
///
/// The taxonomy is part of the incident-dump schema: names are emitted
/// verbatim in `watchdog_trip` events and in `agp postmortem` reports,
/// so renaming a rule is a schema change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WatchdogRule {
    /// The periodic invariant sweep found a violated invariant.
    Invariant,
    /// A recovery policy ran out of retries and forced an outcome
    /// (I/O retry budget or barrier re-issue budget exhausted).
    RecoveryExhausted,
    /// One job made no observable progress for longer than its SLO.
    JobStall,
    /// The simulator event queue grew past its configured bound.
    QueueDepth,
    /// Every unfinished job stalled at once: sim time advanced past the
    /// bound with jobs still pending but no job-level progress — the
    /// deterministic stand-in for "the run is hung".
    NoProgress,
}

impl WatchdogRule {
    /// Stable wire name used in the JSONL/incident encoding.
    pub fn name(self) -> &'static str {
        match self {
            WatchdogRule::Invariant => "invariant",
            WatchdogRule::RecoveryExhausted => "recovery_exhausted",
            WatchdogRule::JobStall => "job_stall",
            WatchdogRule::QueueDepth => "queue_depth",
            WatchdogRule::NoProgress => "no_progress",
        }
    }

    /// Inverse of [`WatchdogRule::name`], used when reloading dumps.
    pub fn from_name(name: &str) -> Option<WatchdogRule> {
        Some(match name {
            "invariant" => WatchdogRule::Invariant,
            "recovery_exhausted" => WatchdogRule::RecoveryExhausted,
            "job_stall" => WatchdogRule::JobStall,
            "queue_depth" => WatchdogRule::QueueDepth,
            "no_progress" => WatchdogRule::NoProgress,
            _ => return None,
        })
    }
}

/// A structured simulation event.
///
/// Payloads are plain integers/bools so encoding is trivially
/// deterministic. `pid` fields are raw `ProcId` values, `page` fields raw
/// `PageNum` values; durations are integer microseconds (the simulator's
/// native unit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// The kernel observed a fault while a process touched a page
    /// (`major`: the page image must be read from swap; otherwise it is a
    /// first-touch zero fill).
    PageFault {
        /// Faulting process.
        pid: u32,
        /// Faulted page number.
        page: u32,
        /// Whether a swap-in read is required.
        major: bool,
    },
    /// The engine serviced a major fault: the resulting I/O plan sizes.
    MajorFault {
        /// Faulting process.
        pid: u32,
        /// Faulted page number.
        page: u32,
        /// Read-ahead neighbors mapped alongside the faulted page.
        readahead: u32,
        /// Reclaim write-back pages the fault forced.
        write_pages: u64,
        /// Total pages read (fault + read-ahead).
        read_pages: u64,
    },
    /// A read-ahead neighbor was mapped in alongside a major fault.
    ReadaheadHit {
        /// Owning process.
        pid: u32,
        /// The neighbor page.
        page: u32,
    },
    /// The kernel evicted a batch of one process's pages (mechanism-level
    /// view; the per-page policy view is [`ObsEvent::Evict`]).
    EvictBatch {
        /// Victim process.
        pid: u32,
        /// Frames actually freed.
        pages: u32,
        /// Of those, dirty pages that required a swap write.
        write_pages: u32,
    },
    /// The engine evicted one page (policy-level view).
    Evict {
        /// Victim process.
        pid: u32,
        /// Evicted page number.
        page: u32,
        /// Whether the victim is the *currently running* process — the
        /// paper's §3.1 "false eviction".
        false_eviction: bool,
        /// Whether the page was recorded for adaptive page-in replay.
        recorded: bool,
    },
    /// One run of the reclaim path (`try_to_free_pages` analog).
    Reclaim {
        /// Frames the watermark model asked for.
        target: u64,
        /// Frames actually freed.
        freed: u64,
        /// Write-back pages the reclaim produced.
        write_pages: u64,
    },
    /// Aggressive page-out evicted the outgoing process at a switch.
    AggressiveOut {
        /// The outgoing process.
        pid: u32,
        /// Pages evicted to cover the incoming working-set estimate.
        pages: u64,
    },
    /// Adaptive page-in staged one recorded page back into memory
    /// (per-page view of [`ObsEvent::Replay`]; the redundant-page-in
    /// detector joins these to later evict/fault events).
    ReplayPage {
        /// The incoming process.
        pid: u32,
        /// The staged page.
        page: u32,
    },
    /// Adaptive page-in replayed a recorded working set.
    Replay {
        /// The incoming process.
        pid: u32,
        /// Pages brought back by the replay.
        pages: u64,
        /// Recorded pages skipped (already resident / no frames).
        skipped: u64,
    },
    /// One background-writer burst that found dirty pages.
    BgTick {
        /// Process being cleaned.
        pid: u32,
        /// Pages written dirty → clean-with-copy.
        pages: u64,
    },
    /// A request was submitted to a node's paging disk.
    DiskRequest {
        /// Whether this is a write (page-out) request.
        write: bool,
        /// Extents in the request (seek count proxy).
        extents: u32,
        /// Pages moved.
        pages: u64,
        /// Queue wait before service started, µs.
        wait_us: u64,
        /// Head positioning (seek + rotation) share of the service time,
        /// µs — lets consumers split service into seek vs transfer.
        seek_us: u64,
        /// Device service time, µs (positioning + transfer + overhead).
        service_us: u64,
    },
    /// A faulting process blocked on disk I/O; emitted at the fault
    /// instant with the full stall duration.
    FaultService {
        /// The blocked process.
        pid: u32,
        /// The faulted page — joins the stall to the `Evict` that pushed
        /// the page out (false-eviction provenance).
        page: u32,
        /// Stall until the fault I/O completed, µs.
        wait_us: u64,
    },
    /// All ranks of a job passed a barrier (emitted at the release
    /// decision, i.e. the last arrival).
    BarrierWait {
        /// Participating ranks.
        ranks: u32,
        /// Spread between first and last arrival, µs — the skew one
        /// node's paging imposes on every other node.
        skew_us: u64,
        /// Network completion lag after the last arrival, µs.
        lag_us: u64,
    },
    /// One phase of gang switch number `switch`.
    SwitchPhase {
        /// Monotonic switch counter (includes the initial placement).
        switch: u64,
        /// Which phase.
        phase: SwitchPhaseKind,
        /// Phase duration, µs.
        dur_us: u64,
    },
    /// Gang switch number `switch` completed planning; its four
    /// [`ObsEvent::SwitchPhase`] durations sum to `total_us` exactly.
    SwitchDone {
        /// Monotonic switch counter.
        switch: u64,
        /// Total switch duration, µs.
        total_us: u64,
    },
    /// Periodic per-node state sample (telemetry sampler cadence; `src`
    /// is the node index). All values are instantaneous gauges except the
    /// two cumulative counters noted below.
    NodeGauge {
        /// Free (allocatable) frames right now.
        free_frames: u64,
        /// Dirty resident pages across all registered processes.
        dirty_pages: u64,
        /// Outstanding paging-disk backlog: how far `busy_until` lies
        /// beyond the sample instant, µs (0 when the device is idle).
        disk_backlog_us: u64,
        /// Cumulative device busy time, µs (monotonic counter; the
        /// consumer differences consecutive samples for a busy-% series).
        disk_busy_us: u64,
        /// Cumulative pages cleaned by the background writer (monotonic
        /// counter tracking bg-writer progress through the window).
        bg_cleaned: u64,
    },
    /// Periodic per-process residency sample (paired with
    /// [`ObsEvent::NodeGauge`]; `src` is the node index).
    ProcGauge {
        /// Sampled process.
        pid: u32,
        /// Resident pages.
        resident: u64,
        /// Of those, dirty pages.
        dirty: u64,
    },
    /// An injected transient disk error: the request burned the device's
    /// command overhead and failed; no pages moved (chaos only — never
    /// emitted on a fault-free run, like every variant below).
    DiskError {
        /// Whether the failed request was a write.
        write: bool,
        /// Pages the request would have moved.
        pages: u64,
        /// Time the failed attempt occupied the device, µs.
        service_us: u64,
    },
    /// An injected latency spike inflated one request's service time.
    DiskSlowdown {
        /// Added service latency, µs.
        penalty_us: u64,
    },
    /// The cluster re-submitted a failed disk request after backoff.
    IoRetry {
        /// Node whose disk failed.
        node: u32,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Backoff waited before this retry, µs.
        backoff_us: u64,
    },
    /// A node crashed; its volatile state (kernel, paging engine,
    /// resident sets) is gone and every job with a rank there is
    /// suspended pending requeue.
    NodeCrash {
        /// The crashed node.
        node: u32,
        /// Jobs suspended by the crash.
        jobs_suspended: u32,
    },
    /// A crashed node restarted; suspended jobs whose nodes are all up
    /// again were requeued with the gang scheduler.
    NodeRestart {
        /// The restarted node.
        node: u32,
        /// Jobs requeued at this restart.
        jobs_requeued: u32,
    },
    /// One job was requeued after a crash (restarts from iteration 0 —
    /// the model has no checkpointing).
    JobRequeued {
        /// The requeued job.
        job: u32,
    },
    /// A barrier release message was dropped; the timeout fired and the
    /// release was re-issued (or forced through on the final attempt).
    BarrierTimeout {
        /// The affected job.
        job: u32,
        /// Re-issue attempt number (1-based).
        attempt: u32,
        /// Time the ranks waited past the original release, µs.
        waited_us: u64,
    },
    /// An injected memory-pressure burst forced an immediate reclaim.
    MemPressure {
        /// The pressured node.
        node: u32,
        /// Frames the burst demanded.
        target: u64,
        /// Write-back pages the forced reclaim produced.
        write_pages: u64,
    },
    /// Adaptive page-in degraded to demand paging on one node after
    /// repeated injected disk errors (graceful degradation: bulk replay
    /// reads amplify a flaky disk).
    AiDegraded {
        /// The degraded node.
        node: u32,
        /// Injected disk errors observed when the policy tripped.
        errors: u64,
    },
    /// The I/O recovery policy exhausted its retry budget on one node
    /// and forced the request through (chaos runs only — the disk kept
    /// failing past `io_retries` attempts).
    IoExhausted {
        /// The node whose disk exhausted its retries.
        node: u32,
        /// Attempts consumed before the forced completion.
        attempts: u32,
    },
    /// The barrier recovery policy exhausted its re-issue budget for one
    /// job and forced the release through (chaos runs only).
    BarrierExhausted {
        /// The affected job.
        job: u32,
        /// Release re-issues consumed before the forced release.
        attempts: u32,
    },
    /// A deterministic watchdog rule tripped: the flight recorder froze
    /// and an incident dump is being written. Always the last event in a
    /// captured ring.
    WatchdogTrip {
        /// Which rule tripped.
        rule: WatchdogRule,
        /// The observed value that crossed the rule's limit.
        value: u64,
        /// The configured limit it crossed.
        limit: u64,
    },
}

impl ObsEvent {
    /// Stable wire name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            ObsEvent::PageFault { .. } => "page_fault",
            ObsEvent::MajorFault { .. } => "major_fault",
            ObsEvent::ReadaheadHit { .. } => "readahead_hit",
            ObsEvent::EvictBatch { .. } => "evict_batch",
            ObsEvent::Evict { .. } => "evict",
            ObsEvent::Reclaim { .. } => "reclaim",
            ObsEvent::AggressiveOut { .. } => "aggressive_out",
            ObsEvent::ReplayPage { .. } => "replay_page",
            ObsEvent::Replay { .. } => "replay",
            ObsEvent::BgTick { .. } => "bg_tick",
            ObsEvent::DiskRequest { .. } => "disk_request",
            ObsEvent::FaultService { .. } => "fault_service",
            ObsEvent::BarrierWait { .. } => "barrier_wait",
            ObsEvent::SwitchPhase { .. } => "switch_phase",
            ObsEvent::SwitchDone { .. } => "switch_done",
            ObsEvent::NodeGauge { .. } => "node_gauge",
            ObsEvent::ProcGauge { .. } => "proc_gauge",
            ObsEvent::DiskError { .. } => "disk_error",
            ObsEvent::DiskSlowdown { .. } => "disk_slowdown",
            ObsEvent::IoRetry { .. } => "io_retry",
            ObsEvent::NodeCrash { .. } => "node_crash",
            ObsEvent::NodeRestart { .. } => "node_restart",
            ObsEvent::JobRequeued { .. } => "job_requeued",
            ObsEvent::BarrierTimeout { .. } => "barrier_timeout",
            ObsEvent::MemPressure { .. } => "mem_pressure",
            ObsEvent::AiDegraded { .. } => "ai_degraded",
            ObsEvent::IoExhausted { .. } => "io_exhausted",
            ObsEvent::BarrierExhausted { .. } => "barrier_exhausted",
            ObsEvent::WatchdogTrip { .. } => "watchdog_trip",
        }
    }

    /// One sample value per variant, in declaration order — support for
    /// exhaustiveness tests (wire-name uniqueness here, triage coverage
    /// in `agp-explain`). Adding a variant without extending this list
    /// fails the `every_variant_names_itself` test.
    pub fn samples() -> Vec<ObsEvent> {
        vec![
            ObsEvent::PageFault {
                pid: 0,
                page: 0,
                major: false,
            },
            ObsEvent::MajorFault {
                pid: 0,
                page: 0,
                readahead: 0,
                write_pages: 0,
                read_pages: 1,
            },
            ObsEvent::ReadaheadHit { pid: 0, page: 0 },
            ObsEvent::EvictBatch {
                pid: 0,
                pages: 0,
                write_pages: 0,
            },
            ObsEvent::Evict {
                pid: 0,
                page: 0,
                false_eviction: false,
                recorded: false,
            },
            ObsEvent::Reclaim {
                target: 0,
                freed: 0,
                write_pages: 0,
            },
            ObsEvent::AggressiveOut { pid: 0, pages: 0 },
            ObsEvent::ReplayPage { pid: 0, page: 0 },
            ObsEvent::Replay {
                pid: 0,
                pages: 0,
                skipped: 0,
            },
            ObsEvent::BgTick { pid: 0, pages: 0 },
            ObsEvent::DiskRequest {
                write: false,
                extents: 0,
                pages: 0,
                wait_us: 0,
                seek_us: 0,
                service_us: 0,
            },
            ObsEvent::FaultService {
                pid: 0,
                page: 0,
                wait_us: 0,
            },
            ObsEvent::BarrierWait {
                ranks: 2,
                skew_us: 0,
                lag_us: 0,
            },
            ObsEvent::SwitchPhase {
                switch: 0,
                phase: SwitchPhaseKind::Stop,
                dur_us: 0,
            },
            ObsEvent::SwitchDone {
                switch: 0,
                total_us: 0,
            },
            ObsEvent::NodeGauge {
                free_frames: 0,
                dirty_pages: 0,
                disk_backlog_us: 0,
                disk_busy_us: 0,
                bg_cleaned: 0,
            },
            ObsEvent::ProcGauge {
                pid: 0,
                resident: 0,
                dirty: 0,
            },
            ObsEvent::DiskError {
                write: false,
                pages: 0,
                service_us: 0,
            },
            ObsEvent::DiskSlowdown { penalty_us: 0 },
            ObsEvent::IoRetry {
                node: 0,
                attempt: 1,
                backoff_us: 0,
            },
            ObsEvent::NodeCrash {
                node: 0,
                jobs_suspended: 0,
            },
            ObsEvent::NodeRestart {
                node: 0,
                jobs_requeued: 0,
            },
            ObsEvent::JobRequeued { job: 0 },
            ObsEvent::BarrierTimeout {
                job: 0,
                attempt: 1,
                waited_us: 0,
            },
            ObsEvent::MemPressure {
                node: 0,
                target: 0,
                write_pages: 0,
            },
            ObsEvent::AiDegraded { node: 0, errors: 0 },
            ObsEvent::IoExhausted {
                node: 0,
                attempts: 1,
            },
            ObsEvent::BarrierExhausted {
                job: 0,
                attempts: 1,
            },
            ObsEvent::WatchdogTrip {
                rule: WatchdogRule::Invariant,
                value: 0,
                limit: 0,
            },
        ]
    }

    /// Encode as one JSON line (no trailing newline): fixed field order,
    /// integers and booleans only — byte-identical across runs for
    /// identical event streams.
    pub fn to_json_line(&self, at: SimTime, src: u32) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"src\":{},\"ev\":\"{}\"",
            at.as_us(),
            src,
            self.name()
        );
        match *self {
            ObsEvent::PageFault { pid, page, major } => {
                let _ = write!(s, ",\"pid\":{pid},\"page\":{page},\"major\":{major}");
            }
            ObsEvent::MajorFault {
                pid,
                page,
                readahead,
                write_pages,
                read_pages,
            } => {
                let _ = write!(
                    s,
                    ",\"pid\":{pid},\"page\":{page},\"readahead\":{readahead},\"write_pages\":{write_pages},\"read_pages\":{read_pages}"
                );
            }
            ObsEvent::ReadaheadHit { pid, page } => {
                let _ = write!(s, ",\"pid\":{pid},\"page\":{page}");
            }
            ObsEvent::EvictBatch {
                pid,
                pages,
                write_pages,
            } => {
                let _ = write!(
                    s,
                    ",\"pid\":{pid},\"pages\":{pages},\"write_pages\":{write_pages}"
                );
            }
            ObsEvent::Evict {
                pid,
                page,
                false_eviction,
                recorded,
            } => {
                let _ = write!(
                    s,
                    ",\"pid\":{pid},\"page\":{page},\"false_eviction\":{false_eviction},\"recorded\":{recorded}"
                );
            }
            ObsEvent::Reclaim {
                target,
                freed,
                write_pages,
            } => {
                let _ = write!(
                    s,
                    ",\"target\":{target},\"freed\":{freed},\"write_pages\":{write_pages}"
                );
            }
            ObsEvent::AggressiveOut { pid, pages } => {
                let _ = write!(s, ",\"pid\":{pid},\"pages\":{pages}");
            }
            ObsEvent::ReplayPage { pid, page } => {
                let _ = write!(s, ",\"pid\":{pid},\"page\":{page}");
            }
            ObsEvent::Replay {
                pid,
                pages,
                skipped,
            } => {
                let _ = write!(s, ",\"pid\":{pid},\"pages\":{pages},\"skipped\":{skipped}");
            }
            ObsEvent::BgTick { pid, pages } => {
                let _ = write!(s, ",\"pid\":{pid},\"pages\":{pages}");
            }
            ObsEvent::DiskRequest {
                write,
                extents,
                pages,
                wait_us,
                seek_us,
                service_us,
            } => {
                let _ = write!(
                    s,
                    ",\"write\":{write},\"extents\":{extents},\"pages\":{pages},\"wait_us\":{wait_us},\"seek_us\":{seek_us},\"service_us\":{service_us}"
                );
            }
            ObsEvent::FaultService { pid, page, wait_us } => {
                let _ = write!(s, ",\"pid\":{pid},\"page\":{page},\"wait_us\":{wait_us}");
            }
            ObsEvent::BarrierWait {
                ranks,
                skew_us,
                lag_us,
            } => {
                let _ = write!(
                    s,
                    ",\"ranks\":{ranks},\"skew_us\":{skew_us},\"lag_us\":{lag_us}"
                );
            }
            ObsEvent::SwitchPhase {
                switch,
                phase,
                dur_us,
            } => {
                let _ = write!(
                    s,
                    ",\"switch\":{switch},\"phase\":\"{}\",\"dur_us\":{dur_us}",
                    phase.name()
                );
            }
            ObsEvent::SwitchDone { switch, total_us } => {
                let _ = write!(s, ",\"switch\":{switch},\"total_us\":{total_us}");
            }
            ObsEvent::NodeGauge {
                free_frames,
                dirty_pages,
                disk_backlog_us,
                disk_busy_us,
                bg_cleaned,
            } => {
                let _ = write!(
                    s,
                    ",\"free_frames\":{free_frames},\"dirty_pages\":{dirty_pages},\"disk_backlog_us\":{disk_backlog_us},\"disk_busy_us\":{disk_busy_us},\"bg_cleaned\":{bg_cleaned}"
                );
            }
            ObsEvent::ProcGauge {
                pid,
                resident,
                dirty,
            } => {
                let _ = write!(
                    s,
                    ",\"pid\":{pid},\"resident\":{resident},\"dirty\":{dirty}"
                );
            }
            ObsEvent::DiskError {
                write,
                pages,
                service_us,
            } => {
                let _ = write!(
                    s,
                    ",\"write\":{write},\"pages\":{pages},\"service_us\":{service_us}"
                );
            }
            ObsEvent::DiskSlowdown { penalty_us } => {
                let _ = write!(s, ",\"penalty_us\":{penalty_us}");
            }
            ObsEvent::IoRetry {
                node,
                attempt,
                backoff_us,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"attempt\":{attempt},\"backoff_us\":{backoff_us}"
                );
            }
            ObsEvent::NodeCrash {
                node,
                jobs_suspended,
            } => {
                let _ = write!(s, ",\"node\":{node},\"jobs_suspended\":{jobs_suspended}");
            }
            ObsEvent::NodeRestart {
                node,
                jobs_requeued,
            } => {
                let _ = write!(s, ",\"node\":{node},\"jobs_requeued\":{jobs_requeued}");
            }
            ObsEvent::JobRequeued { job } => {
                let _ = write!(s, ",\"job\":{job}");
            }
            ObsEvent::BarrierTimeout {
                job,
                attempt,
                waited_us,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"attempt\":{attempt},\"waited_us\":{waited_us}"
                );
            }
            ObsEvent::MemPressure {
                node,
                target,
                write_pages,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"target\":{target},\"write_pages\":{write_pages}"
                );
            }
            ObsEvent::AiDegraded { node, errors } => {
                let _ = write!(s, ",\"node\":{node},\"errors\":{errors}");
            }
            ObsEvent::IoExhausted { node, attempts } => {
                let _ = write!(s, ",\"node\":{node},\"attempts\":{attempts}");
            }
            ObsEvent::BarrierExhausted { job, attempts } => {
                let _ = write!(s, ",\"job\":{job},\"attempts\":{attempts}");
            }
            ObsEvent::WatchdogTrip { rule, value, limit } => {
                let _ = write!(
                    s,
                    ",\"rule\":\"{}\",\"value\":{value},\"limit\":{limit}",
                    rule.name()
                );
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encoding_is_stable() {
        let ev = ObsEvent::DiskRequest {
            write: true,
            extents: 2,
            pages: 64,
            wait_us: 0,
            seek_us: 8_100,
            service_us: 12_500,
        };
        assert_eq!(
            ev.to_json_line(SimTime::from_ms(3), 1),
            "{\"t\":3000,\"src\":1,\"ev\":\"disk_request\",\"write\":true,\"extents\":2,\"pages\":64,\"wait_us\":0,\"seek_us\":8100,\"service_us\":12500}"
        );
        let ph = ObsEvent::SwitchPhase {
            switch: 4,
            phase: SwitchPhaseKind::PageIn,
            dur_us: 77,
        };
        assert_eq!(
            ph.to_json_line(SimTime::ZERO, SRC_CLUSTER),
            format!("{{\"t\":0,\"src\":{},\"ev\":\"switch_phase\",\"switch\":4,\"phase\":\"page_in\",\"dur_us\":77}}", u32::MAX)
        );
    }

    #[test]
    fn gauge_encoding_is_stable() {
        let ng = ObsEvent::NodeGauge {
            free_frames: 120,
            dirty_pages: 33,
            disk_backlog_us: 4_500,
            disk_busy_us: 987_654,
            bg_cleaned: 256,
        };
        assert_eq!(
            ng.to_json_line(SimTime::from_us(77), 2),
            "{\"t\":77,\"src\":2,\"ev\":\"node_gauge\",\"free_frames\":120,\"dirty_pages\":33,\"disk_backlog_us\":4500,\"disk_busy_us\":987654,\"bg_cleaned\":256}"
        );
        let pg = ObsEvent::ProcGauge {
            pid: 3,
            resident: 9_000,
            dirty: 41,
        };
        assert_eq!(
            pg.to_json_line(SimTime::ZERO, 0),
            "{\"t\":0,\"src\":0,\"ev\":\"proc_gauge\",\"pid\":3,\"resident\":9000,\"dirty\":41}"
        );
    }

    #[test]
    fn incident_encoding_is_stable() {
        let io = ObsEvent::IoExhausted {
            node: 2,
            attempts: 5,
        };
        assert_eq!(
            io.to_json_line(SimTime::from_us(9), 2),
            "{\"t\":9,\"src\":2,\"ev\":\"io_exhausted\",\"node\":2,\"attempts\":5}"
        );
        let ba = ObsEvent::BarrierExhausted {
            job: 1,
            attempts: 9,
        };
        assert_eq!(
            ba.to_json_line(SimTime::ZERO, SRC_CLUSTER),
            format!(
                "{{\"t\":0,\"src\":{},\"ev\":\"barrier_exhausted\",\"job\":1,\"attempts\":9}}",
                u32::MAX
            )
        );
        let wt = ObsEvent::WatchdogTrip {
            rule: WatchdogRule::JobStall,
            value: 9_000_000,
            limit: 5_000_000,
        };
        assert_eq!(
            wt.to_json_line(SimTime::from_ms(12), SRC_CLUSTER),
            format!(
                "{{\"t\":12000,\"src\":{},\"ev\":\"watchdog_trip\",\"rule\":\"job_stall\",\"value\":9000000,\"limit\":5000000}}",
                u32::MAX
            )
        );
    }

    #[test]
    fn watchdog_rule_names_round_trip() {
        for rule in [
            WatchdogRule::Invariant,
            WatchdogRule::RecoveryExhausted,
            WatchdogRule::JobStall,
            WatchdogRule::QueueDepth,
            WatchdogRule::NoProgress,
        ] {
            assert_eq!(WatchdogRule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(WatchdogRule::from_name("nope"), None);
    }

    #[test]
    fn every_variant_names_itself() {
        let evs = ObsEvent::samples();
        let mut names: Vec<&str> = evs.iter().map(|e| e.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "wire names must be unique");
        for ev in &evs {
            let line = ev.to_json_line(SimTime::ZERO, 0);
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains(&format!("\"ev\":\"{}\"", ev.name())));
        }
    }
}
