//! Bounded-memory streaming sinks.
//!
//! The PR-7 sinks ([`crate::JsonlWriter`], [`crate::RingBuffer`]) either
//! buffer nothing or buffer everything. The streaming path here is what a
//! million-event open-system run needs: a chunked JSONL writer that
//! flushes incrementally (so the OS, not the process, holds the bytes)
//! and a budgeted sink that retains only the last K events while keeping
//! exact drop accounting, so truncation is loud.

use crate::event::ObsEvent;
use crate::observer::Observer;
use crate::sink::{RingBuffer, TracedEvent};
use agp_sim::SimTime;
use std::io::Write;

/// Default lines-per-chunk for [`ChunkedJsonlWriter`]: small enough that
/// a stalled run leaves at most a few hundred KB unflushed, large enough
/// that flush syscalls stay off the hot path.
pub const DEFAULT_CHUNK_LINES: u64 = 4096;

/// A JSONL sink that flushes its writer every `chunk_lines` lines.
///
/// Encoding and error handling match [`crate::JsonlWriter`] (hand-rolled
/// [`ObsEvent::to_json_line`], latched I/O errors), but the incremental
/// flush bounds the bytes buffered in-process to one chunk regardless of
/// run length — the writer's memory is O(chunk), not O(events).
#[derive(Debug)]
pub struct ChunkedJsonlWriter<W: Write> {
    out: W,
    chunk_lines: u64,
    lines: u64,
    flushes: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> ChunkedJsonlWriter<W> {
    /// Wrap a write target with the default chunk size.
    pub fn new(out: W) -> Self {
        ChunkedJsonlWriter::with_chunk_lines(out, DEFAULT_CHUNK_LINES)
    }

    /// Wrap a write target flushing every `chunk_lines` lines
    /// (`chunk_lines` 0 behaves as 1: flush after every line).
    pub fn with_chunk_lines(out: W, chunk_lines: u64) -> Self {
        ChunkedJsonlWriter {
            out,
            chunk_lines: chunk_lines.max(1),
            lines: 0,
            flushes: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Incremental flushes performed so far (excluding the final one in
    /// [`ChunkedJsonlWriter::finish`]).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Flush and return the inner writer, or the first latched I/O error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Observer for ChunkedJsonlWriter<W> {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        if self.error.is_some() {
            return;
        }
        let line = ev.to_json_line(at, src);
        let res = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"));
        match res {
            Ok(()) => {
                self.lines += 1;
                if self.lines.is_multiple_of(self.chunk_lines) {
                    match self.out.flush() {
                        Ok(()) => self.flushes += 1,
                        Err(e) => self.error = Some(e),
                    }
                }
            }
            Err(e) => self.error = Some(e),
        }
    }
}

/// A last-K retention sink with exact drop accounting: the `--obs-budget`
/// knob's backing store.
///
/// Memory is O(K) no matter how many events flow through. Every eviction
/// is counted, and [`BudgetedSink::summary`] renders the "kept X of Y"
/// line the CLI prints so a truncated trace can never masquerade as a
/// complete one.
#[derive(Clone, Debug)]
pub struct BudgetedSink {
    ring: RingBuffer,
}

impl BudgetedSink {
    /// A sink retaining at most `budget` events (0 keeps none but still
    /// counts).
    pub fn new(budget: usize) -> Self {
        BudgetedSink {
            ring: RingBuffer::new(budget),
        }
    }

    /// Events currently retained, oldest first.
    pub fn retained(&self) -> impl Iterator<Item = &TracedEvent> {
        self.ring.events()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever delivered.
    pub fn total_seen(&self) -> u64 {
        self.ring.total_seen()
    }

    /// Events evicted by the budget (never silent: the CLI prints this).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// One-line retention report, e.g.
    /// `kept 1024 of 1000000 events (998976 dropped by --obs-budget)`.
    pub fn summary(&self) -> String {
        format!(
            "kept {} of {} events ({} dropped by --obs-budget)",
            self.len(),
            self.total_seen(),
            self.dropped()
        )
    }

    /// Consume the sink, yielding the retained events oldest first.
    pub fn into_events(mut self) -> Vec<TracedEvent> {
        self.ring.drain()
    }
}

impl Observer for BudgetedSink {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        self.ring.on_event(at, src, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(page: u32) -> ObsEvent {
        ObsEvent::ReadaheadHit { pid: 1, page }
    }

    #[test]
    fn chunked_writer_matches_plain_jsonl_bytes() {
        let plain = {
            let mut w = crate::JsonlWriter::new(Vec::new());
            for i in 0..10 {
                w.on_event(SimTime::from_us(i as u64), 3, &ev(i));
            }
            w.finish().unwrap()
        };
        let chunked = {
            let mut w = ChunkedJsonlWriter::with_chunk_lines(Vec::new(), 3);
            for i in 0..10 {
                w.on_event(SimTime::from_us(i as u64), 3, &ev(i));
            }
            assert_eq!(w.lines(), 10);
            assert_eq!(w.flushes(), 3, "flush at lines 3, 6, 9");
            w.finish().unwrap()
        };
        assert_eq!(plain, chunked, "chunking changes flushing, not bytes");
    }

    #[test]
    fn chunk_lines_zero_flushes_every_line() {
        let mut w = ChunkedJsonlWriter::with_chunk_lines(Vec::new(), 0);
        for i in 0..4 {
            w.on_event(SimTime::from_us(i as u64), 0, &ev(i));
        }
        assert_eq!(w.flushes(), 4);
    }

    #[test]
    fn chunked_writer_latches_errors() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Each event costs two writes (line + newline): the third event's
        // line write fails and latches.
        let mut w = ChunkedJsonlWriter::new(FailAfter(4));
        for i in 0..5 {
            w.on_event(SimTime::from_us(i as u64), 0, &ev(i));
        }
        assert_eq!(w.lines(), 2);
        assert!(w.finish().is_err());
    }

    #[test]
    fn budgeted_sink_survives_a_million_events_in_bounded_memory() {
        // The acceptance-criteria stream: 10⁶ events through a fixed
        // budget. Retention stays at the budget, drops are reported, and
        // the retained window is exactly the last K events.
        const TOTAL: u64 = 1_000_000;
        const BUDGET: usize = 1024;
        let mut sink = BudgetedSink::new(BUDGET);
        for i in 0..TOTAL {
            sink.on_event(SimTime::from_us(i), 0, &ev(i as u32));
            debug_assert!(sink.len() <= BUDGET);
        }
        assert_eq!(sink.len(), BUDGET);
        assert_eq!(sink.total_seen(), TOTAL);
        assert_eq!(sink.dropped(), TOTAL - BUDGET as u64);
        assert_eq!(
            sink.summary(),
            "kept 1024 of 1000000 events (998976 dropped by --obs-budget)"
        );
        let first = sink.retained().next().unwrap().at;
        assert_eq!(first, SimTime::from_us(TOTAL - BUDGET as u64));
        let events = sink.into_events();
        assert_eq!(events.len(), BUDGET);
        assert_eq!(events.last().unwrap().at, SimTime::from_us(TOTAL - 1));
    }

    #[test]
    fn zero_budget_reports_everything_dropped() {
        let mut sink = BudgetedSink::new(0);
        for i in 0..3 {
            sink.on_event(SimTime::from_us(i), 0, &ev(0));
        }
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 3);
        assert_eq!(
            sink.summary(),
            "kept 0 of 3 events (3 dropped by --obs-budget)"
        );
    }
}
