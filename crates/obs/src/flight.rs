//! The black-box flight recorder: a process-global, atomically gated
//! last-N window of raw events (plus telemetry-sample and
//! monitor-snapshot mirrors) that a watchdog trip or a typed error
//! unwind freezes into a schema-versioned, byte-deterministic incident
//! dump.
//!
//! Full JSONL traces are infeasible for open-system streams; aggregates
//! (collectors, windows, monitor snapshots) survive but cannot explain
//! *why* an invariant tripped. The recorder keeps exactly the raw event
//! window `agp postmortem` needs, with the same gate discipline as
//! `agp-perf`: when nothing is armed, every hook is a single relaxed
//! atomic load.
//!
//! ## Lifecycle
//!
//! 1. [`arm`] installs a fresh recorder (CLI `--flight-recorder`).
//! 2. The simulation splices [`sink`] into its observer fanout and calls
//!    [`note_run`] with the run's identity (scenario, seed, config
//!    fingerprint, job table) — this also clears the window, so each run
//!    records its own black box.
//! 3. Events stream through [`record`]; telemetry samples and monitor
//!    snapshots are mirrored via [`mirror_sample`] / [`mirror_snapshot`].
//! 4. A watchdog trip or error unwind calls [`freeze`]. The first freeze
//!    wins; a watchdog freeze appends the [`ObsEvent::WatchdogTrip`]
//!    marker as the final ring event.
//! 5. [`take_incident`] yields the [`IncidentDump`] (and re-opens the
//!    recorder for the next run).
//!
//! ## Determinism
//!
//! The dump encoding is hand-rolled like [`ObsEvent::to_json_line`]:
//! fixed field order, integers/booleans/fixed identifier strings, one
//! event object per line inside the `events` array. Two runs with the
//! same seed and config freeze byte-identical dumps.

use crate::event::{ObsEvent, SwitchPhaseKind, WatchdogRule, SRC_CLUSTER};
use crate::observer::{shared, Observer, SharedSink};
use crate::sink::{RingBuffer, TracedEvent};
use agp_sim::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Incident-dump schema version (`"schema_version"` in the JSON).
pub const DUMP_SCHEMA_VERSION: u32 = 1;

/// Capacity and watchdog knobs for one armed recorder.
///
/// The watchdog thresholds live here (plain data, evaluated by
/// `agp-cluster` in sim time) so arming is a single call and the whole
/// incident configuration has one source of truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightConfig {
    /// Raw events retained (ring capacity).
    pub events: usize,
    /// Telemetry sample lines retained.
    pub samples: usize,
    /// Monitor snapshot lines retained.
    pub snapshots: usize,
    /// Trip [`WatchdogRule::JobStall`] when an unfinished job makes no
    /// observable progress for this many sim-µs (`None`: rule off).
    pub stall_slo_us: Option<u64>,
    /// Trip [`WatchdogRule::QueueDepth`] when the simulator event queue
    /// exceeds this many entries (`None`: rule off).
    pub queue_limit: Option<u64>,
    /// Trip [`WatchdogRule::NoProgress`] when *every* unfinished job has
    /// gone this many sim-µs without observable progress — the hang
    /// detector (`None`: rule off).
    pub no_progress_us: Option<u64>,
    /// Trip [`WatchdogRule::RecoveryExhausted`] when a recovery policy
    /// runs out of retries and forces an outcome.
    pub trip_on_exhaustion: bool,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            events: 4096,
            samples: 64,
            snapshots: 16,
            stall_slo_us: None,
            queue_limit: None,
            no_progress_us: None,
            trip_on_exhaustion: true,
        }
    }
}

/// What froze the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IncidentTrigger {
    /// A deterministic watchdog rule tripped.
    Watchdog {
        /// The rule that tripped.
        rule: WatchdogRule,
        /// Observed value that crossed the limit.
        value: u64,
        /// The configured limit.
        limit: u64,
        /// Free-form context (the violated invariant's text for the
        /// invariant rule; empty otherwise).
        detail: String,
    },
    /// A typed simulation error unwound the run.
    Error {
        /// The error's display string.
        what: String,
    },
}

/// Identity of the run being recorded, captured before the event loop
/// starts so a dump is attributable even when the run dies early.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Human-readable scenario name (experiment id or plan path).
    pub scenario: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// FNV-1a-64 fingerprint of the full cluster config debug form.
    pub config_fp: u64,
    /// Job names, index-aligned with the `pid_job` job indices.
    pub jobs: Vec<String>,
    /// `(pid, job index)` pairs mapping processes to jobs.
    pub pid_job: Vec<(u32, u32)>,
}

struct Recorder {
    cfg: FlightConfig,
    ring: RingBuffer,
    samples: VecDeque<String>,
    samples_seen: u64,
    snapshots: VecDeque<String>,
    snapshots_seen: u64,
    meta: RunMeta,
    frozen: Option<(IncidentTrigger, u64)>,
}

impl Recorder {
    fn new(cfg: FlightConfig) -> Self {
        Recorder {
            ring: RingBuffer::new(cfg.events),
            samples: VecDeque::with_capacity(cfg.samples.min(1024)),
            samples_seen: 0,
            snapshots: VecDeque::with_capacity(cfg.snapshots.min(1024)),
            snapshots_seen: 0,
            cfg,
            meta: RunMeta::default(),
            frozen: None,
        }
    }

    fn reset_window(&mut self) {
        self.ring = RingBuffer::new(self.cfg.events);
        self.samples.clear();
        self.samples_seen = 0;
        self.snapshots.clear();
        self.snapshots_seen = 0;
        self.frozen = None;
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn hub() -> &'static Mutex<Option<Recorder>> {
    static HUB: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    HUB.get_or_init(|| Mutex::new(None))
}

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
    let mut guard = match hub().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.as_mut().map(f)
}

/// Arm the recorder with `cfg`, replacing any previous recorder.
pub fn arm(cfg: FlightConfig) {
    let mut guard = match hub().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = Some(Recorder::new(cfg));
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm and discard the recorder (and any unfetched incident).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    let mut guard = match hub().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = None;
}

/// Whether a recorder is armed. A single relaxed load — the gate every
/// hot-path hook checks first.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The armed recorder's configuration, if any.
pub fn config() -> Option<FlightConfig> {
    if !armed() {
        return None;
    }
    with_recorder(|r| r.cfg.clone())
}

/// Start a fresh recording window for one run: store its identity and
/// clear the previous window (a multi-experiment invocation keeps only
/// the failing run's black box).
pub fn note_run(meta: RunMeta) {
    if !armed() {
        return;
    }
    with_recorder(|r| {
        r.reset_window();
        r.meta = meta;
    });
}

/// Record one event into the ring (no-op when disarmed or frozen).
#[inline]
pub fn record(at: SimTime, src: u32, ev: &ObsEvent) {
    if !armed() {
        return;
    }
    with_recorder(|r| {
        if r.frozen.is_none() {
            r.ring.on_event(at, src, ev);
        }
    });
}

/// Mirror one telemetry sample line (a complete JSON object) into the
/// bounded sample window.
pub fn mirror_sample(line: &str) {
    if !armed() {
        return;
    }
    with_recorder(|r| {
        if r.frozen.is_some() || r.cfg.samples == 0 {
            return;
        }
        r.samples_seen += 1;
        if r.samples.len() == r.cfg.samples {
            r.samples.pop_front();
        }
        r.samples.push_back(line.to_string());
    });
}

/// Mirror one monitor snapshot line (a complete JSON object) into the
/// bounded snapshot window.
pub fn mirror_snapshot(line: &str) {
    if !armed() {
        return;
    }
    with_recorder(|r| {
        if r.frozen.is_some() || r.cfg.snapshots == 0 {
            return;
        }
        r.snapshots_seen += 1;
        if r.snapshots.len() == r.cfg.snapshots {
            r.snapshots.pop_front();
        }
        r.snapshots.push_back(line.to_string());
    });
}

/// Freeze the ring. The first freeze wins (later calls are no-ops, so an
/// error unwind after a watchdog trip cannot overwrite the trigger). A
/// watchdog trigger appends the [`ObsEvent::WatchdogTrip`] marker as the
/// ring's final event. Returns whether this call performed the freeze.
pub fn freeze(trigger: IncidentTrigger, at: SimTime) -> bool {
    if !armed() {
        return false;
    }
    with_recorder(|r| {
        if r.frozen.is_some() {
            return false;
        }
        if let IncidentTrigger::Watchdog {
            rule, value, limit, ..
        } = &trigger
        {
            let marker = ObsEvent::WatchdogTrip {
                rule: *rule,
                value: *value,
                limit: *limit,
            };
            r.ring.on_event(at, SRC_CLUSTER, &marker);
        }
        r.frozen = Some((trigger, at.as_us()));
        true
    })
    .unwrap_or(false)
}

/// Take the frozen incident, re-opening the recorder for the next run.
/// `None` when disarmed or when nothing has frozen the ring.
pub fn take_incident() -> Option<IncidentDump> {
    if !armed() {
        return None;
    }
    with_recorder(|r| {
        let (trigger, at_us) = r.frozen.clone()?;
        let events_seen = r.ring.total_seen();
        let events_dropped = r.ring.dropped();
        let dump = IncidentDump {
            schema_version: DUMP_SCHEMA_VERSION,
            trigger,
            at_us,
            meta: r.meta.clone(),
            events_seen,
            events_dropped,
            events: r.ring.drain(),
            samples_dropped: r.samples_seen.saturating_sub(r.samples.len() as u64),
            samples: r.samples.drain(..).collect(),
            snapshots_dropped: r.snapshots_seen.saturating_sub(r.snapshots.len() as u64),
            snapshots: r.snapshots.drain(..).collect(),
        };
        r.reset_window();
        Some(dump)
    })
    .flatten()
}

/// An [`Observer`] forwarding every delivered event into the recorder —
/// splice it into the simulation's fanout with [`crate::ObsLink::extended`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FlightSink;

impl Observer for FlightSink {
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
        record(at, src, ev);
    }
}

/// A fresh shared [`FlightSink`] handle.
pub fn sink() -> SharedSink {
    shared(FlightSink)
}

/// A frozen recording window plus the identity needed to analyze it —
/// everything `agp postmortem` consumes.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentDump {
    /// Dump schema version ([`DUMP_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// What froze the ring.
    pub trigger: IncidentTrigger,
    /// Sim time of the freeze, µs.
    pub at_us: u64,
    /// Identity of the recorded run.
    pub meta: RunMeta,
    /// Events delivered to the ring over the window (including evicted).
    pub events_seen: u64,
    /// Events evicted by the capacity bound.
    pub events_dropped: u64,
    /// The retained window, oldest first.
    pub events: Vec<TracedEvent>,
    /// Telemetry samples evicted by the capacity bound.
    pub samples_dropped: u64,
    /// Retained telemetry sample lines, oldest first.
    pub samples: Vec<String>,
    /// Monitor snapshots evicted by the capacity bound.
    pub snapshots_dropped: u64,
    /// Retained monitor snapshot lines, oldest first.
    pub snapshots: Vec<String>,
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl IncidentDump {
    /// Deterministic JSON encoding: fixed field order, one event object
    /// per line inside the `events` array (grep-able like a JSONL
    /// trace), trailing newline. Byte-identical for identical windows.
    pub fn to_json_string(&self) -> String {
        let mut s = String::with_capacity(4096 + self.events.len() * 96);
        let _ = write!(s, "{{\"schema_version\":{}", self.schema_version);
        s.push_str(",\"trigger\":");
        match &self.trigger {
            IncidentTrigger::Watchdog {
                rule,
                value,
                limit,
                detail,
            } => {
                let _ = write!(
                    s,
                    "{{\"kind\":\"watchdog\",\"rule\":\"{}\",\"value\":{value},\"limit\":{limit},\"detail\":",
                    rule.name()
                );
                esc(detail, &mut s);
                s.push('}');
            }
            IncidentTrigger::Error { what } => {
                s.push_str("{\"kind\":\"error\",\"what\":");
                esc(what, &mut s);
                s.push('}');
            }
        }
        let _ = write!(s, ",\"at_us\":{}", self.at_us);
        s.push_str(",\"scenario\":");
        esc(&self.meta.scenario, &mut s);
        let _ = write!(
            s,
            ",\"seed\":{},\"config_fp\":\"{:016x}\"",
            self.meta.seed, self.meta.config_fp
        );
        s.push_str(",\"jobs\":[");
        for (i, job) in self.meta.jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            esc(job, &mut s);
        }
        s.push_str("],\"pid_job\":[");
        for (i, (pid, job)) in self.meta.pid_job.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{pid},{job}]");
        }
        let _ = write!(
            s,
            "],\"events_seen\":{},\"events_dropped\":{}",
            self.events_seen, self.events_dropped
        );
        s.push_str(",\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&ev.event.to_json_line(ev.at, ev.src));
        }
        if !self.events.is_empty() {
            s.push('\n');
        }
        let _ = write!(
            s,
            "],\"samples_dropped\":{},\"samples\":[",
            self.samples_dropped
        );
        for (i, line) in self.samples.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(line);
        }
        if !self.samples.is_empty() {
            s.push('\n');
        }
        let _ = write!(
            s,
            "],\"snapshots_dropped\":{},\"snapshots\":[",
            self.snapshots_dropped
        );
        for (i, line) in self.snapshots.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(line);
        }
        if !self.snapshots.is_empty() {
            s.push('\n');
        }
        s.push_str("]}\n");
        s
    }
}

/// Decode one [`ObsEvent::to_json_line`] line back into a
/// [`TracedEvent`]. Accepts exactly the encoding this crate writes
/// (fixed identifier strings, unsigned integers, booleans) — the inverse
/// `agp postmortem` uses to replay a dump's window.
pub fn parse_event_line(line: &str) -> Result<TracedEvent, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line}"))?;
    // Our encoding never puts commas or colons inside string values
    // (identifiers only), so flat splitting is exact.
    let mut fields: Vec<(&str, &str)> = Vec::new();
    for part in body.split(',') {
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed field {part:?}"))?;
        let k = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("malformed key {k:?}"))?;
        fields.push((k, v.trim()));
    }
    let raw = |key: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing field \"{key}\""))
    };
    let num = |key: &str| -> Result<u64, String> {
        raw(key)?
            .parse::<u64>()
            .map_err(|e| format!("field \"{key}\": {e}"))
    };
    let num32 = |key: &str| -> Result<u32, String> {
        raw(key)?
            .parse::<u32>()
            .map_err(|e| format!("field \"{key}\": {e}"))
    };
    let flag = |key: &str| -> Result<bool, String> {
        match raw(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("field \"{key}\": not a bool: {other}")),
        }
    };
    let text = |key: &str| -> Result<&str, String> {
        raw(key)?
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("field \"{key}\": not a string"))
    };

    let at = SimTime::from_us(num("t")?);
    let src = num32("src")?;
    let name = text("ev")?;
    let event = match name {
        "page_fault" => ObsEvent::PageFault {
            pid: num32("pid")?,
            page: num32("page")?,
            major: flag("major")?,
        },
        "major_fault" => ObsEvent::MajorFault {
            pid: num32("pid")?,
            page: num32("page")?,
            readahead: num32("readahead")?,
            write_pages: num("write_pages")?,
            read_pages: num("read_pages")?,
        },
        "readahead_hit" => ObsEvent::ReadaheadHit {
            pid: num32("pid")?,
            page: num32("page")?,
        },
        "evict_batch" => ObsEvent::EvictBatch {
            pid: num32("pid")?,
            pages: num32("pages")?,
            write_pages: num32("write_pages")?,
        },
        "evict" => ObsEvent::Evict {
            pid: num32("pid")?,
            page: num32("page")?,
            false_eviction: flag("false_eviction")?,
            recorded: flag("recorded")?,
        },
        "reclaim" => ObsEvent::Reclaim {
            target: num("target")?,
            freed: num("freed")?,
            write_pages: num("write_pages")?,
        },
        "aggressive_out" => ObsEvent::AggressiveOut {
            pid: num32("pid")?,
            pages: num("pages")?,
        },
        "replay_page" => ObsEvent::ReplayPage {
            pid: num32("pid")?,
            page: num32("page")?,
        },
        "replay" => ObsEvent::Replay {
            pid: num32("pid")?,
            pages: num("pages")?,
            skipped: num("skipped")?,
        },
        "bg_tick" => ObsEvent::BgTick {
            pid: num32("pid")?,
            pages: num("pages")?,
        },
        "disk_request" => ObsEvent::DiskRequest {
            write: flag("write")?,
            extents: num32("extents")?,
            pages: num("pages")?,
            wait_us: num("wait_us")?,
            seek_us: num("seek_us")?,
            service_us: num("service_us")?,
        },
        "fault_service" => ObsEvent::FaultService {
            pid: num32("pid")?,
            page: num32("page")?,
            wait_us: num("wait_us")?,
        },
        "barrier_wait" => ObsEvent::BarrierWait {
            ranks: num32("ranks")?,
            skew_us: num("skew_us")?,
            lag_us: num("lag_us")?,
        },
        "switch_phase" => ObsEvent::SwitchPhase {
            switch: num("switch")?,
            phase: match text("phase")? {
                "stop" => SwitchPhaseKind::Stop,
                "page_out" => SwitchPhaseKind::PageOut,
                "page_in" => SwitchPhaseKind::PageIn,
                "cont" => SwitchPhaseKind::Cont,
                other => return Err(format!("unknown switch phase {other:?}")),
            },
            dur_us: num("dur_us")?,
        },
        "switch_done" => ObsEvent::SwitchDone {
            switch: num("switch")?,
            total_us: num("total_us")?,
        },
        "node_gauge" => ObsEvent::NodeGauge {
            free_frames: num("free_frames")?,
            dirty_pages: num("dirty_pages")?,
            disk_backlog_us: num("disk_backlog_us")?,
            disk_busy_us: num("disk_busy_us")?,
            bg_cleaned: num("bg_cleaned")?,
        },
        "proc_gauge" => ObsEvent::ProcGauge {
            pid: num32("pid")?,
            resident: num("resident")?,
            dirty: num("dirty")?,
        },
        "disk_error" => ObsEvent::DiskError {
            write: flag("write")?,
            pages: num("pages")?,
            service_us: num("service_us")?,
        },
        "disk_slowdown" => ObsEvent::DiskSlowdown {
            penalty_us: num("penalty_us")?,
        },
        "io_retry" => ObsEvent::IoRetry {
            node: num32("node")?,
            attempt: num32("attempt")?,
            backoff_us: num("backoff_us")?,
        },
        "node_crash" => ObsEvent::NodeCrash {
            node: num32("node")?,
            jobs_suspended: num32("jobs_suspended")?,
        },
        "node_restart" => ObsEvent::NodeRestart {
            node: num32("node")?,
            jobs_requeued: num32("jobs_requeued")?,
        },
        "job_requeued" => ObsEvent::JobRequeued { job: num32("job")? },
        "barrier_timeout" => ObsEvent::BarrierTimeout {
            job: num32("job")?,
            attempt: num32("attempt")?,
            waited_us: num("waited_us")?,
        },
        "mem_pressure" => ObsEvent::MemPressure {
            node: num32("node")?,
            target: num("target")?,
            write_pages: num("write_pages")?,
        },
        "ai_degraded" => ObsEvent::AiDegraded {
            node: num32("node")?,
            errors: num("errors")?,
        },
        "io_exhausted" => ObsEvent::IoExhausted {
            node: num32("node")?,
            attempts: num32("attempts")?,
        },
        "barrier_exhausted" => ObsEvent::BarrierExhausted {
            job: num32("job")?,
            attempts: num32("attempts")?,
        },
        "watchdog_trip" => {
            let rule_name = text("rule")?;
            ObsEvent::WatchdogTrip {
                rule: WatchdogRule::from_name(rule_name)
                    .ok_or_else(|| format!("unknown watchdog rule {rule_name:?}"))?,
                value: num("value")?,
                limit: num("limit")?,
            }
        }
        other => return Err(format!("unknown event {other:?}")),
    };
    Ok(TracedEvent { at, src, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-hub tests share one lock so `cargo test`'s parallel runner
    /// cannot interleave arm/disarm cycles.
    fn hub_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn ev(page: u32) -> ObsEvent {
        ObsEvent::ReadaheadHit { pid: 1, page }
    }

    #[test]
    fn disarmed_hooks_are_no_ops() {
        let _g = hub_lock();
        disarm();
        assert!(!armed());
        record(SimTime::ZERO, 0, &ev(1));
        mirror_sample("{\"x\":1}");
        mirror_snapshot("{\"y\":2}");
        assert!(!freeze(
            IncidentTrigger::Error {
                what: "nope".to_string()
            },
            SimTime::ZERO
        ));
        assert!(take_incident().is_none());
    }

    #[test]
    fn ring_wraps_and_freeze_appends_trip_marker() {
        let _g = hub_lock();
        arm(FlightConfig {
            events: 4,
            ..FlightConfig::default()
        });
        note_run(RunMeta {
            scenario: "t".to_string(),
            seed: 7,
            ..RunMeta::default()
        });
        for page in 0..10 {
            record(SimTime::from_us(page as u64), 0, &ev(page));
        }
        assert!(freeze(
            IncidentTrigger::Watchdog {
                rule: WatchdogRule::QueueDepth,
                value: 9,
                limit: 4,
                detail: String::new(),
            },
            SimTime::from_us(10)
        ));
        // Second freeze loses.
        assert!(!freeze(
            IncidentTrigger::Error {
                what: "late".to_string()
            },
            SimTime::from_us(11)
        ));
        let dump = take_incident().expect("frozen incident");
        assert_eq!(dump.events_seen, 11, "10 events + trip marker");
        assert_eq!(dump.events_dropped, 7);
        assert_eq!(dump.events.len(), 4);
        // Oldest-first, trip marker last.
        assert_eq!(dump.events[0].event, ev(7));
        assert_eq!(
            dump.events[3].event,
            ObsEvent::WatchdogTrip {
                rule: WatchdogRule::QueueDepth,
                value: 9,
                limit: 4,
            }
        );
        assert_eq!(dump.at_us, 10);
        assert_eq!(dump.meta.seed, 7);
        // Taking the incident re-opened the window.
        assert!(take_incident().is_none());
        record(SimTime::ZERO, 0, &ev(99));
        assert!(freeze(
            IncidentTrigger::Error {
                what: "again".to_string()
            },
            SimTime::ZERO
        ));
        let second = take_incident().expect("second incident");
        assert_eq!(second.events_seen, 1);
        disarm();
    }

    #[test]
    fn frozen_ring_ignores_further_events() {
        let _g = hub_lock();
        arm(FlightConfig::default());
        record(SimTime::ZERO, 0, &ev(1));
        freeze(
            IncidentTrigger::Error {
                what: "stop".to_string(),
            },
            SimTime::from_us(5),
        );
        record(SimTime::from_us(6), 0, &ev(2));
        mirror_sample("{\"late\":1}");
        let dump = take_incident().expect("incident");
        assert_eq!(dump.events.len(), 1);
        assert!(dump.samples.is_empty());
        disarm();
    }

    #[test]
    fn sample_and_snapshot_mirrors_are_bounded() {
        let _g = hub_lock();
        arm(FlightConfig {
            samples: 2,
            snapshots: 1,
            ..FlightConfig::default()
        });
        for i in 0..5 {
            mirror_sample(&format!("{{\"s\":{i}}}"));
        }
        mirror_snapshot("{\"m\":0}");
        mirror_snapshot("{\"m\":1}");
        freeze(
            IncidentTrigger::Error {
                what: "x".to_string(),
            },
            SimTime::ZERO,
        );
        let dump = take_incident().expect("incident");
        assert_eq!(dump.samples, vec!["{\"s\":3}", "{\"s\":4}"]);
        assert_eq!(dump.samples_dropped, 3);
        assert_eq!(dump.snapshots, vec!["{\"m\":1}"]);
        assert_eq!(dump.snapshots_dropped, 1);
        disarm();
    }

    #[test]
    fn dump_encoding_is_stable_and_deterministic() {
        let make = || {
            let mut events = Vec::new();
            for page in 0..3 {
                events.push(TracedEvent {
                    at: SimTime::from_us(page as u64 * 10),
                    src: 0,
                    event: ev(page),
                });
            }
            IncidentDump {
                schema_version: DUMP_SCHEMA_VERSION,
                trigger: IncidentTrigger::Watchdog {
                    rule: WatchdogRule::JobStall,
                    value: 100,
                    limit: 50,
                    detail: "job b stalled".to_string(),
                },
                at_us: 30,
                meta: RunMeta {
                    scenario: "quick \"q\"".to_string(),
                    seed: 42,
                    config_fp: 0xdead_beef,
                    jobs: vec!["a".to_string(), "b".to_string()],
                    pid_job: vec![(0, 0), (1, 1)],
                },
                events_seen: 3,
                events_dropped: 0,
                events,
                samples_dropped: 0,
                samples: vec!["{\"s\":1}".to_string()],
                snapshots_dropped: 0,
                snapshots: Vec::new(),
            }
        };
        let a = make().to_json_string();
        assert_eq!(a, make().to_json_string(), "encoding must be deterministic");
        assert!(a.starts_with(
            "{\"schema_version\":1,\"trigger\":{\"kind\":\"watchdog\",\"rule\":\"job_stall\",\"value\":100,\"limit\":50,\"detail\":\"job b stalled\"},\"at_us\":30,\"scenario\":\"quick \\\"q\\\"\",\"seed\":42,\"config_fp\":\"00000000deadbeef\",\"jobs\":[\"a\",\"b\"],\"pid_job\":[[0,0],[1,1]],\"events_seen\":3,\"events_dropped\":0,\"events\":[\n"
        ));
        assert!(a.ends_with("],\"samples_dropped\":0,\"samples\":[\n{\"s\":1}\n],\"snapshots_dropped\":0,\"snapshots\":[]}\n"));
    }

    #[test]
    fn every_event_line_round_trips() {
        // Parse must invert the encoder for every variant; reuse the
        // canonical one-of-each list shape from the event tests.
        let evs = [
            ObsEvent::PageFault {
                pid: 1,
                page: 2,
                major: true,
            },
            ObsEvent::MajorFault {
                pid: 1,
                page: 2,
                readahead: 3,
                write_pages: 4,
                read_pages: 5,
            },
            ObsEvent::ReadaheadHit { pid: 1, page: 2 },
            ObsEvent::EvictBatch {
                pid: 1,
                pages: 2,
                write_pages: 3,
            },
            ObsEvent::Evict {
                pid: 1,
                page: 2,
                false_eviction: true,
                recorded: false,
            },
            ObsEvent::Reclaim {
                target: 1,
                freed: 2,
                write_pages: 3,
            },
            ObsEvent::AggressiveOut { pid: 1, pages: 2 },
            ObsEvent::ReplayPage { pid: 1, page: 2 },
            ObsEvent::Replay {
                pid: 1,
                pages: 2,
                skipped: 3,
            },
            ObsEvent::BgTick { pid: 1, pages: 2 },
            ObsEvent::DiskRequest {
                write: true,
                extents: 1,
                pages: 2,
                wait_us: 3,
                seek_us: 4,
                service_us: 5,
            },
            ObsEvent::FaultService {
                pid: 1,
                page: 2,
                wait_us: 3,
            },
            ObsEvent::BarrierWait {
                ranks: 2,
                skew_us: 3,
                lag_us: 4,
            },
            ObsEvent::SwitchPhase {
                switch: 1,
                phase: SwitchPhaseKind::PageOut,
                dur_us: 2,
            },
            ObsEvent::SwitchDone {
                switch: 1,
                total_us: 2,
            },
            ObsEvent::NodeGauge {
                free_frames: 1,
                dirty_pages: 2,
                disk_backlog_us: 3,
                disk_busy_us: 4,
                bg_cleaned: 5,
            },
            ObsEvent::ProcGauge {
                pid: 1,
                resident: 2,
                dirty: 3,
            },
            ObsEvent::DiskError {
                write: false,
                pages: 2,
                service_us: 3,
            },
            ObsEvent::DiskSlowdown { penalty_us: 1 },
            ObsEvent::IoRetry {
                node: 1,
                attempt: 2,
                backoff_us: 3,
            },
            ObsEvent::NodeCrash {
                node: 1,
                jobs_suspended: 2,
            },
            ObsEvent::NodeRestart {
                node: 1,
                jobs_requeued: 2,
            },
            ObsEvent::JobRequeued { job: 1 },
            ObsEvent::BarrierTimeout {
                job: 1,
                attempt: 2,
                waited_us: 3,
            },
            ObsEvent::MemPressure {
                node: 1,
                target: 2,
                write_pages: 3,
            },
            ObsEvent::AiDegraded { node: 1, errors: 2 },
            ObsEvent::IoExhausted {
                node: 1,
                attempts: 2,
            },
            ObsEvent::BarrierExhausted {
                job: 1,
                attempts: 2,
            },
            ObsEvent::WatchdogTrip {
                rule: WatchdogRule::RecoveryExhausted,
                value: 1,
                limit: 2,
            },
        ];
        for event in evs {
            let orig = TracedEvent {
                at: SimTime::from_us(123),
                src: 4,
                event,
            };
            let line = orig.event.to_json_line(orig.at, orig.src);
            let back = parse_event_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, orig, "round trip failed for {line}");
        }
    }

    #[test]
    fn malformed_event_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{\"t\":1}",
            "{\"t\":1,\"src\":0,\"ev\":\"nope\"}",
            "{\"t\":1,\"src\":0,\"ev\":\"page_fault\",\"pid\":1,\"page\":2}",
            "{\"t\":-1,\"src\":0,\"ev\":\"replay_page\",\"pid\":1,\"page\":2}",
        ] {
            assert!(parse_event_line(bad).is_err(), "must reject {bad:?}");
        }
    }
}
