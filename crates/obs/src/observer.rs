//! The `Observer` trait and the `ObsLink` emission seam.

use crate::event::{ObsEvent, SRC_CLUSTER};
use agp_sim::SimTime;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sink for simulation events. Implementations must tolerate being
/// called from any instrumented layer in event order; `at` is the
/// simulation instant, `src` the emitting component's tag (node index,
/// job index, or [`SRC_CLUSTER`]).
pub trait Observer {
    /// Deliver one event.
    fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent);
}

/// A type-erased, shareable sink handle.
///
/// Sinks are shared so the caller can keep a typed `Arc<Mutex<Collector>>`
/// and read it back after the run while the simulation holds the erased
/// clone.
pub type SharedSink = Arc<Mutex<dyn Observer + Send>>;

/// Wrap a sink for sharing between the caller and an [`ObsLink`].
pub fn shared<T: Observer + Send + 'static>(sink: T) -> Arc<Mutex<T>> {
    Arc::new(Mutex::new(sink))
}

struct LinkInner {
    sinks: Vec<SharedSink>,
    /// Last event-loop instant, maintained by the simulation via
    /// [`ObsLink::tick`]. Lets deep call sites without a `now` parameter
    /// (eviction, background-writer internals) emit correctly stamped
    /// events without threading timestamps through every mechanism API.
    clock: AtomicU64,
}

/// The emission handle instrumented components hold.
///
/// The default ([`ObsLink::disabled`]) has no sinks: `emit` is then a
/// single `Option` check and the event-constructing closure is never
/// called, so disabled tracing compiles down to nothing on the hot path.
/// Clones share sinks and clock; [`ObsLink::with_src`] re-tags a clone
/// for a different emitting component.
#[derive(Clone, Default)]
pub struct ObsLink {
    inner: Option<Arc<LinkInner>>,
    src: u32,
}

impl ObsLink {
    /// The no-op link (same as `ObsLink::default()`).
    pub fn disabled() -> Self {
        ObsLink::default()
    }

    /// A link delivering to one sink.
    pub fn to(sink: SharedSink) -> Self {
        ObsLink::fanout(vec![sink])
    }

    /// A link fanning out to several sinks, in order.
    pub fn fanout(sinks: Vec<SharedSink>) -> Self {
        if sinks.is_empty() {
            return ObsLink::default();
        }
        ObsLink {
            inner: Some(Arc::new(LinkInner {
                sinks,
                clock: AtomicU64::new(0),
            })),
            src: SRC_CLUSTER,
        }
    }

    /// A new link delivering to this link's sinks plus `sink`, with a
    /// fresh clock. Intended for pre-run composition — e.g. splicing the
    /// flight recorder into the fanout before [`ObsLink::with_src`]
    /// distributes clones to components — so an otherwise-disabled link
    /// becomes enabled with exactly the extra sink.
    pub fn extended(&self, sink: SharedSink) -> Self {
        let mut sinks: Vec<SharedSink> = match &self.inner {
            Some(inner) => inner.sinks.clone(),
            None => Vec::new(),
        };
        sinks.push(sink);
        ObsLink {
            src: self.src,
            ..ObsLink::fanout(sinks)
        }
    }

    /// A clone of this link tagged with `src` (shares sinks and clock).
    pub fn with_src(&self, src: u32) -> Self {
        ObsLink {
            inner: self.inner.clone(),
            src,
        }
    }

    /// This link's source tag.
    pub fn src(&self) -> u32 {
        self.src
    }

    /// Whether any sink is attached.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advance the shared clock; the simulation loop calls this once per
    /// popped event so [`ObsLink::emit_clock`] sites are stamped with the
    /// current simulation instant.
    pub fn tick(&self, now: SimTime) {
        if let Some(inner) = &self.inner {
            inner.clock.store(now.as_us(), Ordering::Relaxed);
        }
    }

    /// The shared clock's current value ([`SimTime::ZERO`] when disabled).
    pub fn clock(&self) -> SimTime {
        match &self.inner {
            Some(inner) => SimTime::from_us(inner.clock.load(Ordering::Relaxed)),
            None => SimTime::ZERO,
        }
    }

    /// Emit an event at an explicit instant. `make` runs only when a sink
    /// is attached.
    #[inline]
    pub fn emit<F: FnOnce() -> ObsEvent>(&self, at: SimTime, make: F) {
        if let Some(inner) = &self.inner {
            deliver(inner, at, self.src, make());
        }
    }

    /// Emit an event stamped with the shared clock (for call sites without
    /// a `now` of their own). `make` runs only when a sink is attached.
    #[inline]
    pub fn emit_clock<F: FnOnce() -> ObsEvent>(&self, make: F) {
        if let Some(inner) = &self.inner {
            let at = SimTime::from_us(inner.clock.load(Ordering::Relaxed));
            deliver(inner, at, self.src, make());
        }
    }
}

fn deliver(inner: &LinkInner, at: SimTime, src: u32, ev: ObsEvent) {
    let _perf = agp_perf::scope(agp_perf::Span::ObsEmit);
    for sink in &inner.sinks {
        let mut guard = match sink.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.on_event(at, src, &ev);
    }
}

impl fmt::Debug for ObsLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsLink")
            .field("enabled", &self.enabled())
            .field("sinks", &self.inner.as_ref().map_or(0, |i| i.sinks.len()))
            .field("src", &self.src)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        seen: Vec<(u64, u32, &'static str)>,
    }

    impl Observer for Counting {
        fn on_event(&mut self, at: SimTime, src: u32, ev: &ObsEvent) {
            self.seen.push((at.as_us(), src, ev.name()));
        }
    }

    #[test]
    fn disabled_link_never_constructs_events() {
        let link = ObsLink::disabled();
        assert!(!link.enabled());
        let mut called = false;
        link.emit(SimTime::ZERO, || {
            called = true;
            ObsEvent::BgTick { pid: 0, pages: 0 }
        });
        link.emit_clock(|| {
            called = true;
            ObsEvent::BgTick { pid: 0, pages: 0 }
        });
        assert!(!called, "closure must not run without sinks");
    }

    #[test]
    fn emit_delivers_with_src_and_time() {
        let sink = shared(Counting::default());
        let link = ObsLink::to(sink.clone()).with_src(3);
        link.emit(SimTime::from_us(42), || ObsEvent::ReadaheadHit {
            pid: 1,
            page: 2,
        });
        let seen = &sink.lock().unwrap().seen;
        assert_eq!(seen.as_slice(), &[(42, 3, "readahead_hit")]);
    }

    #[test]
    fn clock_stamps_deep_call_sites() {
        let sink = shared(Counting::default());
        let link = ObsLink::to(sink.clone());
        let node_link = link.with_src(0);
        link.tick(SimTime::from_ms(7)); // clones share the clock
        node_link.emit_clock(|| ObsEvent::BgTick { pid: 9, pages: 4 });
        let seen = &sink.lock().unwrap().seen;
        assert_eq!(seen.as_slice(), &[(7_000, 0, "bg_tick")]);
    }

    #[test]
    fn fanout_delivers_in_order_to_all() {
        let a = shared(Counting::default());
        let b = shared(Counting::default());
        let link = ObsLink::fanout(vec![a.clone(), b.clone()]).with_src(1);
        link.emit(SimTime::ZERO, || ObsEvent::BgTick { pid: 0, pages: 1 });
        assert_eq!(a.lock().unwrap().seen.len(), 1);
        assert_eq!(b.lock().unwrap().seen.len(), 1);
    }

    #[test]
    fn empty_fanout_is_disabled() {
        assert!(!ObsLink::fanout(Vec::new()).enabled());
    }

    #[test]
    fn extended_adds_a_sink_and_enables_disabled_links() {
        let a = shared(Counting::default());
        let b = shared(Counting::default());
        let link = ObsLink::to(a.clone()).with_src(2).extended(b.clone());
        assert_eq!(link.src(), 2, "extension keeps the source tag");
        link.emit(SimTime::ZERO, || ObsEvent::BgTick { pid: 0, pages: 1 });
        assert_eq!(a.lock().unwrap().seen.len(), 1);
        assert_eq!(b.lock().unwrap().seen.len(), 1);

        let solo = ObsLink::disabled().extended(b.clone());
        assert!(solo.enabled());
        solo.emit(SimTime::ZERO, || ObsEvent::BgTick { pid: 0, pages: 2 });
        assert_eq!(b.lock().unwrap().seen.len(), 2);
    }
}
