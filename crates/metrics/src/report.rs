//! The §4.1 metric definitions and plain-text rendering.
//!
//! The paper's serial/parallel result graphs all derive from three
//! completion times per workload: the original kernel (`T_orig`), an
//! adaptive policy (`T_p`), and the back-to-back batch run (`T_batch`,
//! which by construction has no job-switch paging):
//!
//! * **switching overhead** of policy *p*: `(T_p − T_batch) / T_p` — "how
//!   much fraction of the time is spent on paging for job switching";
//! * **paging(-overhead) reduction** of *p* vs the original:
//!   `1 − (T_p − T_batch) / (T_orig − T_batch)`.
//!
//! Consistency check against the paper: LU serial overhead falls 26 % → 5 %
//! and the reported reduction is 84 % — with `T_batch = B`,
//! `T_orig = B/0.74`, `T_p = B/0.95`, the formula gives
//! `1 − 0.0526/0.3513 ≈ 0.85`. ✓

use agp_sim::SimDur;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Switching overhead of a policy, in percent (paper Fig. 7b/8b/8e/9b).
pub fn overhead_pct(t_policy: SimDur, t_batch: SimDur) -> f64 {
    if t_policy.as_us() == 0 {
        return 0.0;
    }
    let over = t_policy.saturating_sub(t_batch);
    100.0 * over.as_us() as f64 / t_policy.as_us() as f64
}

/// Reduction in paging overhead vs the original policy, in percent (paper
/// Fig. 7c/8c/8f/9c). Negative values mean the policy made things worse.
pub fn reduction_pct(t_orig: SimDur, t_policy: SimDur, t_batch: SimDur) -> f64 {
    let base = t_orig.saturating_sub(t_batch);
    if base.as_us() == 0 {
        return 0.0;
    }
    let now = t_policy.saturating_sub(t_batch);
    100.0 * (1.0 - now.as_us() as f64 / base.as_us() as f64)
}

/// A plain-text table with aligned columns; renders for terminals and
/// converts to CSV for EXPERIMENTS.md.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table titled `title` with the given column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, col).
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// CSV rendering (headers + rows; cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Markdown rendering (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        let _ = ncol;
        Ok(())
    }
}

/// Render a numeric series as a one-line unicode sparkline — used by the
/// CLI to show Fig. 6-style traces in a terminal.
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return values.iter().map(|_| ' ').collect();
    }
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                ' '
            } else {
                let idx = ((v as u128 * (BARS.len() as u128 - 1)).div_ceil(max as u128)) as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Render labeled counts as an ASCII horizontal bar chart — used by
/// `agp profile` for the latency histograms. Labels are right-aligned,
/// bars scale to the largest count (at most 40 characters), and any
/// non-zero count draws at least one `#`.
pub fn bar_chart(rows: &[(String, u64)]) -> String {
    const WIDTH: u64 = 40;
    let max = rows.iter().map(|(_, c)| *c).max().unwrap_or(0);
    if max == 0 {
        return String::new();
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, count) in rows {
        let bar = if *count == 0 {
            0
        } else {
            ((count * WIDTH) / max).max(1)
        };
        out.push_str(&format!(
            "{label:>label_w$}  {:<w$}  {count}\n",
            "#".repeat(bar as usize),
            w = WIDTH as usize,
        ));
    }
    out
}

/// Format a duration as fractional minutes with one decimal — the unit of
/// the paper's completion-time graphs.
pub fn fmt_mins(d: SimDur) -> String {
    format!("{:.1}", d.as_mins_f64())
}

/// Format a percentage with one decimal.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_papers_lu_example() {
        // T_batch = 74 min, T_orig = 100 min -> 26% overhead.
        let batch = SimDur::from_mins(74);
        let orig = SimDur::from_mins(100);
        assert!((overhead_pct(orig, batch) - 26.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_reproduces_84_percent() {
        // 26% -> 5% overhead must report ~85% reduction (§4.1 text: 84%).
        let batch = SimDur::from_us(74_000_000);
        let orig = SimDur::from_us(100_000_000); // 26% overhead
        let adaptive = SimDur::from_us((74_000_000f64 / 0.95) as u64); // 5%
        let red = reduction_pct(orig, adaptive, batch);
        assert!((83.0..=87.0).contains(&red), "got {red}");
    }

    #[test]
    fn reduction_can_be_negative() {
        let batch = SimDur::from_mins(10);
        let orig = SimDur::from_mins(12);
        let worse = SimDur::from_mins(14);
        assert!(reduction_pct(orig, worse, batch) < 0.0);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(overhead_pct(SimDur::ZERO, SimDur::ZERO), 0.0);
        assert_eq!(
            reduction_pct(
                SimDur::from_mins(5),
                SimDur::from_mins(5),
                SimDur::from_mins(5)
            ),
            0.0
        );
        // Batch longer than policy (measurement noise): overhead clamps to 0.
        assert_eq!(
            overhead_pct(SimDur::from_mins(5), SimDur::from_mins(6)),
            0.0
        );
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 1), "23");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn bar_chart_scales_and_floors() {
        let rows = vec![
            ("1ms".to_string(), 80u64),
            ("2ms".to_string(), 1),
            ("4ms".to_string(), 0),
        ];
        let s = bar_chart(&rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains(&"#".repeat(40)),
            "max row fills the width"
        );
        assert!(lines[1].contains('#'), "non-zero rows get at least one #");
        assert!(!lines[2].contains('#'), "zero rows draw nothing");
        assert!(lines[0].trim_end().ends_with("80"));
        assert_eq!(bar_chart(&[]), "");
        assert_eq!(bar_chart(&[("0".to_string(), 0)]), "");
    }

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "  ");
        let s = sparkline(&[0, 1, 50, 100]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[3], '█');
        assert!(chars[1] < chars[2], "monotone in value");
    }
}
