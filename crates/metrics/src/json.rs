//! A minimal, dependency-free JSON value model with a deterministic
//! writer and a strict parser.
//!
//! Exists because the parity manifests (`report.json`, `BENCH_agp.json`)
//! and the Perfetto exporter must be **byte-stable across runs and
//! platforms**: objects keep insertion order (no hash containers), floats
//! render via Rust's shortest-roundtrip formatting, and integral floats
//! render without a fractional part. The parser accepts exactly the JSON
//! this writer (and any standard encoder) produces.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like browsers do).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Render compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_f64(*n)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Compact rendering as a fresh string.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Deterministic `f64` rendering: integral values (within exact-integer
/// range) drop the fractional part, everything else uses Rust's
/// shortest-roundtrip formatting. Non-finite values (JSON cannot carry
/// them) render as `null`.
pub fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our ASCII
                            // manifests; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let src = r#"{"a":1,"b":-2.5,"c":[true,false,null],"d":{"e":"hi"}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string_compact(), src);
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn object_order_is_preserved() {
        let src = r#"{"z":1,"a":2,"m":3}"#;
        let v = Json::parse(src).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.to_string_compact(), src);
    }

    #[test]
    fn floats_render_deterministically() {
        assert_eq!(format_f64(35.2), "35.2");
        assert_eq!(format_f64(35.0), "35");
        assert_eq!(format_f64(-0.5), "-0.5");
        assert_eq!(format_f64(0.0), "0");
        assert_eq!(format_f64(f64::NAN), "null");
        // Parse → write → parse is a fixed point.
        for s in ["35.2", "35", "-0.5", "1e-3", "123456789.25"] {
            let v = Json::parse(s).unwrap();
            let out = v.to_string_compact();
            assert_eq!(Json::parse(&out).unwrap(), v, "{s} → {out}");
            let again = Json::parse(&out).unwrap().to_string_compact();
            assert_eq!(out, again, "writer must be a fixed point for {s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\ttab\u{1}".to_string());
        let s = v.to_string_compact();
        assert_eq!(s, r#""a\"b\\c\nd\ttab\u0001""#);
        assert_eq!(Json::parse(&s).unwrap(), v);
        // Unicode passes through raw.
        let u = Json::parse("\"µs → done\"").unwrap();
        assert_eq!(u.as_str(), Some("µs → done"));
    }

    #[test]
    fn whitespace_and_pretty_inputs_parse() {
        let src = "{\n  \"a\": [ 1 , 2 ],\n  \"b\": { }\n}\n";
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string_compact(), r#"{"a":[1,2],"b":{}}"#);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }
}
