//! # agp-metrics — measurement and reporting
//!
//! Everything the paper's evaluation section reports is computed here:
//!
//! * [`trace::ActivityTrace`] — time-bucketed page-in/page-out rates, the
//!   raw material of the paper's Fig. 6 paging-activity traces,
//! * [`report`] — the §4.1 metric definitions (switching overhead %,
//!   paging-overhead reduction %) plus plain-text table / CSV / ASCII
//!   chart rendering used by the CLI, benches, and EXPERIMENTS.md,
//! * [`manifest`] — the flat parity manifest (`report.json`) and the
//!   tolerance-band compare behind `agp report --check`,
//! * [`json`] — the dependency-free, byte-deterministic JSON value model
//!   the manifests (and the Perfetto exporter's tests) are built on.
//!
//! Keeping the math in one crate means every experiment, test, and bench
//! agrees on exactly what "overhead" and "reduction" mean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod report;
pub mod trace;

pub use json::Json;
pub use manifest::{
    BenchManifest, Drift, ParityManifest, SpanCell, Tolerance, Tolerances, BENCH_SCHEMA_VERSION,
    MANIFEST_SCHEMA_VERSION,
};
pub use report::{bar_chart, overhead_pct, reduction_pct, Table};
pub use trace::ActivityTrace;
