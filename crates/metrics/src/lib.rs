//! # agp-metrics — measurement and reporting
//!
//! Everything the paper's evaluation section reports is computed here:
//!
//! * [`trace::ActivityTrace`] — time-bucketed page-in/page-out rates, the
//!   raw material of the paper's Fig. 6 paging-activity traces,
//! * [`report`] — the §4.1 metric definitions (switching overhead %,
//!   paging-overhead reduction %) plus plain-text table / CSV / ASCII
//!   chart rendering used by the CLI, benches, and EXPERIMENTS.md.
//!
//! Keeping the math in one crate means every experiment, test, and bench
//! agrees on exactly what "overhead" and "reduction" mean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod trace;

pub use report::{bar_chart, overhead_pct, reduction_pct, Table};
pub use trace::ActivityTrace;
