//! The paper-parity manifest: every EXPERIMENTS.md number as a flat,
//! versioned, machine-comparable map — plus the tolerance-band compare
//! that turns it into a regression gate (`agp report --check`).
//!
//! A manifest is a `metric key → f64` map. Keys are dotted slugs,
//! `"{experiment}.{table}.{row}.{column}"` (built by the experiments
//! crate), so tolerances can target anything from one cell to a whole
//! experiment by prefix. Serialization is the hand-rolled [`crate::json`]
//! writer: BTreeMap key order + deterministic float formatting means two
//! identical runs produce byte-identical `report.json` files.

use crate::json::{format_f64, Json};
use std::collections::BTreeMap;
use std::fmt;

/// Schema version stamped into `report.json` / `BENCH_agp.json`; bump on
/// breaking shape changes so stale goldens fail loudly instead of
/// comparing garbage.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// A flat map of parity metrics from one run of the experiment registry.
#[derive(Clone, Debug, PartialEq)]
pub struct ParityManifest {
    /// Manifest schema version (see [`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment scale the run used ("quick" or "paper").
    pub scale: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Metric slug → value. BTreeMap so serialization order is fixed.
    pub metrics: BTreeMap<String, f64>,
}

impl ParityManifest {
    /// An empty manifest for the given scale and seed.
    pub fn new(scale: impl Into<String>, seed: u64) -> Self {
        ParityManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            scale: scale.into(),
            seed,
            metrics: BTreeMap::new(),
        }
    }

    /// Record one metric. Duplicate keys get a `#2`, `#3`, … suffix so no
    /// table cell is silently dropped.
    pub fn insert(&mut self, key: impl Into<String>, value: f64) {
        use std::collections::btree_map::Entry;
        let key = key.into();
        let mut n = 1u32;
        loop {
            let k = if n == 1 {
                key.clone()
            } else {
                format!("{key}#{n}")
            };
            if let Entry::Vacant(slot) = self.metrics.entry(k) {
                slot.insert(value);
                return;
            }
            n += 1;
        }
    }

    /// Deterministic pretty JSON (2-space indent, sorted metric keys,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            Json::Str(k.clone()).write(&mut out);
            out.push_str(": ");
            out.push_str(&format_f64(*v));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a manifest written by [`ParityManifest::to_json`] (or any
    /// standard encoder producing the same shape).
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u32;
        if schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(format!(
                "manifest schema_version {schema_version} != supported {MANIFEST_SCHEMA_VERSION}"
            ));
        }
        let scale = v
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("missing scale")?
            .to_string();
        let seed = v.get("seed").and_then(Json::as_f64).ok_or("missing seed")? as u64;
        let mut metrics = BTreeMap::new();
        for (k, val) in v
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or("missing metrics object")?
        {
            let num = val
                .as_f64()
                .ok_or_else(|| format!("metric {k} is not a number"))?;
            metrics.insert(k.clone(), num);
        }
        Ok(ParityManifest {
            schema_version,
            scale,
            seed,
            metrics,
        })
    }

    /// Compare this run against a golden manifest under `tol`, returning
    /// every drifted/missing/extra metric (empty = pass). Key order of the
    /// result is deterministic (sorted).
    pub fn compare(&self, golden: &ParityManifest, tol: &Tolerances) -> Vec<Drift> {
        let mut out = Vec::new();
        if self.scale != golden.scale {
            out.push(Drift {
                key: "<scale>".to_string(),
                got: None,
                want: None,
                allowed: 0.0,
                note: format!("run scale '{}' vs golden '{}'", self.scale, golden.scale),
            });
        }
        let keys: BTreeMap<&String, ()> = self
            .metrics
            .keys()
            .chain(golden.metrics.keys())
            .map(|k| (k, ()))
            .collect();
        for (key, ()) in keys {
            let got = self.metrics.get(key).copied();
            let want = golden.metrics.get(key).copied();
            let t = tol.for_key(key);
            match (got, want) {
                (Some(g), Some(w)) => {
                    let allowed = t.abs.max(t.rel * w.abs());
                    if (g - w).abs() > allowed {
                        out.push(Drift {
                            key: key.clone(),
                            got,
                            want,
                            allowed,
                            note: String::new(),
                        });
                    }
                }
                _ => out.push(Drift {
                    key: key.clone(),
                    got,
                    want,
                    allowed: 0.0,
                    note: String::new(),
                }),
            }
        }
        out
    }
}

/// Allowed deviation for one metric: passes when
/// `|got − want| ≤ max(abs, rel·|want|)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Relative band (fraction of the golden value).
    pub rel: f64,
    /// Absolute band (same unit as the metric).
    pub abs: f64,
}

impl Tolerance {
    /// A band of `rel` fraction and `abs` absolute slack.
    pub fn new(rel: f64, abs: f64) -> Self {
        Tolerance { rel, abs }
    }

    /// Exact match required.
    pub fn exact() -> Self {
        Tolerance { rel: 0.0, abs: 0.0 }
    }
}

/// Per-metric tolerance bands: a default plus longest-prefix overrides.
#[derive(Clone, Debug)]
pub struct Tolerances {
    default: Tolerance,
    /// `(key prefix, band)`, matched longest-prefix-first.
    overrides: Vec<(String, Tolerance)>,
}

impl Tolerances {
    /// All metrics use `default` unless overridden.
    pub fn new(default: Tolerance) -> Self {
        Tolerances {
            default,
            overrides: Vec::new(),
        }
    }

    /// Add a prefix override (e.g. `"fig6."` for a whole experiment or
    /// `"fig7.overhead.LU"` for one row).
    pub fn with_override(mut self, prefix: impl Into<String>, tol: Tolerance) -> Self {
        self.overrides.push((prefix.into(), tol));
        self
    }

    /// The band that applies to `key`.
    pub fn for_key(&self, key: &str) -> Tolerance {
        self.overrides
            .iter()
            .filter(|(p, _)| key.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }
}

/// One metric outside its tolerance band (or missing from one side).
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// Metric slug.
    pub key: String,
    /// Value from this run (`None` = metric vanished).
    pub got: Option<f64>,
    /// Golden value (`None` = metric is new, not in the golden).
    pub want: Option<f64>,
    /// The band that was allowed.
    pub allowed: f64,
    /// Extra context for structural mismatches.
    pub note: String,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.note.is_empty() {
            return write!(f, "{}: {}", self.key, self.note);
        }
        match (self.got, self.want) {
            (Some(g), Some(w)) => write!(
                f,
                "{}: got {}, golden {}, |Δ| {} > allowed {}",
                self.key,
                format_f64(g),
                format_f64(w),
                format_f64((g - w).abs()),
                format_f64(self.allowed)
            ),
            (Some(g), None) => write!(
                f,
                "{}: got {} but metric is absent from the golden (run --update-golden?)",
                self.key,
                format_f64(g)
            ),
            (None, Some(w)) => write!(
                f,
                "{}: golden expects {} but the run did not produce it",
                self.key,
                format_f64(w)
            ),
            (None, None) => write!(f, "{}: structural mismatch", self.key),
        }
    }
}

/// Schema version stamped into `BENCH_agp.json`. v2 added run metadata
/// (`build_profile`, `iterations`, harness-injected `stamp`) and
/// per-experiment per-span host-time aggregates next to the wall-clock
/// map; v1 files are rejected loudly with a migration hint.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Host-time aggregate for one profiler span within one experiment
/// (mirrors `agp-perf`'s flat span stats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCell {
    /// Frames exited.
    pub calls: u64,
    /// Inclusive wall nanoseconds.
    pub total_ns: u64,
    /// Exclusive (self) wall nanoseconds.
    pub self_ns: u64,
}

/// Wall-clock self-timings per experiment (`BENCH_agp.json`). The
/// timing values are machine-dependent, so `agp report --check` gates
/// them only through a generous one-sided regression band
/// ([`BenchManifest::compare_wall`]) — the *shape* (schema v2) is
/// enforced strictly by parse and by `scripts/check.sh`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchManifest {
    /// Manifest schema version (see [`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Cargo profile the run was built under (`release` / `debug`).
    pub build_profile: String,
    /// Timing iterations per experiment (wall numbers are the minimum).
    pub iterations: u32,
    /// Harness-injected label (tier timestamp, CI run id, …). Always
    /// supplied from outside the simulator — never from `SystemTime`
    /// inside it — so sim code stays wall-clock-free.
    pub stamp: String,
    /// Experiment id → wall-clock seconds.
    pub wall_secs: BTreeMap<String, f64>,
    /// Experiment id → span name → host-time aggregate.
    pub spans: BTreeMap<String, BTreeMap<String, SpanCell>>,
}

impl BenchManifest {
    /// An empty bench manifest stamped with this build's profile.
    pub fn new() -> Self {
        BenchManifest {
            schema_version: BENCH_SCHEMA_VERSION,
            build_profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            iterations: 1,
            stamp: String::new(),
            wall_secs: BTreeMap::new(),
            spans: BTreeMap::new(),
        }
    }

    /// Record one experiment's wall-clock time.
    pub fn insert(&mut self, id: impl Into<String>, secs: f64) {
        self.wall_secs.insert(id.into(), secs);
    }

    /// Record one experiment's per-span host-time aggregates.
    pub fn insert_spans(&mut self, id: impl Into<String>, cells: BTreeMap<String, SpanCell>) {
        self.spans.insert(id.into(), cells);
    }

    /// Deterministic pretty JSON (modulo the timing values themselves).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str("  \"build_profile\": ");
        Json::Str(self.build_profile.clone()).write(&mut out);
        out.push_str(",\n");
        out.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        out.push_str("  \"stamp\": ");
        Json::Str(self.stamp.clone()).write(&mut out);
        out.push_str(",\n");
        out.push_str("  \"wall_secs\": {");
        for (i, (k, v)) in self.wall_secs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            Json::Str(k.clone()).write(&mut out);
            out.push_str(": ");
            out.push_str(&format_f64(*v));
        }
        if !self.wall_secs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"spans\": {");
        for (i, (id, cells)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            Json::Str(id.clone()).write(&mut out);
            out.push_str(": {");
            for (j, (span, c)) in cells.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      ");
                Json::Str(span.clone()).write(&mut out);
                out.push_str(&format!(
                    ": {{\"calls\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
                    c.calls, c.total_ns, c.self_ns
                ));
            }
            if !cells.is_empty() {
                out.push_str("\n    ");
            }
            out.push('}');
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a bench manifest written by [`BenchManifest::to_json`].
    ///
    /// The schema version is enforced strictly (a v1 file names its
    /// migration path); the metadata fields default leniently so
    /// hand-edited manifests stay usable.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u32;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench schema_version {schema_version} != supported {BENCH_SCHEMA_VERSION} \
                 (regenerate with `agp report`)"
            ));
        }
        let build_profile = v
            .get("build_profile")
            .and_then(Json::as_str)
            .unwrap_or("release")
            .to_string();
        let iterations = v
            .get("iterations")
            .and_then(Json::as_f64)
            .map_or(1, |n| n as u32);
        let stamp = v
            .get("stamp")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let mut wall_secs = BTreeMap::new();
        for (k, val) in v
            .get("wall_secs")
            .and_then(Json::as_object)
            .ok_or("missing wall_secs object")?
        {
            wall_secs.insert(
                k.clone(),
                val.as_f64().ok_or_else(|| format!("{k} is not a number"))?,
            );
        }
        let mut spans = BTreeMap::new();
        if let Some(obj) = v.get("spans").and_then(Json::as_object) {
            for (id, cells_v) in obj {
                let mut cells = BTreeMap::new();
                for (span, cell_v) in cells_v
                    .as_object()
                    .ok_or_else(|| format!("spans.{id} is not an object"))?
                {
                    let field = |name: &str| -> Result<u64, String> {
                        cell_v
                            .get(name)
                            .and_then(Json::as_f64)
                            .map(|n| n as u64)
                            .ok_or_else(|| format!("spans.{id}.{span}: missing {name}"))
                    };
                    cells.insert(
                        span.clone(),
                        SpanCell {
                            calls: field("calls")?,
                            total_ns: field("total_ns")?,
                            self_ns: field("self_ns")?,
                        },
                    );
                }
                spans.insert(id.clone(), cells);
            }
        }
        Ok(BenchManifest {
            schema_version,
            build_profile,
            iterations,
            stamp,
            wall_secs,
            spans,
        })
    }

    /// One-sided wall-clock regression check against a committed
    /// baseline: an experiment fails only when it got *slower* than its
    /// band allows (`got − want > max(abs, rel·want)`); being faster
    /// never fails. Only experiments present on both sides are compared
    /// — the baseline may carry extra entries appended by later gate
    /// steps (e.g. `explain.fig9`, `chaos.smoke`), and a brand-new
    /// experiment has no band yet.
    pub fn compare_wall(&self, baseline: &BenchManifest, band: Tolerance) -> Vec<Drift> {
        let mut out = Vec::new();
        for (id, &got) in &self.wall_secs {
            let Some(&want) = baseline.wall_secs.get(id) else {
                continue;
            };
            let allowed = band.abs.max(band.rel * want.abs());
            if got - want > allowed {
                out.push(Drift {
                    key: id.clone(),
                    got: Some(got),
                    want: Some(want),
                    allowed,
                    note: format!(
                        "wall-clock regression: {} s vs baseline {} s (allowed +{})",
                        format_f64(got),
                        format_f64(want),
                        format_f64(allowed)
                    ),
                });
            }
        }
        out
    }
}

impl Default for BenchManifest {
    fn default() -> Self {
        BenchManifest::new()
    }
}

/// Slugify a table title / row label / column header into a dotted-key
/// segment: lowercase alphanumerics, runs of everything else collapse to
/// one `-`, trimmed. Empty inputs become `"x"`.
pub fn slug(s: &str) -> String {
    let mut out = String::new();
    let mut dash = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            if dash && !out.is_empty() {
                out.push('-');
            }
            dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            dash = true;
        }
    }
    if out.is_empty() {
        "x".to_string()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParityManifest {
        let mut m = ParityManifest::new("quick", 7);
        m.insert("fig7.overhead.lu.orig", 26.0);
        m.insert("fig7.overhead.lu.full", 5.2);
        m.insert("moreira.completion.mean-min", 35.0);
        m
    }

    #[test]
    fn manifest_round_trips_and_is_byte_stable() {
        let m = sample();
        let j = m.to_json();
        assert_eq!(ParityManifest::parse(&j).unwrap(), m);
        assert_eq!(m.to_json(), j, "writer is deterministic");
        assert!(j.ends_with("}\n"));
        // Keys serialize sorted regardless of insertion order.
        let fig7 = j.find("fig7.overhead.lu.full").unwrap();
        let moreira = j.find("moreira.completion").unwrap();
        assert!(fig7 < moreira);
    }

    #[test]
    fn duplicate_keys_are_suffixed_not_dropped() {
        let mut m = ParityManifest::new("quick", 0);
        m.insert("a.b", 1.0);
        m.insert("a.b", 2.0);
        m.insert("a.b", 3.0);
        assert_eq!(m.metrics.len(), 3);
        assert_eq!(m.metrics["a.b#2"], 2.0);
        assert_eq!(m.metrics["a.b#3"], 3.0);
    }

    #[test]
    fn compare_passes_inside_bands_and_names_drifts() {
        let golden = sample();
        let mut run = sample();
        let tol = Tolerances::new(Tolerance::new(0.05, 0.0));
        assert!(run.compare(&golden, &tol).is_empty());

        run.metrics.insert("fig7.overhead.lu.orig".into(), 28.0);
        let drifts = run.compare(&golden, &tol);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].key, "fig7.overhead.lu.orig");
        let msg = drifts[0].to_string();
        assert!(msg.contains("got 28"), "{msg}");
        assert!(msg.contains("golden 26"), "{msg}");

        // A wider override on the experiment prefix absorbs it.
        let loose = Tolerances::new(Tolerance::new(0.05, 0.0))
            .with_override("fig7.", Tolerance::new(0.10, 0.0));
        assert!(run.compare(&golden, &loose).is_empty());
    }

    #[test]
    fn longest_prefix_override_wins() {
        let tol = Tolerances::new(Tolerance::exact())
            .with_override("fig7.", Tolerance::new(0.5, 0.0))
            .with_override("fig7.overhead.", Tolerance::new(0.01, 0.0));
        assert_eq!(tol.for_key("fig7.overhead.lu.orig").rel, 0.01);
        assert_eq!(tol.for_key("fig7.pages.lu").rel, 0.5);
        assert_eq!(tol.for_key("fig6.peak").rel, 0.0);
    }

    #[test]
    fn missing_and_extra_metrics_are_drifts() {
        let golden = sample();
        let mut run = sample();
        run.metrics.remove("fig7.overhead.lu.full");
        run.metrics.insert("fig9.new-metric".into(), 1.0);
        let drifts = run.compare(&golden, &Tolerances::new(Tolerance::new(1.0, 1e9)));
        assert_eq!(drifts.len(), 2, "huge bands never excuse shape changes");
        assert!(drifts.iter().any(|d| d.got.is_none()));
        assert!(drifts.iter().any(|d| d.want.is_none()));
    }

    #[test]
    fn scale_mismatch_is_reported() {
        let golden = sample();
        let mut run = sample();
        run.scale = "paper".to_string();
        let drifts = run.compare(&golden, &Tolerances::new(Tolerance::new(1.0, 1e9)));
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].to_string().contains("scale"));
    }

    #[test]
    fn stale_schema_version_is_rejected() {
        let j = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = ParityManifest::parse(&j).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn bench_manifest_round_trips() {
        let mut b = BenchManifest::new();
        b.iterations = 3;
        b.stamp = "tier-2026-08-07".to_string();
        b.insert("moreira", 1.25);
        b.insert("fig6", 0.5);
        let mut cells = BTreeMap::new();
        cells.insert(
            "sim.dispatch".to_string(),
            SpanCell {
                calls: 120,
                total_ns: 9_000,
                self_ns: 4_500,
            },
        );
        b.insert_spans("moreira", cells);
        let j = b.to_json();
        assert_eq!(BenchManifest::parse(&j).unwrap(), b);
        assert_eq!(b.to_json(), j, "writer is deterministic");
        assert!(j.contains("\"schema_version\": 2"), "{j}");
        assert!(j.contains("\"build_profile\""), "{j}");
    }

    #[test]
    fn bench_v1_files_are_rejected_with_migration_hint() {
        let v1 = "{\n  \"schema_version\": 1,\n  \"wall_secs\": {\n    \"fig7\": 3.3\n  }\n}\n";
        let err = BenchManifest::parse(v1).unwrap_err();
        assert!(err.contains("schema_version 1"), "{err}");
        assert!(err.contains("agp report"), "{err}");
    }

    #[test]
    fn wall_band_fails_only_on_regressions() {
        let mut baseline = BenchManifest::new();
        baseline.insert("fig7", 2.0);
        baseline.insert("fig8", 4.0);
        baseline.insert("chaos.smoke", 0.1); // appended later; run lacks it

        let mut run = BenchManifest::new();
        run.insert("fig7", 2.0 * 3.5); // past the 2x rel band
        run.insert("fig8", 1.0); // faster: never a drift
        run.insert("brand-new", 9.9); // no baseline: no band yet

        let band = Tolerance::new(2.0, 1.0);
        let drifts = run.compare_wall(&baseline, band);
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert_eq!(drifts[0].key, "fig7");
        assert!(drifts[0].to_string().contains("regression"));

        // At exactly the band edge (2 + max(1, 2*2) = 6) it still passes.
        run.wall_secs.insert("fig7".into(), 6.0);
        assert!(run.compare_wall(&baseline, band).is_empty());
    }

    #[test]
    fn slugs_are_filesystem_and_key_safe() {
        assert_eq!(slug("LU.A #1"), "lu-a-1");
        assert_eq!(slug("Overhead (%)"), "overhead");
        assert_eq!(slug("  T_batch / min  "), "t-batch-min");
        assert_eq!(slug("§4.1"), "4-1");
        assert_eq!(slug("***"), "x");
    }
}
