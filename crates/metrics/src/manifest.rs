//! The paper-parity manifest: every EXPERIMENTS.md number as a flat,
//! versioned, machine-comparable map — plus the tolerance-band compare
//! that turns it into a regression gate (`agp report --check`).
//!
//! A manifest is a `metric key → f64` map. Keys are dotted slugs,
//! `"{experiment}.{table}.{row}.{column}"` (built by the experiments
//! crate), so tolerances can target anything from one cell to a whole
//! experiment by prefix. Serialization is the hand-rolled [`crate::json`]
//! writer: BTreeMap key order + deterministic float formatting means two
//! identical runs produce byte-identical `report.json` files.

use crate::json::{format_f64, Json};
use std::collections::BTreeMap;
use std::fmt;

/// Schema version stamped into `report.json` / `BENCH_agp.json`; bump on
/// breaking shape changes so stale goldens fail loudly instead of
/// comparing garbage.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// A flat map of parity metrics from one run of the experiment registry.
#[derive(Clone, Debug, PartialEq)]
pub struct ParityManifest {
    /// Manifest schema version (see [`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment scale the run used ("quick" or "paper").
    pub scale: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Metric slug → value. BTreeMap so serialization order is fixed.
    pub metrics: BTreeMap<String, f64>,
}

impl ParityManifest {
    /// An empty manifest for the given scale and seed.
    pub fn new(scale: impl Into<String>, seed: u64) -> Self {
        ParityManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            scale: scale.into(),
            seed,
            metrics: BTreeMap::new(),
        }
    }

    /// Record one metric. Duplicate keys get a `#2`, `#3`, … suffix so no
    /// table cell is silently dropped.
    pub fn insert(&mut self, key: impl Into<String>, value: f64) {
        use std::collections::btree_map::Entry;
        let key = key.into();
        let mut n = 1u32;
        loop {
            let k = if n == 1 {
                key.clone()
            } else {
                format!("{key}#{n}")
            };
            if let Entry::Vacant(slot) = self.metrics.entry(k) {
                slot.insert(value);
                return;
            }
            n += 1;
        }
    }

    /// Deterministic pretty JSON (2-space indent, sorted metric keys,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            Json::Str(k.clone()).write(&mut out);
            out.push_str(": ");
            out.push_str(&format_f64(*v));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a manifest written by [`ParityManifest::to_json`] (or any
    /// standard encoder producing the same shape).
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u32;
        if schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(format!(
                "manifest schema_version {schema_version} != supported {MANIFEST_SCHEMA_VERSION}"
            ));
        }
        let scale = v
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("missing scale")?
            .to_string();
        let seed = v.get("seed").and_then(Json::as_f64).ok_or("missing seed")? as u64;
        let mut metrics = BTreeMap::new();
        for (k, val) in v
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or("missing metrics object")?
        {
            let num = val
                .as_f64()
                .ok_or_else(|| format!("metric {k} is not a number"))?;
            metrics.insert(k.clone(), num);
        }
        Ok(ParityManifest {
            schema_version,
            scale,
            seed,
            metrics,
        })
    }

    /// Compare this run against a golden manifest under `tol`, returning
    /// every drifted/missing/extra metric (empty = pass). Key order of the
    /// result is deterministic (sorted).
    pub fn compare(&self, golden: &ParityManifest, tol: &Tolerances) -> Vec<Drift> {
        let mut out = Vec::new();
        if self.scale != golden.scale {
            out.push(Drift {
                key: "<scale>".to_string(),
                got: None,
                want: None,
                allowed: 0.0,
                note: format!("run scale '{}' vs golden '{}'", self.scale, golden.scale),
            });
        }
        let keys: BTreeMap<&String, ()> = self
            .metrics
            .keys()
            .chain(golden.metrics.keys())
            .map(|k| (k, ()))
            .collect();
        for (key, ()) in keys {
            let got = self.metrics.get(key).copied();
            let want = golden.metrics.get(key).copied();
            let t = tol.for_key(key);
            match (got, want) {
                (Some(g), Some(w)) => {
                    let allowed = t.abs.max(t.rel * w.abs());
                    if (g - w).abs() > allowed {
                        out.push(Drift {
                            key: key.clone(),
                            got,
                            want,
                            allowed,
                            note: String::new(),
                        });
                    }
                }
                _ => out.push(Drift {
                    key: key.clone(),
                    got,
                    want,
                    allowed: 0.0,
                    note: String::new(),
                }),
            }
        }
        out
    }
}

/// Allowed deviation for one metric: passes when
/// `|got − want| ≤ max(abs, rel·|want|)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Relative band (fraction of the golden value).
    pub rel: f64,
    /// Absolute band (same unit as the metric).
    pub abs: f64,
}

impl Tolerance {
    /// A band of `rel` fraction and `abs` absolute slack.
    pub fn new(rel: f64, abs: f64) -> Self {
        Tolerance { rel, abs }
    }

    /// Exact match required.
    pub fn exact() -> Self {
        Tolerance { rel: 0.0, abs: 0.0 }
    }
}

/// Per-metric tolerance bands: a default plus longest-prefix overrides.
#[derive(Clone, Debug)]
pub struct Tolerances {
    default: Tolerance,
    /// `(key prefix, band)`, matched longest-prefix-first.
    overrides: Vec<(String, Tolerance)>,
}

impl Tolerances {
    /// All metrics use `default` unless overridden.
    pub fn new(default: Tolerance) -> Self {
        Tolerances {
            default,
            overrides: Vec::new(),
        }
    }

    /// Add a prefix override (e.g. `"fig6."` for a whole experiment or
    /// `"fig7.overhead.LU"` for one row).
    pub fn with_override(mut self, prefix: impl Into<String>, tol: Tolerance) -> Self {
        self.overrides.push((prefix.into(), tol));
        self
    }

    /// The band that applies to `key`.
    pub fn for_key(&self, key: &str) -> Tolerance {
        self.overrides
            .iter()
            .filter(|(p, _)| key.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }
}

/// One metric outside its tolerance band (or missing from one side).
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// Metric slug.
    pub key: String,
    /// Value from this run (`None` = metric vanished).
    pub got: Option<f64>,
    /// Golden value (`None` = metric is new, not in the golden).
    pub want: Option<f64>,
    /// The band that was allowed.
    pub allowed: f64,
    /// Extra context for structural mismatches.
    pub note: String,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.note.is_empty() {
            return write!(f, "{}: {}", self.key, self.note);
        }
        match (self.got, self.want) {
            (Some(g), Some(w)) => write!(
                f,
                "{}: got {}, golden {}, |Δ| {} > allowed {}",
                self.key,
                format_f64(g),
                format_f64(w),
                format_f64((g - w).abs()),
                format_f64(self.allowed)
            ),
            (Some(g), None) => write!(
                f,
                "{}: got {} but metric is absent from the golden (run --update-golden?)",
                self.key,
                format_f64(g)
            ),
            (None, Some(w)) => write!(
                f,
                "{}: golden expects {} but the run did not produce it",
                self.key,
                format_f64(w)
            ),
            (None, None) => write!(f, "{}: structural mismatch", self.key),
        }
    }
}

/// Wall-clock self-timings per experiment (`BENCH_agp.json`). Inherently
/// machine-dependent, so it is *recorded* each run for trend tracking but
/// never gated on by `--check`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchManifest {
    /// Manifest schema version (see [`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment id → wall-clock seconds.
    pub wall_secs: BTreeMap<String, f64>,
}

impl BenchManifest {
    /// An empty bench manifest.
    pub fn new() -> Self {
        BenchManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            wall_secs: BTreeMap::new(),
        }
    }

    /// Record one experiment's wall-clock time.
    pub fn insert(&mut self, id: impl Into<String>, secs: f64) {
        self.wall_secs.insert(id.into(), secs);
    }

    /// Deterministic pretty JSON (modulo the timing values themselves).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str("  \"wall_secs\": {");
        for (i, (k, v)) in self.wall_secs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            Json::Str(k.clone()).write(&mut out);
            out.push_str(": ");
            out.push_str(&format_f64(*v));
        }
        if !self.wall_secs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a bench manifest written by [`BenchManifest::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u32;
        let mut wall_secs = BTreeMap::new();
        for (k, val) in v
            .get("wall_secs")
            .and_then(Json::as_object)
            .ok_or("missing wall_secs object")?
        {
            wall_secs.insert(
                k.clone(),
                val.as_f64().ok_or_else(|| format!("{k} is not a number"))?,
            );
        }
        Ok(BenchManifest {
            schema_version,
            wall_secs,
        })
    }
}

impl Default for BenchManifest {
    fn default() -> Self {
        BenchManifest::new()
    }
}

/// Slugify a table title / row label / column header into a dotted-key
/// segment: lowercase alphanumerics, runs of everything else collapse to
/// one `-`, trimmed. Empty inputs become `"x"`.
pub fn slug(s: &str) -> String {
    let mut out = String::new();
    let mut dash = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            if dash && !out.is_empty() {
                out.push('-');
            }
            dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            dash = true;
        }
    }
    if out.is_empty() {
        "x".to_string()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParityManifest {
        let mut m = ParityManifest::new("quick", 7);
        m.insert("fig7.overhead.lu.orig", 26.0);
        m.insert("fig7.overhead.lu.full", 5.2);
        m.insert("moreira.completion.mean-min", 35.0);
        m
    }

    #[test]
    fn manifest_round_trips_and_is_byte_stable() {
        let m = sample();
        let j = m.to_json();
        assert_eq!(ParityManifest::parse(&j).unwrap(), m);
        assert_eq!(m.to_json(), j, "writer is deterministic");
        assert!(j.ends_with("}\n"));
        // Keys serialize sorted regardless of insertion order.
        let fig7 = j.find("fig7.overhead.lu.full").unwrap();
        let moreira = j.find("moreira.completion").unwrap();
        assert!(fig7 < moreira);
    }

    #[test]
    fn duplicate_keys_are_suffixed_not_dropped() {
        let mut m = ParityManifest::new("quick", 0);
        m.insert("a.b", 1.0);
        m.insert("a.b", 2.0);
        m.insert("a.b", 3.0);
        assert_eq!(m.metrics.len(), 3);
        assert_eq!(m.metrics["a.b#2"], 2.0);
        assert_eq!(m.metrics["a.b#3"], 3.0);
    }

    #[test]
    fn compare_passes_inside_bands_and_names_drifts() {
        let golden = sample();
        let mut run = sample();
        let tol = Tolerances::new(Tolerance::new(0.05, 0.0));
        assert!(run.compare(&golden, &tol).is_empty());

        run.metrics.insert("fig7.overhead.lu.orig".into(), 28.0);
        let drifts = run.compare(&golden, &tol);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].key, "fig7.overhead.lu.orig");
        let msg = drifts[0].to_string();
        assert!(msg.contains("got 28"), "{msg}");
        assert!(msg.contains("golden 26"), "{msg}");

        // A wider override on the experiment prefix absorbs it.
        let loose = Tolerances::new(Tolerance::new(0.05, 0.0))
            .with_override("fig7.", Tolerance::new(0.10, 0.0));
        assert!(run.compare(&golden, &loose).is_empty());
    }

    #[test]
    fn longest_prefix_override_wins() {
        let tol = Tolerances::new(Tolerance::exact())
            .with_override("fig7.", Tolerance::new(0.5, 0.0))
            .with_override("fig7.overhead.", Tolerance::new(0.01, 0.0));
        assert_eq!(tol.for_key("fig7.overhead.lu.orig").rel, 0.01);
        assert_eq!(tol.for_key("fig7.pages.lu").rel, 0.5);
        assert_eq!(tol.for_key("fig6.peak").rel, 0.0);
    }

    #[test]
    fn missing_and_extra_metrics_are_drifts() {
        let golden = sample();
        let mut run = sample();
        run.metrics.remove("fig7.overhead.lu.full");
        run.metrics.insert("fig9.new-metric".into(), 1.0);
        let drifts = run.compare(&golden, &Tolerances::new(Tolerance::new(1.0, 1e9)));
        assert_eq!(drifts.len(), 2, "huge bands never excuse shape changes");
        assert!(drifts.iter().any(|d| d.got.is_none()));
        assert!(drifts.iter().any(|d| d.want.is_none()));
    }

    #[test]
    fn scale_mismatch_is_reported() {
        let golden = sample();
        let mut run = sample();
        run.scale = "paper".to_string();
        let drifts = run.compare(&golden, &Tolerances::new(Tolerance::new(1.0, 1e9)));
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].to_string().contains("scale"));
    }

    #[test]
    fn stale_schema_version_is_rejected() {
        let j = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = ParityManifest::parse(&j).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn bench_manifest_round_trips() {
        let mut b = BenchManifest::new();
        b.insert("moreira", 1.25);
        b.insert("fig6", 0.5);
        let j = b.to_json();
        assert_eq!(BenchManifest::parse(&j).unwrap(), b);
    }

    #[test]
    fn slugs_are_filesystem_and_key_safe() {
        assert_eq!(slug("LU.A #1"), "lu-a-1");
        assert_eq!(slug("Overhead (%)"), "overhead");
        assert_eq!(slug("  T_batch / min  "), "t-batch-min");
        assert_eq!(slug("§4.1"), "4-1");
        assert_eq!(slug("***"), "x");
    }
}
