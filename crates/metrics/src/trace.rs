//! Paging-activity traces: pages moved per time bucket, per direction.
//!
//! Fig. 6 of the paper plots page-in and page-out activity over the first
//! 50 minutes of a gang-scheduled run; the qualitative claims ("sharp and
//! high peaks", "page-ins spread over a long period") are statements about
//! the shape of exactly this series. [`ActivityTrace`] accumulates the
//! counts and offers the summary statistics the experiments assert on
//! (burstiness, paging duration after each switch).

use agp_sim::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// One node's paging activity, bucketed by wall-clock simulation time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActivityTrace {
    bucket: SimDur,
    pages_in: Vec<u64>,
    pages_out: Vec<u64>,
}

impl ActivityTrace {
    /// A trace with the given bucket width (Fig. 6 resolution ≈ 10 s).
    pub fn new(bucket: SimDur) -> Self {
        assert!(bucket.as_us() > 0, "bucket must be positive");
        ActivityTrace {
            bucket,
            pages_in: Vec::new(),
            pages_out: Vec::new(),
        }
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDur {
        self.bucket
    }

    fn idx(&self, at: SimTime) -> usize {
        (at.as_us() / self.bucket.as_us()) as usize
    }

    fn ensure(&mut self, i: usize) {
        if self.pages_in.len() <= i {
            self.pages_in.resize(i + 1, 0);
            self.pages_out.resize(i + 1, 0);
        }
    }

    /// Record `pages` paged in at `at`.
    pub fn record_in(&mut self, at: SimTime, pages: u64) {
        let i = self.idx(at);
        self.ensure(i);
        self.pages_in[i] += pages;
    }

    /// Record `pages` paged out at `at`.
    pub fn record_out(&mut self, at: SimTime, pages: u64) {
        let i = self.idx(at);
        self.ensure(i);
        self.pages_out[i] += pages;
    }

    /// Page-in counts per bucket.
    pub fn ins(&self) -> &[u64] {
        &self.pages_in
    }

    /// Page-out counts per bucket.
    pub fn outs(&self) -> &[u64] {
        &self.pages_out
    }

    /// Number of buckets recorded.
    pub fn len(&self) -> usize {
        self.pages_in.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pages_in.is_empty()
    }

    /// Total pages paged in.
    pub fn total_in(&self) -> u64 {
        self.pages_in.iter().sum()
    }

    /// Total pages paged out.
    pub fn total_out(&self) -> u64 {
        self.pages_out.iter().sum()
    }

    /// Number of buckets with any paging activity — the "duration" of
    /// paging. Compaction (the whole point of adaptive paging) shows up as
    /// a *smaller* active-bucket count for the same total volume.
    pub fn active_buckets(&self) -> usize {
        self.pages_in
            .iter()
            .zip(&self.pages_out)
            .filter(|(i, o)| **i + **o > 0)
            .count()
    }

    /// Peak single-bucket page-in count ("sharp and high peaks").
    pub fn peak_in(&self) -> u64 {
        self.pages_in.iter().copied().max().unwrap_or(0)
    }

    /// Peak single-bucket page-out count.
    pub fn peak_out(&self) -> u64 {
        self.pages_out.iter().copied().max().unwrap_or(0)
    }

    /// Buckets where page-in and page-out overlap — the interference the
    /// paper's first Fig. 6 graph exhibits and the adaptive policies
    /// eliminate ("the overlapping of page-ins and page-outs indicates
    /// that they interfere with each other").
    pub fn overlap_buckets(&self) -> usize {
        self.pages_in
            .iter()
            .zip(&self.pages_out)
            .filter(|(i, o)| **i > 0 && **o > 0)
            .count()
    }

    /// Compaction index: total paged volume divided by active buckets —
    /// higher means the same I/O squeezed into less wall-clock time.
    pub fn compaction(&self) -> f64 {
        let active = self.active_buckets();
        if active == 0 {
            return 0.0;
        }
        (self.total_in() + self.total_out()) as f64 / active as f64
    }

    /// Truncate the trace to the first `horizon` of simulated time
    /// (Fig. 6 shows only the first 50 minutes).
    pub fn truncated(&self, horizon: SimDur) -> ActivityTrace {
        let n = (horizon.as_us() / self.bucket.as_us()) as usize;
        ActivityTrace {
            bucket: self.bucket,
            pages_in: self.pages_in.iter().copied().take(n).collect(),
            pages_out: self.pages_out.iter().copied().take(n).collect(),
        }
    }

    /// Merge another trace into this one (aggregating nodes).
    pub fn merge(&mut self, other: &ActivityTrace) {
        assert_eq!(self.bucket, other.bucket, "bucket widths must match");
        if other.is_empty() {
            // ensure(0) would grow an empty trace to one zero bucket,
            // making "merged nothing" observable in bucket counts.
            return;
        }
        self.ensure(other.len() - 1);
        for (i, (&a, &b)) in other.pages_in.iter().zip(&other.pages_out).enumerate() {
            self.pages_in[i] += a;
            self.pages_out[i] += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn bucketing_is_floor_division() {
        let mut tr = ActivityTrace::new(SimDur::from_secs(10));
        tr.record_in(t(0), 5);
        tr.record_in(t(9), 5);
        tr.record_in(t(10), 7);
        assert_eq!(tr.ins(), &[10, 7]);
        assert_eq!(tr.total_in(), 17);
    }

    #[test]
    fn independent_directions() {
        let mut tr = ActivityTrace::new(SimDur::from_secs(10));
        tr.record_in(t(5), 3);
        tr.record_out(t(25), 4);
        assert_eq!(tr.ins(), &[3, 0, 0]);
        assert_eq!(tr.outs(), &[0, 0, 4]);
        assert_eq!(tr.active_buckets(), 2);
        assert_eq!(tr.overlap_buckets(), 0);
    }

    #[test]
    fn overlap_detection() {
        let mut tr = ActivityTrace::new(SimDur::from_secs(10));
        tr.record_in(t(5), 3);
        tr.record_out(t(7), 2);
        tr.record_in(t(15), 1);
        assert_eq!(tr.overlap_buckets(), 1);
    }

    #[test]
    fn compaction_prefers_bursts() {
        // Same 100 pages: spread over 10 buckets vs packed into 1.
        let mut spread = ActivityTrace::new(SimDur::from_secs(10));
        for i in 0..10 {
            spread.record_in(t(i * 10), 10);
        }
        let mut packed = ActivityTrace::new(SimDur::from_secs(10));
        packed.record_in(t(0), 100);
        assert!(packed.compaction() > spread.compaction() * 5.0);
        assert_eq!(packed.peak_in(), 100);
        assert_eq!(spread.peak_in(), 10);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let mut tr = ActivityTrace::new(SimDur::from_secs(10));
        tr.record_in(t(5), 1);
        tr.record_in(t(95), 2);
        let cut = tr.truncated(SimDur::from_secs(50));
        assert_eq!(cut.len(), 5);
        assert_eq!(cut.total_in(), 1);
    }

    #[test]
    fn merge_aggregates_nodes() {
        let mut a = ActivityTrace::new(SimDur::from_secs(10));
        a.record_in(t(5), 1);
        let mut b = ActivityTrace::new(SimDur::from_secs(10));
        b.record_in(t(5), 2);
        b.record_out(t(25), 3);
        a.merge(&b);
        assert_eq!(a.ins(), &[3, 0, 0]);
        assert_eq!(a.outs(), &[0, 0, 3]);
    }

    #[test]
    fn merging_an_empty_trace_is_a_no_op() {
        // Regression: ensure(len-1) on an empty `other` used to grow an
        // empty trace to a single zero bucket.
        let mut a = ActivityTrace::new(SimDur::from_secs(10));
        a.merge(&ActivityTrace::new(SimDur::from_secs(10)));
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);

        // And a non-empty target is left untouched.
        let mut b = ActivityTrace::new(SimDur::from_secs(10));
        b.record_in(t(5), 4);
        b.merge(&ActivityTrace::new(SimDur::from_secs(10)));
        assert_eq!(b.ins(), &[4]);
    }

    #[test]
    fn empty_trace_stats() {
        let tr = ActivityTrace::new(SimDur::from_secs(10));
        assert!(tr.is_empty());
        assert_eq!(tr.peak_in(), 0);
        assert_eq!(tr.compaction(), 0.0);
        assert_eq!(tr.active_buckets(), 0);
    }
}
